"""Weighted whole-program call graph over OM's symbolic form.

The layout subsystem consumes the same direct-call sites OM's calls
pass optimizes: a ``jsr`` whose PV comes from a literal load of a
procedure symbol with a zero addend.  Callee resolution mirrors
``Program.callee_info`` — a module-local static shadows any exported
procedure of the same name — so every site the transformer might
convert is a site the layout planner can weigh.

Node weights come from a :class:`~repro.machine.profile.ProfileResult`
when the caller has one (the closed PGO loop), or from a static
estimate otherwise: a procedure's weight is one plus the number of
static call sites targeting it, which at least separates leaf helpers
from once-called setup code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minicc.mcode import MInstr
from repro.objfile.relocations import LituseKind
from repro.om.symbolic import SymbolicModule, SymbolicProc


@dataclass
class CallSite:
    """One direct call: the jsr, its PV load, and both endpoints."""

    caller_module: int
    caller: SymbolicProc
    jsr: MInstr
    load: MInstr
    callee_module: int
    callee: SymbolicProc


@dataclass
class CallGraph:
    """Procedures in program order plus direct-call edges."""

    #: (module index, proc name) in current program order.
    procs: list[tuple[int, str]] = field(default_factory=list)
    sites: list[CallSite] = field(default_factory=list)
    #: (caller name, callee name) -> number of static call sites.
    multiplicity: dict[tuple[str, str], int] = field(default_factory=dict)


def proc_directory(
    modules: list[SymbolicModule],
) -> dict[str, tuple[int, SymbolicProc]]:
    """Global name -> defining procedure (exported definitions win)."""
    directory: dict[str, tuple[int, SymbolicProc]] = {}
    for index, module in enumerate(modules):
        for proc in module.procs:
            if proc.exported or proc.name not in directory:
                directory[proc.name] = (index, proc)
    return directory


def resolve_callee(
    modules: list[SymbolicModule],
    directory: dict[str, tuple[int, SymbolicProc]],
    caller_module: int,
    name: str,
) -> tuple[int, SymbolicProc] | None:
    """Resolve a direct-call target, honouring module-local statics."""
    local = modules[caller_module].proc_named(name)
    if local is not None and not local.exported:
        return (caller_module, local)
    return directory.get(name)


def iter_direct_call_sites(modules: list[SymbolicModule]) -> list[CallSite]:
    """Every direct jsr site the calls pass would consider converting."""
    directory = proc_directory(modules)
    sites: list[CallSite] = []
    for module_index, module in enumerate(modules):
        for proc in module.procs:
            literal_items = {
                item.uid: item
                for item in proc.instructions()
                if item.literal is not None
            }
            for item in proc.instructions():
                instr = item.instr
                if not (
                    instr.is_jump
                    and instr.op.name == "jsr"
                    and item.lituse is not None
                    and item.lituse[1] == LituseKind.JSR
                ):
                    continue
                load = literal_items.get(item.lituse[0])
                if load is None or load.literal is None:
                    continue
                callee_name, addend = load.literal
                if addend:
                    continue
                resolved = resolve_callee(
                    modules, directory, module_index, callee_name
                )
                if resolved is None:
                    continue
                callee_module, callee = resolved
                sites.append(
                    CallSite(
                        module_index, proc, item, load, callee_module, callee
                    )
                )
    return sites


def build_call_graph(modules: list[SymbolicModule]) -> CallGraph:
    graph = CallGraph()
    for index, module in enumerate(modules):
        for proc in module.procs:
            graph.procs.append((index, proc.name))
    graph.sites = iter_direct_call_sites(modules)
    for site in graph.sites:
        key = (site.caller.name, site.callee.name)
        graph.multiplicity[key] = graph.multiplicity.get(key, 0) + 1
    return graph


def profile_proc_weights(profile) -> dict[str, float]:
    """Executed-instruction weight per procedure from a profiled run."""
    from repro.machine.profile import UNATTRIBUTED

    return {
        proc.name: float(proc.instructions)
        for proc in profile.procs
        if proc.name != UNATTRIBUTED
    }


def static_proc_weights(graph: CallGraph) -> dict[str, float]:
    """No-profile fallback: weight by static in-degree."""
    weights = {name: 1.0 for __, name in graph.procs}
    for (__, callee), count in graph.multiplicity.items():
        if callee in weights:
            weights[callee] += float(count)
    return weights


def edge_weights(
    graph: CallGraph, node_weights: dict[str, float]
) -> dict[tuple[str, str], float]:
    """Caller/callee affinity for chain merging.

    Static multiplicity scaled by the endpoint heat; self-edges are
    dropped (a recursive pair is already adjacent to itself).
    """
    out: dict[tuple[str, str], float] = {}
    for (caller, callee), count in graph.multiplicity.items():
        if caller == callee:
            continue
        heat = node_weights.get(caller, 0.0) + node_weights.get(callee, 0.0)
        out[(caller, callee)] = count * (1.0 + heat)
    return out
