"""Span-dependent relaxation for optimistic ``jsr`` -> ``bsr``.

OM's one-shot range check forfeits any conversion within 64KB of the
21-bit displacement limit, because conversions elsewhere may shrink or
(with rescheduling) grow the text between call and callee.  This module
replaces that slack with an exact fixpoint in the style of span-
dependent branch relaxation run backwards (Dickson's linear-time jump
encoding): start *optimistic* — every direct call converts and every
then-dead PV load is deleted — then repeatedly model the resulting
addresses and demote the sites whose displacement falls outside the
range.  Demotion revives the site's PV load, which can push *other*
sites out of range, so the loop iterates; each wave demotes at least
one site, so it converges within ``candidates + 1`` iterations.  An
explicit iteration bound backstops the theory: if it is ever hit, every
still-optimistic site is demoted, which is trivially safe.

The model only has to be conservative against *growth*: all the
transformations that run after the decisions (PV-load and GP-reset
deletion, nullification) shrink every span, and the two that can grow
code (rescheduling's alignment padding, the escaped 2-for-1 ablation)
are covered by a slack the driver adds when those knobs are on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.callgraph import CallSite
from repro.minicc.mcode import MInstr, MLabel
from repro.obs import provenance
from repro.obs.trace import TraceLog
from repro.om.symbolic import SymbolicModule

#: The legal bsr word displacement is a signed 21-bit field.
BSR_RANGE_WORDS = 1 << 20

#: Fixpoint ceiling; waves demote monotonically so real programs
#: converge in a handful of iterations (the bound is a backstop).
DEFAULT_MAX_ITERATIONS = 64


def bsr_disp_in_range(
    disp_words: int, range_words: int = BSR_RANGE_WORDS
) -> bool:
    """Is a word displacement encodable in the signed 21-bit field?"""
    return -range_words <= disp_words <= range_words - 1


@dataclass
class RelaxOptions:
    """Driver-level knobs threaded into the fixpoint."""

    range_words: int = BSR_RANGE_WORDS
    slack: int = 0  # bytes of modelled-growth headroom per decision
    max_iterations: int = DEFAULT_MAX_ITERATIONS


@dataclass
class RelaxCandidate:
    """One optimistic conversion and its modelled size effect."""

    site: CallSite
    deletable: bool  # PV load disappears when the site converts
    target_extra: int  # byte offset past callee entry (GP-setup skip)


@dataclass
class RelaxResult:
    """The fixpoint's decisions plus its convergence telemetry."""

    decisions: dict[int, bool] = field(default_factory=dict)  # jsr uid
    candidates: int = 0
    iterations: int = 0
    waves: int = 0  # iterations that demoted at least one site
    demoted: int = 0
    converged: bool = True


def _model_addresses(
    modules: list[SymbolicModule], text_base: int, deleted: set[int]
) -> tuple[dict[int, int], dict[tuple[int, str], int]]:
    """Tentative instruction and procedure-entry addresses.

    Mirrors reassembly + text layout: four bytes per surviving
    instruction, modules 16-aligned, aligned labels padded.
    """
    addr_of: dict[int, int] = {}
    entries: dict[tuple[int, str], int] = {}
    cursor = text_base
    for module_index, module in enumerate(modules):
        cursor = -(-cursor // 16) * 16
        for proc in module.procs:
            entries[(module_index, proc.name)] = cursor
            for item in proc.items:
                if isinstance(item, MLabel):
                    if item.align:
                        cursor = -(-cursor // item.align) * item.align
                    continue
                if item.uid in deleted:
                    continue
                addr_of[item.uid] = cursor
                cursor += 4
    return addr_of, entries


def relax_call_sites(
    modules: list[SymbolicModule],
    candidates: list[RelaxCandidate],
    *,
    text_base: int,
    range_words: int = BSR_RANGE_WORDS,
    slack: int = 0,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    trace: TraceLog | None = None,
    round_index: int = 0,
) -> RelaxResult:
    """Decide, per call site, whether the optimistic bsr stays legal."""
    decisions = {c.site.jsr.uid: True for c in candidates}
    result = RelaxResult(decisions=decisions, candidates=len(candidates))
    slack_words = -(-slack // 4)
    lo = -range_words + slack_words
    hi = range_words - 1 - slack_words

    stable = False
    while result.iterations < max_iterations and not stable:
        result.iterations += 1
        deleted = {
            c.site.load.uid
            for c in candidates
            if c.deletable and decisions[c.site.jsr.uid]
        }
        addr_of, entries = _model_addresses(modules, text_base, deleted)
        wave: list[tuple[RelaxCandidate, int | None, int | None]] = []
        for c in candidates:
            uid = c.site.jsr.uid
            if not decisions[uid]:
                continue
            pc = addr_of.get(uid)
            entry = entries.get((c.site.callee_module, c.site.callee.name))
            if pc is None or entry is None:
                decisions[uid] = False
                wave.append((c, pc, None))
                continue
            disp = (entry + c.target_extra - (pc + 4)) // 4
            if not lo <= disp <= hi:
                decisions[uid] = False
                wave.append((c, pc, disp))
        if wave:
            result.waves += 1
            result.demoted += len(wave)
            for c, pc, disp in wave:
                _emit_demotion(
                    trace, modules, c, pc, disp,
                    range_words, result.iterations, round_index,
                )
        else:
            stable = True

    if not stable:
        # Bound hit: conservatively demote every remaining optimist.
        result.converged = False
        for c in candidates:
            uid = c.site.jsr.uid
            if decisions[uid]:
                decisions[uid] = False
                result.demoted += 1
                _emit_demotion(
                    trace, modules, c, None, None,
                    range_words, result.iterations, round_index,
                    reason="iteration bound hit; demoting conservatively",
                )

    kept = sum(1 for value in decisions.values() if value)
    provenance.emit(
        trace,
        action="relax",
        pass_name="relax",
        module="<program>",
        proc="<fixpoint>",
        pc=None,
        before=f"{len(candidates)} optimistic bsr candidates",
        after=f"{kept} kept, {result.demoted} demoted",
        reason=(
            f"span-dependent relaxation "
            f"{'converged' if result.converged else 'hit its bound'} "
            f"in {result.iterations} iteration(s)"
        ),
        round_index=round_index,
    )
    return result


def _emit_demotion(
    trace: TraceLog | None,
    modules: list[SymbolicModule],
    candidate: RelaxCandidate,
    pc: int | None,
    disp: int | None,
    range_words: int,
    iteration: int,
    round_index: int,
    reason: str | None = None,
) -> None:
    site = candidate.site
    detail = reason or (
        f"wave {iteration}: displacement "
        f"{disp if disp is not None else '?'} words outside "
        f"[-{range_words}, {range_words - 1}]"
    )
    provenance.emit(
        trace,
        action="relax",
        pass_name="relax",
        module=modules[site.caller_module].name,
        proc=site.caller.name,
        pc=pc,
        before=f"bsr ra, {site.callee.name}",
        after=f"jsr ra, ({site.callee.name})",
        reason=detail,
        round_index=round_index,
    )
