"""Pettis–Hansen procedure placement over the symbolic program.

Chains start as singleton procedures and merge along call edges in
descending weight order, orienting each merge so the hot caller/callee
pair ends up adjacent when either sits at a chain end (the "closest is
best" heuristic of Pettis & Hansen 1990).  The final order concatenates
chains with the entry chain first, then by descending chain heat.

Applying an order is constrained by fall-through safety: a procedure
may move relative to its module neighbours only when it ends in an
unconditional transfer (ret / br / jmp / halt), since OM's symbolic
form keeps procedures of one module contiguous and a trailing
conditional branch or call would change behaviour if its successor
moved.  Modules themselves always move as whole units — the linker
lays modules out independently, so inter-module order is free.
"""

from __future__ import annotations

from repro.om.symbolic import SymbolicModule, SymbolicProc


def pettis_hansen_order(
    nodes: list[str],
    edges: dict[tuple[str, str], float],
    node_weights: dict[str, float],
    entry: str | None = None,
) -> list[str]:
    """Merge chains along edges; returns the global placement order."""
    order = list(dict.fromkeys(nodes))
    chain_of = {name: index for index, name in enumerate(order)}
    chains: list[list[str]] = [[name] for name in order]

    for (u, v), __ in sorted(edges.items(), key=lambda kv: (-kv[1], kv[0])):
        cu, cv = chain_of.get(u), chain_of.get(v)
        if cu is None or cv is None or cu == cv:
            continue
        a, b = chains[cu], chains[cv]
        # Orient so u and v touch whenever either is at a chain end.
        if a[-1] == u and b[0] == v:
            merged = a + b
        elif b[-1] == v and a[0] == u:
            merged = b + a
        elif a[-1] == u and b[-1] == v:
            merged = a + b[::-1]
        elif a[0] == u and b[0] == v:
            merged = b[::-1] + a
        else:
            merged = a + b  # interior endpoints: plain concatenation
        chains[cu] = merged
        chains[cv] = []
        for name in merged:
            chain_of[name] = cu

    live = [chain for chain in chains if chain]

    def chain_heat(chain: list[str]) -> float:
        return sum(node_weights.get(name, 0.0) for name in chain)

    live.sort(
        key=lambda chain: (
            0 if (entry is not None and entry in chain) else 1,
            -chain_heat(chain),
            chain[0],
        )
    )
    return [name for chain in live for name in chain]


def may_move(proc: SymbolicProc) -> bool:
    """Safe to change this procedure's successor?  Only when control
    cannot fall off its end: the last instruction is an unconditional
    transfer that is not a call (calls return to the next address)."""
    instrs = proc.instructions()
    if not instrs:
        return False
    last = instrs[-1].instr
    return last.is_control and not last.is_call and not last.is_cond_branch


def apply_order(
    modules: list[SymbolicModule], order: list[str]
) -> list[SymbolicModule]:
    """Sort procedures (within movable modules) and modules by rank.

    Both sorts are stable, so procedures the order does not mention and
    equal-rank modules keep their link order — the result is fully
    deterministic for a given plan.
    """
    rank: dict[str, int] = {}
    for index, name in enumerate(order):
        rank.setdefault(name, index)
    unranked = len(order)

    for module in modules:
        if len(module.procs) > 1 and all(may_move(p) for p in module.procs):
            module.procs.sort(key=lambda p: rank.get(p.name, unranked))

    def module_rank(module: SymbolicModule) -> int:
        return min(
            (rank.get(p.name, unranked) for p in module.procs),
            default=unranked,
        )

    return sorted(modules, key=module_rank)
