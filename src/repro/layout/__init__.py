"""Profile-guided code and data layout (the closed PGO loop).

``profile -> plan -> relink``: a profiled run feeds a weighted call
graph; Pettis–Hansen chain merging orders procedures so hot
caller/callee pairs sit adjacently (maximizing bsr reach); escaped-
literal heat steers COMMON placement into the 16-bit GP window; and a
span-dependent relaxation fixpoint replaces OM's one-shot conservative
jsr->bsr range check with optimistic, exact decisions.
"""

from repro.layout.callgraph import (
    CallGraph,
    CallSite,
    build_call_graph,
    edge_weights,
    iter_direct_call_sites,
    profile_proc_weights,
    static_proc_weights,
)
from repro.layout.hotdata import escaped_symbol_weights
from repro.layout.plan import LayoutPlan, apply_plan, plan_layout
from repro.layout.relax import (
    BSR_RANGE_WORDS,
    RelaxCandidate,
    RelaxOptions,
    RelaxResult,
    bsr_disp_in_range,
    relax_call_sites,
)
from repro.layout.reorder import apply_order, may_move, pettis_hansen_order

__all__ = [
    "BSR_RANGE_WORDS",
    "CallGraph",
    "CallSite",
    "LayoutPlan",
    "RelaxCandidate",
    "RelaxOptions",
    "RelaxResult",
    "apply_order",
    "apply_plan",
    "bsr_disp_in_range",
    "build_call_graph",
    "edge_weights",
    "escaped_symbol_weights",
    "iter_direct_call_sites",
    "may_move",
    "pettis_hansen_order",
    "plan_layout",
    "profile_proc_weights",
    "relax_call_sites",
    "static_proc_weights",
]
