"""Frequency-aware small-data placement weights.

The paper's OM sorts COMMON symbols by size so as many as possible fit
the 16-bit GP window.  With a profile we can generalize: what actually
costs cycles after OM-full is the *escaped* literal loads — address
loads whose register must hold the exact symbol address (function
pointers, out-of-window array bases).  Non-escaped loads convert to
``lda``/``ldah`` forms whether or not their symbol lands in the direct
window, so they never execute a GAT load either way.

This module therefore weighs each symbol by the execution heat of the
procedures containing *escaped* literal loads of it.  The linker's
:func:`~repro.linker.layout.compute_layout` uses those weights to
compare the paper's size-sorted COMMON order against a weight-density
order under an explicit cost model and keeps whichever places less
escaped heat outside the GP window — by construction never worse than
the paper's sort under the model.
"""

from __future__ import annotations

from repro.om.symbolic import SymbolicModule


def escaped_symbol_weights(
    modules: list[SymbolicModule], proc_weights: dict[str, float]
) -> dict[str, float]:
    """Per-symbol heat of escaped literal loads, by containing proc."""
    weights: dict[str, float] = {}
    for module in modules:
        for proc in module.procs:
            heat = proc_weights.get(proc.name, 0.0)
            for item in proc.instructions():
                if item.literal is None or not item.lit_escaped:
                    continue
                symbol, __ = item.literal
                weights[symbol] = weights.get(symbol, 0.0) + heat
    # Zero-weight entries carry no signal; drop them so the linker's
    # cost model only sees symbols with measured (or estimated) heat.
    return {name: w for name, w in weights.items() if w > 0.0}
