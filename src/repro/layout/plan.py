"""The layout plan: profile in, placement decisions out.

``plan_layout`` runs once per OM link (before the transformation
rounds): it builds the weighted call graph, computes the Pettis–Hansen
procedure order, and distills escaped-literal heat into the symbol
weights the linker's COMMON cost model consumes.  ``apply_plan``
permutes the symbolic modules accordingly.  Both emit provenance
(actions ``reorder`` and ``hot-place``) so the decisions show up in
``explain`` output and the fuzzer's coverage harvest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.callgraph import (
    build_call_graph,
    edge_weights,
    profile_proc_weights,
    static_proc_weights,
)
from repro.layout.hotdata import escaped_symbol_weights
from repro.layout.reorder import apply_order, pettis_hansen_order
from repro.obs import provenance
from repro.obs.trace import TraceLog
from repro.om.symbolic import SymbolicModule

#: How many per-symbol hot-place events to emit (the heaviest first).
_HOT_PLACE_EVENTS = 32


@dataclass
class LayoutPlan:
    """Everything ``om_link`` needs to steer code and data placement."""

    proc_order: list[str] = field(default_factory=list)
    proc_weights: dict[str, float] = field(default_factory=dict)
    symbol_weights: dict[str, float] = field(default_factory=dict)
    from_profile: bool = False
    moved: int = 0  # procedures whose global position changed


def plan_layout(
    modules: list[SymbolicModule],
    *,
    profile=None,
    entry: str = "__start",
    trace: TraceLog | None = None,
) -> LayoutPlan:
    """Compute the placement plan from a profile (or static estimate)."""
    graph = build_call_graph(modules)
    if profile is not None:
        weights = profile_proc_weights(profile)
        from_profile = True
    else:
        weights = static_proc_weights(graph)
        from_profile = False

    nodes = [name for __, name in graph.procs]
    order = pettis_hansen_order(
        nodes, edge_weights(graph, weights), weights, entry=entry
    )
    symbol_weights = escaped_symbol_weights(modules, weights)

    ranked = sorted(symbol_weights.items(), key=lambda kv: (-kv[1], kv[0]))
    for name, weight in ranked[:_HOT_PLACE_EVENTS]:
        provenance.emit(
            trace,
            action="hot-place",
            pass_name="layout",
            module="<layout>",
            proc="<commons>",
            pc=None,
            before=name,
            after=f"weight {weight:g}",
            reason="escaped-literal heat steers COMMON placement",
        )
    provenance.emit(
        trace,
        action="hot-place",
        pass_name="layout",
        module="<layout>",
        proc="<summary>",
        pc=None,
        before=f"{len(symbol_weights)} weighted symbols",
        after=("profile-guided" if from_profile else "static estimate"),
        reason="symbol heat handed to the linker's COMMON cost model",
    )
    return LayoutPlan(
        proc_order=order,
        proc_weights=weights,
        symbol_weights=symbol_weights,
        from_profile=from_profile,
    )


def apply_plan(
    modules: list[SymbolicModule],
    plan: LayoutPlan,
    *,
    trace: TraceLog | None = None,
) -> list[SymbolicModule]:
    """Reorder procedures/modules per the plan; returns the new list."""
    before = [
        (module.name, proc.name)
        for module in modules
        for proc in module.procs
    ]
    reordered = apply_order(modules, plan.proc_order)
    after = [
        (module.name, proc.name)
        for module in reordered
        for proc in module.procs
    ]
    old_position = {key: index for index, key in enumerate(before)}
    moved = 0
    for new_index, key in enumerate(after):
        old_index = old_position[key]
        if old_index == new_index:
            continue
        moved += 1
        provenance.emit(
            trace,
            action="reorder",
            pass_name="layout",
            module=key[0],
            proc=key[1],
            pc=None,
            before=f"link position {old_index}",
            after=f"layout position {new_index}",
            reason="Pettis-Hansen chain placement",
        )
    plan.moved = moved
    provenance.emit(
        trace,
        action="reorder",
        pass_name="layout",
        module="<layout>",
        proc="<summary>",
        pc=None,
        before=f"{len(before)} procedures in link order",
        after=f"{moved} moved",
        reason=(
            "procedure order computed from the "
            + ("profiled" if plan.from_profile else "statically estimated")
            + " call graph"
        ),
    )
    return reordered
