"""Decaf lexer.

Hand-written scanner in the style of :mod:`repro.minicc.lexer`.  The
token stream is flat; tokens carry their line for diagnostics.  Decaf
adds the object-language keywords (``class``, ``extends``, ``new``,
``this``, ``null``) and the ``.`` member operator, and drops MiniC's
pointer/bit-twiddling operators.
"""

from __future__ import annotations

from repro.minicc.errors import CompileError
from repro.minicc.lexer import Token

KEYWORDS = frozenset(
    [
        "int",
        "void",
        "class",
        "extends",
        "extern",
        "static",
        "new",
        "this",
        "null",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
    ]
)

#: Multi-character operators first so maximal munch works.
_OPERATORS = [
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "<",
    ">",
    "=",
    ";",
    ",",
    ".",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
]


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Scan Decaf source into tokens; raises CompileError on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise CompileError("unterminated comment", filename, line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            while pos < length and source[pos].isdigit():
                pos += 1
            tokens.append(Token("num", int(source[start:pos]), line))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            word = source[start:pos]
            kind = word if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            continue
        if ch == '"':
            end = pos + 1
            chars: list[str] = []
            escapes = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"'}
            while end < length and source[end] != '"':
                if source[end] == "\\":
                    if end + 1 >= length or source[end + 1] not in escapes:
                        raise CompileError(
                            "bad escape in string literal", filename, line
                        )
                    chars.append(escapes[source[end + 1]])
                    end += 2
                elif source[end] == "\n":
                    raise CompileError(
                        "unterminated string literal", filename, line
                    )
                else:
                    chars.append(source[end])
                    end += 1
            if end >= length:
                raise CompileError("unterminated string literal", filename, line)
            tokens.append(Token("str", "".join(chars), line))
            pos = end + 1
            continue
        for operator in _OPERATORS:
            if source.startswith(operator, pos):
                tokens.append(Token(operator, operator, line))
                pos += len(operator)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", filename, line)
    tokens.append(Token("eof", "", line))
    return tokens
