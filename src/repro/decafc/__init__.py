"""Decaf: the second frontend.

A compact Decaf-class object language — classes with fields and
virtual methods, single inheritance, ``new``, dynamic dispatch,
strings, arrays, and a plain ``main`` entry — compiled to the same
conservative 64-bit address-calculation model as MiniC, through the
same IR, optimizer, scheduler, and object-file emitter.

Why it exists: every link-time layer (OM, layout/PGO, WPO sharding,
the JIT, the serve fleet) was built against one code generator, so
frontend-shaped assumptions went untested.  Decaf stresses exactly the
shapes MiniC is light on:

* **vtables** — per-class data-section pointer tables (``Class.$vtable``,
  one REFQUAD per slot against the ``Class.method`` procedures), which
  OM must carry symbolically, GC must treat as roots, and layout must
  relocate;
* **allocation-site address loads** — every ``new C()`` loads
  ``C.$vtable`` through the GAT, giving OM's address-load removal real
  Decaf work;
* **function-pointer-dense calls** — every method call is indirect
  (load vtable, load slot, ``jsr`` through PV), the call shape the JIT
  measured as its speedup floor.

The runtime model is the stdlib's bump allocator: ``new`` calls
``heap_alloc`` (and ``memset64`` for ``new int[n]``), so Decaf
programs always link against ``libmc`` — mixed-language linking is the
default, not a special case.
"""

from repro.decafc.driver import (
    Options,
    compile_all,
    compile_module,
    parse_source,
)
from repro.minicc.errors import CompileError

__all__ = [
    "CompileError",
    "Options",
    "compile_module",
    "compile_all",
    "parse_source",
]
