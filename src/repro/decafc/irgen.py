"""Lowering from Decaf AST to the shared three-address IR.

Decaf reuses :mod:`repro.minicc.ir` wholesale — the optimizer, the
scheduler, and code generation never learn a second IR.  The object
model lowers to plain loads and stores:

* ``new C()`` — ``heap_alloc(1 + nfields)`` words, store the address
  of ``C.$vtable`` at word 0 (a GAT-resident literal, so every
  allocation site is an address load OM can optimize), zero the
  fields (the bump allocator does not);
* ``e.f`` — a load at byte ``8*(1+index)`` off the reference;
* ``e.m(a, b)`` — load the vtable pointer from word 0, load slot
  ``8*slot``, and ``CallPtr`` with the receiver as first argument —
  the function-pointer-dense call shape the JIT measured as its floor.

Method bodies are ordinary IR functions named ``Class.method`` (the
``.`` keeps them out of both languages' identifier space, and keeps
the ``proc$label`` convention unambiguous).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decafc import astnodes as ast
from repro.decafc.sema import (
    BUILTINS,
    WORD,
    ClassInfo,
    ProgramSyms,
    analyze,
)
from repro.minicc import ir
from repro.minicc.errors import CompileError

#: Pseudo-type of the ``null`` literal: assignable anywhere, never
#: dispatchable.
NULL_T = "$null"


@dataclass
class _LoopCtx:
    break_label: str
    continue_label: str


class FuncLowerer:
    """Lowers one Decaf function or method body to an :class:`ir.IRFunc`."""

    def __init__(
        self,
        syms: ProgramSyms,
        name: str,
        params: list[tuple[str, str]],
        ret: str,
        body: ast.Block,
        line: int,
        filename: str,
        string_pool: dict[str, str],
        cls: ClassInfo | None = None,
        exported: bool = True,
    ):
        self.syms = syms
        self.cls = cls
        self.ret = ret
        self.body = body
        self.line = line
        self.filename = filename
        self.string_pool = string_pool
        self.func = ir.IRFunc(name, [p for p, __ in params], exported=exported)
        self.scopes: list[dict[str, int]] = [{}]
        self.local_types: dict[int, str] = {}
        self.loops: list[_LoopCtx] = []
        self.loop_depth = 0
        for pname, ptype in params:
            self._declare_local(pname, line, type=ptype)

    # -- plumbing -----------------------------------------------------------

    def emit(self, instr: ir.Instr) -> ir.Instr:
        self.func.body.append(instr)
        return instr

    def error(self, message: str, line: int) -> CompileError:
        return CompileError(message, self.filename, line)

    def _declare_local(
        self,
        name: str,
        line: int,
        size: int = 8,
        is_array: bool = False,
        type: str = WORD,
    ) -> int:
        scope = self.scopes[-1]
        if name in scope:
            raise self.error(f"duplicate local {name!r}", line)
        index = len(self.func.locals)
        self.func.locals.append(ir.IRLocal(name, size, is_array))
        self.local_types[index] = type
        scope[name] = index
        return index

    def _lookup_local(self, name: str) -> int | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _weight(self) -> float:
        return float(8 ** min(self.loop_depth, 3))

    def _touch(self, local: int) -> None:
        self.func.locals[local].weight += self._weight()

    def _class_of(self, type_name: str, line: int, what: str) -> ClassInfo:
        info = self.syms.classes.get(type_name)
        if info is None:
            raise self.error(f"{what} on non-object expression", line)
        return info

    # -- lowering entry point ----------------------------------------------

    def lower(self) -> ir.IRFunc:
        self.gen_stmt(self.body)
        body = self.func.body
        if not body or not isinstance(body[-1], ir.Ret):
            self.emit(ir.Ret(self.line, None))
        return self.func

    # -- statements ---------------------------------------------------------

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.scopes.append({})
            for inner in stmt.body:
                self.gen_stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, ast.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, (ast.Call, ast.MethodCall)):
                self._gen_call_like(expr, want_result=False)
            else:
                self.gen_expr(expr)
        elif isinstance(stmt, ast.LocalDecl):
            self._gen_local_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value, __ = self.gen_expr(stmt.value)
            self.emit(ir.Ret(stmt.line, value))
        elif isinstance(stmt, ast.Break):
            if not self.loops:
                raise self.error("break outside loop", stmt.line)
            self.emit(ir.Jump(stmt.line, self.loops[-1].break_label))
        elif isinstance(stmt, ast.Continue):
            if not self.loops:
                raise self.error("continue outside loop", stmt.line)
            self.emit(ir.Jump(stmt.line, self.loops[-1].continue_label))
        else:  # pragma: no cover - parser produces no other nodes
            raise self.error(
                f"unhandled statement {type(stmt).__name__}", stmt.line
            )

    def _gen_local_decl(self, stmt: ast.LocalDecl) -> None:
        if stmt.array_size is not None:
            if stmt.array_size <= 0:
                raise self.error("array size must be positive", stmt.line)
            self._declare_local(
                stmt.name, stmt.line, size=8 * stmt.array_size, is_array=True
            )
            return
        if stmt.type != WORD and stmt.type not in self.syms.classes:
            raise self.error(f"unknown type {stmt.type!r}", stmt.line)
        index = self._declare_local(stmt.name, stmt.line, type=stmt.type)
        if stmt.init is not None:
            value, __ = self.gen_expr(stmt.init)
            self._touch(index)
            self.emit(ir.StoreLocal(stmt.line, index, value))

    def _gen_if(self, stmt: ast.If) -> None:
        then_label = self.func.new_label("then")
        end_label = self.func.new_label("endif")
        else_label = self.func.new_label("else") if stmt.other else end_label
        self.gen_cond(stmt.cond, then_label, else_label)
        self.emit(ir.Label(stmt.line, then_label))
        self.gen_stmt(stmt.then)
        if stmt.other is not None:
            self.emit(ir.Jump(stmt.line, end_label))
            self.emit(ir.Label(stmt.line, else_label))
            self.gen_stmt(stmt.other)
        self.emit(ir.Label(stmt.line, end_label))

    def _gen_while(self, stmt: ast.While) -> None:
        body_label = self.func.new_label("loop")
        test_label = self.func.new_label("test")
        end_label = self.func.new_label("endloop")
        self.emit(ir.Jump(stmt.line, test_label))
        self.emit(ir.Label(stmt.line, body_label))
        self.loops.append(_LoopCtx(end_label, test_label))
        self.loop_depth += 1
        self.gen_stmt(stmt.body)
        self.loop_depth -= 1
        self.loops.pop()
        self.emit(ir.Label(stmt.line, test_label))
        self.gen_cond(stmt.cond, body_label, end_label)
        self.emit(ir.Label(stmt.line, end_label))

    def _gen_for(self, stmt: ast.For) -> None:
        body_label = self.func.new_label("loop")
        step_label = self.func.new_label("step")
        test_label = self.func.new_label("test")
        end_label = self.func.new_label("endloop")
        if stmt.init is not None:
            self.gen_expr(stmt.init)
        self.emit(ir.Jump(stmt.line, test_label))
        self.emit(ir.Label(stmt.line, body_label))
        self.loops.append(_LoopCtx(end_label, step_label))
        self.loop_depth += 1
        self.gen_stmt(stmt.body)
        self.loop_depth -= 1
        self.loops.pop()
        self.emit(ir.Label(stmt.line, step_label))
        if stmt.step is not None:
            self.gen_expr(stmt.step)
        self.emit(ir.Label(stmt.line, test_label))
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body_label, end_label)
        else:
            self.emit(ir.Jump(stmt.line, body_label))
        self.emit(ir.Label(stmt.line, end_label))

    # -- conditions ----------------------------------------------------------

    _COND_CMP = {
        "<": ("cmplt", False),
        "<=": ("cmple", False),
        ">": ("cmplt", True),
        ">=": ("cmple", True),
    }

    def gen_cond(self, expr: ast.Expr, if_true: str, if_false: str) -> None:
        """Emit a branch to ``if_true``/``if_false`` on ``expr``'s truth."""
        if isinstance(expr, ast.Num):
            self.emit(ir.Jump(expr.line, if_true if expr.value else if_false))
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_cond(expr.operand, if_false, if_true)
            return
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                mid = self.func.new_label("and")
                self.gen_cond(expr.left, mid, if_false)
                self.emit(ir.Label(expr.line, mid))
                self.gen_cond(expr.right, if_true, if_false)
                return
            if expr.op == "||":
                mid = self.func.new_label("or")
                self.gen_cond(expr.left, if_true, mid)
                self.emit(ir.Label(expr.line, mid))
                self.gen_cond(expr.right, if_true, if_false)
                return
            if expr.op in ("==", "!="):
                test = self._emit_cmp("cmpeq", expr)
                if expr.op == "!=":
                    if_true, if_false = if_false, if_true
                self.emit(ir.CJump(expr.line, test, if_true, if_false))
                return
            if expr.op in self._COND_CMP:
                op, swapped = self._COND_CMP[expr.op]
                left, right = (
                    (expr.right, expr.left) if swapped else (expr.left, expr.right)
                )
                a, __ = self.gen_expr(left)
                b, __ = self.gen_expr(right)
                test = self.func.new_vreg()
                self.emit(ir.Bin(expr.line, op, test, a, b))
                self.emit(ir.CJump(expr.line, test, if_true, if_false))
                return
        value, __ = self.gen_expr(expr)
        self.emit(ir.CJump(expr.line, value, if_true, if_false))

    def _emit_cmp(self, op: str, expr: ast.Binary) -> int:
        a, __ = self.gen_expr(expr.left)
        b, __ = self.gen_expr(expr.right)
        dst = self.func.new_vreg()
        self.emit(ir.Bin(expr.line, op, dst, a, b))
        return dst

    # -- expressions ----------------------------------------------------------

    _BIN_MAP = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem"}

    def gen_expr(self, expr: ast.Expr) -> tuple[int, str]:
        """Lower one expression; returns ``(vreg, static_type)``."""
        if isinstance(expr, ast.Num):
            dst = self.func.new_vreg()
            self.emit(ir.Const(expr.line, dst, expr.value))
            return dst, WORD
        if isinstance(expr, ast.Null):
            dst = self.func.new_vreg()
            self.emit(ir.Const(expr.line, dst, 0))
            return dst, NULL_T
        if isinstance(expr, ast.This):
            if self.cls is None:
                raise self.error("'this' outside a method", expr.line)
            this = self._lookup_local("this")
            dst = self.func.new_vreg()
            self._touch(this)
            self.emit(ir.LoadLocal(expr.line, dst, this))
            return dst, self.cls.name
        if isinstance(expr, ast.Str):
            symbol = self.string_pool.get(expr.value)
            if symbol is None:
                symbol = f"$str{len(self.string_pool)}"
                self.string_pool[expr.value] = symbol
            dst = self.func.new_vreg()
            self.emit(ir.AddrGlobal(expr.line, dst, symbol))
            return dst, WORD
        if isinstance(expr, ast.Var):
            return self._gen_var_read(expr)
        if isinstance(expr, ast.New):
            return self._gen_new(expr)
        if isinstance(expr, ast.NewArray):
            return self._gen_new_array(expr)
        if isinstance(expr, ast.FieldAccess):
            obj, offset, ftype = self._gen_field_addr(expr)
            dst = self.func.new_vreg()
            self.emit(ir.Load(expr.line, dst, obj, offset))
            return dst, ftype
        if isinstance(expr, (ast.MethodCall, ast.Call)):
            return self._gen_call_like(expr, want_result=True)
        if isinstance(expr, ast.Index):
            base, offset = self._gen_index_addr(expr)
            dst = self.func.new_vreg()
            self.emit(ir.Load(expr.line, dst, base, offset))
            return dst, WORD
        if isinstance(expr, ast.Unary):
            src, __ = self.gen_expr(expr.operand)
            dst = self.func.new_vreg()
            op = {"-": "neg", "!": "lognot"}[expr.op]
            self.emit(ir.Un(expr.line, op, dst, src))
            return dst, WORD
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr)
        raise self.error(
            f"unhandled expression {type(expr).__name__}", expr.line
        )

    def _gen_var_read(self, expr: ast.Var) -> tuple[int, str]:
        name = expr.name
        local = self._lookup_local(name)
        dst = self.func.new_vreg()
        if local is not None:
            if self.func.locals[local].is_array:
                self.emit(ir.AddrLocal(expr.line, dst, local))
            else:
                self._touch(local)
                self.emit(ir.LoadLocal(expr.line, dst, local))
            return dst, self.local_types[local]
        if self.cls is not None and name in self.cls.field_index:
            # A bare field name inside a method reads through 'this'.
            index, ftype = self.cls.field_index[name]
            this = self._lookup_local("this")
            base = self.func.new_vreg()
            self._touch(this)
            self.emit(ir.LoadLocal(expr.line, base, this))
            self.emit(ir.Load(expr.line, dst, base, 8 * (1 + index)))
            return dst, ftype
        info = self.syms.globals.get(name)
        if info is not None:
            addr = self.func.new_vreg()
            self.emit(ir.AddrGlobal(expr.line, addr, name))
            if info.array_size is not None:
                return addr, WORD
            self.emit(ir.Load(expr.line, dst, addr, 0))
            return dst, info.type
        raise self.error(f"undeclared name {name!r}", expr.line)

    def _gen_new(self, expr: ast.New) -> tuple[int, str]:
        cls = self.syms.classes.get(expr.class_name)
        if cls is None:
            raise self.error(f"unknown class {expr.class_name!r}", expr.line)
        size = self.func.new_vreg()
        self.emit(ir.Const(expr.line, size, cls.nwords))
        obj = self.func.new_vreg()
        self.emit(ir.Call(expr.line, obj, "heap_alloc", [size]))
        vtable = self.func.new_vreg()
        self.emit(ir.AddrGlobal(expr.line, vtable, cls.vtable_symbol))
        self.emit(ir.Store(expr.line, vtable, obj, 0))
        if cls.fields:
            zero = self.func.new_vreg()
            self.emit(ir.Const(expr.line, zero, 0))
            for index in range(len(cls.fields)):
                self.emit(ir.Store(expr.line, zero, obj, 8 * (1 + index)))
        return obj, cls.name

    def _gen_new_array(self, expr: ast.NewArray) -> tuple[int, str]:
        nwords, __ = self.gen_expr(expr.size)
        base = self.func.new_vreg()
        self.emit(ir.Call(expr.line, base, "heap_alloc", [nwords]))
        zero = self.func.new_vreg()
        self.emit(ir.Const(expr.line, zero, 0))
        self.emit(ir.Call(expr.line, None, "memset64", [base, zero, nwords]))
        return base, WORD

    def _gen_field_addr(
        self, expr: ast.FieldAccess
    ) -> tuple[int, int, str]:
        """Return (object_vreg, byte_offset, field_type) for ``e.f``."""
        obj, otype = self.gen_expr(expr.obj)
        cls = self._class_of(otype, expr.line, "field access")
        entry = cls.field_index.get(expr.name)
        if entry is None:
            raise self.error(
                f"class {cls.name!r} has no field {expr.name!r}", expr.line
            )
        index, ftype = entry
        return obj, 8 * (1 + index), ftype

    def _gen_binary(self, expr: ast.Binary) -> tuple[int, str]:
        op = expr.op
        if op in ("&&", "||"):
            return self._materialize_cond(expr), WORD
        if op in ("==", "!="):
            test = self._emit_cmp("cmpeq", expr)
            if op == "==":
                return test, WORD
            dst = self.func.new_vreg()
            self.emit(ir.Un(expr.line, "lognot", dst, test))
            return dst, WORD
        if op in self._COND_CMP:
            cmp_op, swapped = self._COND_CMP[op]
            left, right = (
                (expr.right, expr.left) if swapped else (expr.left, expr.right)
            )
            a, __ = self.gen_expr(left)
            b, __ = self.gen_expr(right)
            dst = self.func.new_vreg()
            self.emit(ir.Bin(expr.line, cmp_op, dst, a, b))
            return dst, WORD
        a, __ = self.gen_expr(expr.left)
        b, __ = self.gen_expr(expr.right)
        dst = self.func.new_vreg()
        self.emit(ir.Bin(expr.line, self._BIN_MAP[op], dst, a, b))
        return dst, WORD

    def _materialize_cond(self, expr: ast.Expr) -> int:
        dst = self.func.new_vreg()
        true_label = self.func.new_label("ctrue")
        false_label = self.func.new_label("cfalse")
        end_label = self.func.new_label("cend")
        self.gen_cond(expr, true_label, false_label)
        self.emit(ir.Label(expr.line, true_label))
        self.emit(ir.Const(expr.line, dst, 1))
        self.emit(ir.Jump(expr.line, end_label))
        self.emit(ir.Label(expr.line, false_label))
        self.emit(ir.Const(expr.line, dst, 0))
        self.emit(ir.Label(expr.line, end_label))
        return dst

    # -- lvalues, assignment --------------------------------------------------

    def _gen_index_addr(self, expr: ast.Index) -> tuple[int, int]:
        """Return (base_vreg, byte_offset) for ``base[index]``."""
        base, __ = self.gen_expr(expr.base)
        if isinstance(expr.index, ast.Num) and -4096 <= expr.index.value < 4096:
            return base, 8 * expr.index.value
        index, __ = self.gen_expr(expr.index)
        addr = self.func.new_vreg()
        self.emit(ir.Bin(expr.line, "s8add", addr, index, base))
        return addr, 0

    def _gen_assign(self, expr: ast.Assign) -> tuple[int, str]:
        target = expr.target
        line = expr.line

        if isinstance(target, ast.Var):
            name = target.name
            local = self._lookup_local(name)
            if local is not None:
                if self.func.locals[local].is_array:
                    raise self.error("cannot assign to an array", line)
                value, vtype = self.gen_expr(expr.value)
                self._touch(local)
                self.emit(ir.StoreLocal(line, local, value))
                return value, vtype
            if self.cls is not None and name in self.cls.field_index:
                index, ftype = self.cls.field_index[name]
                this = self._lookup_local("this")
                base = self.func.new_vreg()
                self._touch(this)
                self.emit(ir.LoadLocal(line, base, this))
                value, __ = self.gen_expr(expr.value)
                self.emit(ir.Store(line, value, base, 8 * (1 + index)))
                return value, ftype
            info = self.syms.globals.get(name)
            if info is None:
                raise self.error(f"cannot assign to {name!r}", line)
            if info.array_size is not None:
                raise self.error("cannot assign to an array", line)
            addr = self.func.new_vreg()
            self.emit(ir.AddrGlobal(line, addr, name))
            value, __ = self.gen_expr(expr.value)
            self.emit(ir.Store(line, value, addr, 0))
            return value, info.type

        if isinstance(target, ast.FieldAccess):
            obj, offset, ftype = self._gen_field_addr(target)
            value, __ = self.gen_expr(expr.value)
            self.emit(ir.Store(line, value, obj, offset))
            return value, ftype

        if isinstance(target, ast.Index):
            base, offset = self._gen_index_addr(target)
            value, __ = self.gen_expr(expr.value)
            self.emit(ir.Store(line, value, base, offset))
            return value, WORD

        raise self.error("not an assignable expression", line)

    # -- calls ----------------------------------------------------------------

    def _gen_call_like(
        self, expr: ast.Call | ast.MethodCall, want_result: bool
    ) -> tuple[int, str]:
        if isinstance(expr, ast.MethodCall):
            return self._gen_method_call(expr, want_result)
        return self._gen_direct_call(expr, want_result)

    def _gen_method_call(
        self, expr: ast.MethodCall, want_result: bool
    ) -> tuple[int, str]:
        line = expr.line
        obj, otype = self.gen_expr(expr.obj)
        cls = self._class_of(otype, line, "method call")
        slot = cls.slot_index.get(expr.name)
        if slot is None:
            raise self.error(
                f"class {cls.name!r} has no method {expr.name!r}", line
            )
        sig = cls.slots[slot]
        if len(expr.args) != sig.nparams:
            raise self.error(
                f"method {expr.name!r} takes {sig.nparams} arguments,"
                f" {len(expr.args)} given",
                line,
            )
        # Load the vtable pointer from word 0, then the slot: two data
        # loads per virtual call — the dispatch cost the paper's model
        # cannot remove, unlike the GAT load feeding 'new'.
        vtable = self.func.new_vreg()
        self.emit(ir.Load(line, vtable, obj, 0))
        target = self.func.new_vreg()
        self.emit(ir.Load(line, target, vtable, 8 * slot))
        args = [obj] + [self.gen_expr(arg)[0] for arg in expr.args]
        dst = self.func.new_vreg() if want_result else None
        self.emit(ir.CallPtr(line, dst, target, args))
        ret = sig.ret if sig.ret not in ("void",) else WORD
        return (dst if dst is not None else -1), ret

    def _gen_direct_call(
        self, expr: ast.Call, want_result: bool
    ) -> tuple[int, str]:
        line = expr.line
        name = expr.name
        if name in BUILTINS:
            return self._gen_builtin(name, expr)
        if self.cls is not None and name in self.cls.slot_index:
            # A bare method name inside a method dispatches on 'this'.
            call = ast.MethodCall(line, ast.This(line), name, expr.args)
            return self._gen_method_call(call, want_result)
        sig = self.syms.functions.get(name)
        if sig is None:
            raise self.error(f"call to undeclared function {name!r}", line)
        if len(expr.args) != sig.nparams:
            raise self.error(
                f"{name!r} takes {sig.nparams} arguments,"
                f" {len(expr.args)} given",
                line,
            )
        args = [self.gen_expr(arg)[0] for arg in expr.args]
        dst = self.func.new_vreg() if want_result else None
        self.emit(ir.Call(line, dst, name, args))
        ret = sig.ret if sig.ret not in ("void",) else WORD
        return (dst if dst is not None else -1), ret

    def _gen_builtin(self, name: str, expr: ast.Call) -> tuple[int, str]:
        kind = BUILTINS[name]
        want_arg = kind in ("putint", "putchar")
        if want_arg != bool(expr.args) or len(expr.args) > 1:
            raise self.error(f"wrong arguments for builtin {name}", expr.line)
        arg = self.gen_expr(expr.args[0])[0] if expr.args else None
        dst = self.func.new_vreg() if kind == "getticks" else None
        self.emit(ir.Pal(expr.line, kind, dst, arg))
        return (dst if dst is not None else -1), WORD


def lower_program(
    program: ast.Program, syms: ProgramSyms | None = None
) -> ir.IRModule:
    """Lower a parsed program to IR (running semantic analysis if needed)."""
    syms = syms or analyze(program)
    out = ir.IRModule(program.name)

    for name, info in syms.globals.items():
        out.global_sizes[name] = 8 * (info.array_size or 1)
    for cls in syms.classes.values():
        out.global_sizes[cls.vtable_symbol] = 8 * max(len(cls.slots), 1)

    for name, info in syms.globals.items():
        if not info.defined:
            continue
        size = 8 * (info.array_size or 1)
        out.globals.append(
            ir.IRGlobal(
                name, size, info.array_size is not None, info.init,
                not info.static,
            )
        )

    string_pool: dict[str, str] = {}
    seen_classes: set[str] = set()
    for decl in program.classes:
        if decl.is_extern or decl.name in seen_classes:
            continue
        seen_classes.add(decl.name)
        cls = syms.classes[decl.name]
        for method in decl.methods:
            assert method.body is not None  # parser enforces for definitions
            params = [("this", cls.name)] + list(method.params)
            out.functions.append(
                FuncLowerer(
                    syms,
                    cls.method_symbol(method.name),
                    params,
                    method.ret,
                    method.body,
                    method.line,
                    program.name,
                    string_pool,
                    cls=cls,
                ).lower()
            )
        # The vtable: one code-address slot per method, in slot order.
        # A methodless class still gets one zero word so the symbol has
        # extent.
        slots: list[int | str] = [
            f"{slot.impl}.{slot.name}" for slot in cls.slots
        ] or [0]
        out.globals.append(
            ir.IRGlobal(
                cls.vtable_symbol, 8 * len(slots), True, slots, exported=True
            )
        )

    for func in program.functions:
        out.functions.append(
            FuncLowerer(
                syms,
                func.name,
                func.params,
                func.ret,
                func.body,
                func.line,
                program.name,
                string_pool,
                exported=not func.static,
            ).lower()
        )

    for text, symbol in string_pool.items():
        words = [ord(ch) for ch in text] + [0]
        out.globals.append(
            ir.IRGlobal(symbol, 8 * len(words), True, words, exported=False)
        )
        out.global_sizes[symbol] = 8 * len(words)
    return out
