"""Decaf compiler driver: source text to relocatable object module.

The back half is shared with MiniC: Decaf lowers to the same IR, runs
the same optimizer and scheduler, and emits through the same
:class:`~repro.isa.asm.Assembler` (via
:func:`repro.minicc.driver.generate_object`).  A Decaf object module is
therefore indistinguishable to the linker, OM, layout/PGO, WPO
sharding, and the JIT from a MiniC one — which is the point.

``compile_all`` merges several Decaf sources into one unit (inlining
direct calls; virtual dispatch stays indirect — devirtualization is
future work for OM, not the frontend).
"""

from __future__ import annotations

from repro.decafc import astnodes as ast
from repro.decafc.irgen import lower_program
from repro.decafc.parser import parse
from repro.decafc.sema import analyze, merge_programs
from repro.minicc.driver import Options, generate_object
from repro.minicc.inline import inline_module
from repro.minicc.opt import optimize_module
from repro.objfile.objfile import ObjectFile


def parse_source(source: str, name: str) -> ast.Program:
    """Parse one translation unit (exposed for tools and tests)."""
    return parse(source, name)


def compile_module(
    source: str, name: str, options: Options | None = None
) -> ObjectFile:
    """Compile one Decaf source file separately (compile-each mode)."""
    program = parse(source, name)
    analyze(program)
    return _compile_unit(program, mode="each", options=options or Options())


def compile_all(
    sources: list[tuple[str, str]], unit_name: str, options: Options | None = None
) -> ObjectFile:
    """Compile several Decaf sources as a single unit (compile-all mode)."""
    programs = [parse(text, name) for name, text in sources]
    merged = merge_programs(programs, unit_name)
    return _compile_unit(merged, mode="all", options=options or Options())


def _compile_unit(
    program: ast.Program, mode: str, options: Options
) -> ObjectFile:
    irmod = lower_program(program)
    if mode == "all" and options.inline:
        inline_module(irmod)
    if options.optimize:
        optimize_module(irmod)
    return generate_object(irmod, mode, options)
