"""Decaf recursive-descent parser.

Grammar sketch::

    program   := (class | extern-class | global | func | proto)*
    class     := ["extern"] "class" ident ["extends" ident] "{" member* "}"
    member    := type ident ";"                         -- field
               | type ident "(" params ")" block        -- method
               | type ident "(" params ")" ";"          -- method proto
    type      := "int" | "void" | ident                 -- ident names a class

Everything is one 64-bit word at runtime; the class types exist so the
compiler can resolve field offsets and vtable slots statically, exactly
the information dynamic dispatch needs and nothing more.
"""

from __future__ import annotations

from repro.decafc import astnodes as ast
from repro.decafc.lexer import Token, tokenize
from repro.minicc.errors import CompileError

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


class Parser:
    """Parses one Decaf translation unit into an :class:`ast.Program`."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.filename = filename
        self.tokens: list[Token] = tokenize(source, filename)
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        if self.tok.kind != kind:
            raise self.error(f"expected {kind!r}, found {self.tok.value!r}")
        return self.advance()

    def accept(self, kind: str) -> bool:
        if self.tok.kind == kind:
            self.advance()
            return True
        return False

    def error(self, message: str) -> CompileError:
        return CompileError(message, self.filename, self.tok.line)

    # -- top level ----------------------------------------------------------

    def parse_program(self, name: str) -> ast.Program:
        program = ast.Program(name)
        while self.tok.kind != "eof":
            self._parse_top_decl(program)
        return program

    def _parse_type(self, allow_void: bool = False) -> str:
        if self.accept("int"):
            return "int"
        if self.tok.kind == "void":
            if not allow_void:
                raise self.error("'void' is only a return type")
            self.advance()
            return "void"
        if self.tok.kind == "ident":
            return str(self.advance().value)
        raise self.error(f"expected type, found {self.tok.value!r}")

    def _parse_top_decl(self, program: ast.Program) -> None:
        line = self.tok.line
        is_extern = self.accept("extern")
        if self.tok.kind == "class":
            program.classes.append(self._parse_class(is_extern, line))
            return
        is_static = self.accept("static")
        ret = self._parse_type(allow_void=True)
        name = str(self.expect("ident").value)

        if self.tok.kind == "(":
            params = self._parse_params()
            if self.accept(";"):
                program.protos.append(ast.FuncProto(name, params, ret, line))
                return
            if is_extern:
                raise self.error("extern function declaration needs ';'")
            body = self._parse_block()
            program.functions.append(
                ast.FuncDef(name, params, ret, body, is_static, line)
            )
            return

        if ret == "void":
            raise self.error("variables cannot be 'void'")
        array_size = None
        if self.accept("["):
            array_size = int(self.expect("num").value)
            self.expect("]")
            if array_size <= 0:
                raise CompileError(
                    "array size must be positive", self.filename, line
                )
        init = None
        if self.accept("="):
            if is_extern:
                raise self.error("extern variable cannot have an initializer")
            init = self._parse_const_init()
        self.expect(";")
        program.globals.append(
            ast.GlobalVar(name, ret, array_size, init, is_static, is_extern, line)
        )

    def _parse_const_init(self) -> list[int]:
        if self.accept("{"):
            values = [self._parse_const_expr()]
            while self.accept(","):
                if self.tok.kind == "}":
                    break
                values.append(self._parse_const_expr())
            self.expect("}")
            return values
        return [self._parse_const_expr()]

    def _parse_const_expr(self) -> int:
        negative = self.accept("-")
        value = int(self.expect("num").value)
        return -value if negative else value

    # -- classes ------------------------------------------------------------

    def _parse_class(self, is_extern: bool, line: int) -> ast.ClassDecl:
        self.expect("class")
        name = str(self.expect("ident").value)
        base = None
        if self.accept("extends"):
            base = str(self.expect("ident").value)
        self.expect("{")
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self.accept("}"):
            if self.tok.kind == "eof":
                raise self.error("unterminated class body")
            member_line = self.tok.line
            mtype = self._parse_type(allow_void=True)
            member = str(self.expect("ident").value)
            if self.tok.kind == "(":
                params = self._parse_params()
                if self.accept(";"):
                    if not is_extern:
                        raise self.error(
                            f"method {member!r} needs a body"
                        )
                    methods.append(
                        ast.MethodDecl(member, params, mtype, None, member_line)
                    )
                    continue
                if is_extern:
                    raise self.error(
                        f"extern class method {member!r} must be a prototype"
                    )
                body = self._parse_block()
                methods.append(
                    ast.MethodDecl(member, params, mtype, body, member_line)
                )
                continue
            if mtype == "void":
                raise self.error("fields cannot be 'void'")
            self.expect(";")
            fields.append(ast.FieldDecl(member, mtype, member_line))
        return ast.ClassDecl(name, base, fields, methods, is_extern, line)

    def _parse_params(self) -> list[tuple[str, str]]:
        self.expect("(")
        params: list[tuple[str, str]] = []
        if self.accept(")"):
            return params
        if self.tok.kind == "void" and self.peek().kind == ")":
            self.advance()
            self.expect(")")
            return params
        while True:
            ptype = self._parse_type()
            pname = str(self.expect("ident").value)
            params.append((pname, ptype))
            if not self.accept(","):
                break
        self.expect(")")
        if len(params) > 5:
            # 'this' consumes one of the six argument registers, so
            # methods (and for uniformity all Decaf callables) take at
            # most five declared parameters.
            raise self.error("Decaf callables take at most 5 parameters")
        return params

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        line = self.tok.line
        self.expect("{")
        body: list[ast.Stmt] = []
        while not self.accept("}"):
            if self.tok.kind == "eof":
                raise self.error("unterminated block")
            body.append(self._parse_stmt())
        return ast.Block(line, body)

    def _is_decl_start(self) -> bool:
        if self.tok.kind == "int":
            return True
        # "Ident ident" opens a class-typed declaration; a lone ident
        # starts an expression statement.
        return self.tok.kind == "ident" and self.peek().kind == "ident"

    def _parse_stmt(self) -> ast.Stmt:
        line = self.tok.line
        kind = self.tok.kind
        if kind == "{":
            return self._parse_block()
        if kind == ";":
            self.advance()
            return ast.Block(line, [])
        if self._is_decl_start():
            dtype = self._parse_type()
            name = str(self.expect("ident").value)
            array_size = None
            init = None
            if self.accept("["):
                if dtype != "int":
                    raise self.error("only 'int' arrays are supported")
                array_size = int(self.expect("num").value)
                self.expect("]")
            elif self.accept("="):
                init = self._parse_expr()
            self.expect(";")
            return ast.LocalDecl(line, name, dtype, array_size, init)
        if kind == "if":
            self.advance()
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            then = self._parse_stmt()
            other = self._parse_stmt() if self.accept("else") else None
            return ast.If(line, cond, then, other)
        if kind == "while":
            self.advance()
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            return ast.While(line, cond, self._parse_stmt())
        if kind == "for":
            self.advance()
            self.expect("(")
            init = None if self.tok.kind == ";" else self._parse_expr()
            self.expect(";")
            cond = None if self.tok.kind == ";" else self._parse_expr()
            self.expect(";")
            step = None if self.tok.kind == ")" else self._parse_expr()
            self.expect(")")
            return ast.For(line, init, cond, step, self._parse_stmt())
        if kind == "return":
            self.advance()
            value = None if self.tok.kind == ";" else self._parse_expr()
            self.expect(";")
            return ast.Return(line, value)
        if kind == "break":
            self.advance()
            self.expect(";")
            return ast.Break(line)
        if kind == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue(line)
        expr = self._parse_expr()
        self.expect(";")
        return ast.ExprStmt(line, expr)

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_binary(1)
        if self.tok.kind == "=":
            line = self.tok.line
            self.advance()
            value = self._parse_assignment()
            return ast.Assign(line, left, value)
        return left

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            prec = _PRECEDENCE.get(self.tok.kind, 0)
            if prec < min_prec:
                return left
            op = self.tok.kind
            line = self.tok.line
            self.advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(line, op, left, right)

    def _parse_unary(self) -> ast.Expr:
        line = self.tok.line
        if self.tok.kind in ("-", "!"):
            op = self.tok.kind
            self.advance()
            return ast.Unary(line, op, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            line = self.tok.line
            if self.accept("["):
                index = self._parse_expr()
                self.expect("]")
                expr = ast.Index(line, expr, index)
            elif self.accept("."):
                member = str(self.expect("ident").value)
                if self.tok.kind == "(":
                    args = self._parse_args()
                    expr = ast.MethodCall(line, expr, member, args)
                else:
                    expr = ast.FieldAccess(line, expr, member)
            else:
                return expr

    def _parse_args(self) -> list[ast.Expr]:
        self.expect("(")
        args: list[ast.Expr] = []
        if self.accept(")"):
            return args
        while True:
            args.append(self._parse_expr())
            if not self.accept(","):
                break
        self.expect(")")
        if len(args) > 5:
            raise self.error("Decaf calls take at most 5 arguments")
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "num":
            self.advance()
            return ast.Num(token.line, int(token.value))
        if token.kind == "str":
            self.advance()
            return ast.Str(token.line, str(token.value))
        if token.kind == "null":
            self.advance()
            return ast.Null(token.line)
        if token.kind == "this":
            self.advance()
            return ast.This(token.line)
        if token.kind == "new":
            self.advance()
            if self.accept("int"):
                self.expect("[")
                size = self._parse_expr()
                self.expect("]")
                return ast.NewArray(token.line, size)
            name = str(self.expect("ident").value)
            self.expect("(")
            self.expect(")")
            return ast.New(token.line, name)
        if token.kind == "ident":
            self.advance()
            if self.tok.kind == "(":
                args = self._parse_args()
                return ast.Call(token.line, str(token.value), args)
            return ast.Var(token.line, str(token.value))
        if token.kind == "(":
            self.advance()
            expr = self._parse_expr()
            self.expect(")")
            return expr
        raise self.error(f"unexpected token {token.value!r}")


def parse(source: str, name: str, filename: str | None = None) -> ast.Program:
    """Parse Decaf source text into a program AST."""
    return Parser(source, filename or name).parse_program(name)
