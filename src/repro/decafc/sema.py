"""Decaf semantic analysis: class table, layout, and vtable assignment.

Resolves the inheritance hierarchy and fixes the two runtime layouts
everything downstream depends on:

* **object layout** — word 0 is the vtable pointer, inherited fields
  first, each field one 8-byte word (``field i`` at byte ``8*(1+i)``);
* **vtable layout** — the base class's slots first, an override
  replacing its slot in place, new methods appended.  A subclass
  vtable is therefore a compatible extension of its base's, which is
  what makes dispatch through a base-typed reference sound.

An ``extern class`` declaration imports a class's shape (the Decaf
analog of a C header): layout and slots are computed identically, but
no code or vtable is emitted — the defining module exports the
``Class.$vtable`` data symbol and the ``Class.method`` procedures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.decafc import astnodes as ast
from repro.minicc.errors import CompileError

#: Decaf builtin calls, lowered straight to PAL operations.
BUILTINS = {"print": "putint", "printc": "putchar", "ticks": "getticks"}

#: Runtime helpers ``new`` lowers to; provided by the stdlib (libmc).
#: Injected as extern prototypes into every unit, so a unit that also
#: declares them trips the usual arity check instead of colliding.
RUNTIME_PROTOS = {"heap_alloc": 1, "memset64": 3}

#: The word type; class types are spelled by name.
WORD = "int"


@dataclass
class MethodSlot:
    """One vtable slot: the method and the class whose code fills it."""

    name: str
    nparams: int  # declared parameters, excluding 'this'
    ret: str
    impl: str  # class providing the implementation
    line: int


@dataclass
class ClassInfo:
    name: str
    base: str | None
    defined: bool  # False for extern (shape-only) declarations
    line: int
    fields: list[tuple[str, str]] = field(default_factory=list)
    field_index: dict[str, tuple[int, str]] = field(default_factory=dict)
    slots: list[MethodSlot] = field(default_factory=list)
    slot_index: dict[str, int] = field(default_factory=dict)

    @property
    def nwords(self) -> int:
        """Instance size in words: vtable pointer plus the fields."""
        return 1 + len(self.fields)

    @property
    def vtable_symbol(self) -> str:
        return f"{self.name}.$vtable"

    def method_symbol(self, method: str) -> str:
        return f"{self.name}.{method}"


@dataclass
class FuncSig:
    name: str
    nparams: int
    ret: str = WORD
    defined: bool = False
    static: bool = False


@dataclass
class GlobalInfo:
    name: str
    type: str = WORD
    array_size: int | None = None
    init: list[int] | None = None
    static: bool = False
    defined: bool = False


@dataclass
class ProgramSyms:
    """Name environment of one Decaf translation unit."""

    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FuncSig] = field(default_factory=dict)
    globals: dict[str, GlobalInfo] = field(default_factory=dict)

    def is_class_type(self, name: str) -> bool:
        return name in self.classes


def _shape_of(decl: ast.ClassDecl):
    return (
        decl.base,
        tuple((f.name, f.type) for f in decl.fields),
        tuple((m.name, len(m.params), m.ret) for m in decl.methods),
    )


def analyze(program: ast.Program) -> ProgramSyms:
    """Build and validate the unit's symbol tables."""
    syms = ProgramSyms()
    filename = program.name

    # Collapse class declarations: an extern shape import and the
    # definition may coexist (and must agree); two definitions clash.
    decls: dict[str, ast.ClassDecl] = {}
    for decl in program.classes:
        existing = decls.get(decl.name)
        if existing is None:
            decls[decl.name] = decl
            continue
        if not existing.is_extern and not decl.is_extern:
            raise CompileError(
                f"duplicate definition of class {decl.name!r}", filename, decl.line
            )
        if _shape_of(existing) != _shape_of(decl):
            raise CompileError(
                f"conflicting declarations of class {decl.name!r}",
                filename,
                decl.line,
            )
        if existing.is_extern and not decl.is_extern:
            decls[decl.name] = decl

    resolving: set[str] = set()

    def resolve(name: str, at_line: int) -> ClassInfo:
        info = syms.classes.get(name)
        if info is not None:
            return info
        decl = decls.get(name)
        if decl is None:
            raise CompileError(f"unknown base class {name!r}", filename, at_line)
        if name in resolving:
            raise CompileError(
                f"inheritance cycle through class {name!r}", filename, decl.line
            )
        resolving.add(name)
        base = resolve(decl.base, decl.line) if decl.base else None
        resolving.discard(name)
        info = _layout_class(decl, base, decls, filename)
        syms.classes[name] = info
        return info

    for decl in program.classes:
        resolve(decl.name, decl.line)

    for name, nparams in RUNTIME_PROTOS.items():
        syms.functions[name] = FuncSig(name, nparams, WORD, defined=False)

    for proto in program.protos:
        _check_value_types(syms, proto.params, proto.ret, filename, proto.line)
        _declare_function(
            syms, proto.name, proto.params, proto.ret, False, False,
            proto.line, filename,
        )
    for func in program.functions:
        _check_value_types(syms, func.params, func.ret, filename, func.line)
        _declare_function(
            syms, func.name, func.params, func.ret, True, func.static,
            func.line, filename,
        )

    for var in program.globals:
        _declare_global(syms, var, filename)

    for name in BUILTINS:
        if name in syms.functions or name in syms.globals or name in syms.classes:
            raise CompileError(f"{name!r} is a reserved builtin", filename)
    return syms


def _layout_class(
    decl: ast.ClassDecl,
    base: ClassInfo | None,
    decls: dict[str, ast.ClassDecl],
    filename: str,
) -> ClassInfo:
    info = ClassInfo(decl.name, decl.base, not decl.is_extern, decl.line)
    if base is not None:
        info.fields = list(base.fields)
        info.field_index = dict(base.field_index)
        info.slots = list(base.slots)
        info.slot_index = dict(base.slot_index)

    own_fields: set[str] = set()
    for fdecl in decl.fields:
        if fdecl.type != WORD and fdecl.type not in decls:
            raise CompileError(
                f"unknown type {fdecl.type!r}", filename, fdecl.line
            )
        if fdecl.name in own_fields:
            raise CompileError(
                f"duplicate field {fdecl.name!r} in class {decl.name!r}",
                filename,
                fdecl.line,
            )
        if fdecl.name in info.field_index:
            raise CompileError(
                f"field {fdecl.name!r} shadows an inherited field",
                filename,
                fdecl.line,
            )
        own_fields.add(fdecl.name)
        info.field_index[fdecl.name] = (len(info.fields), fdecl.type)
        info.fields.append((fdecl.name, fdecl.type))

    own_methods: set[str] = set()
    for method in decl.methods:
        for __, ptype in method.params:
            if ptype != WORD and ptype not in decls:
                raise CompileError(
                    f"unknown type {ptype!r}", filename, method.line
                )
        if method.ret not in (WORD, "void") and method.ret not in decls:
            raise CompileError(
                f"unknown type {method.ret!r}", filename, method.line
            )
        if method.name in own_methods:
            raise CompileError(
                f"duplicate method {method.name!r} in class {decl.name!r}",
                filename,
                method.line,
            )
        if method.name in info.field_index:
            raise CompileError(
                f"{method.name!r} is both a field and a method",
                filename,
                method.line,
            )
        own_methods.add(method.name)
        slot = info.slot_index.get(method.name)
        if slot is not None:
            inherited = info.slots[slot]
            if inherited.nparams != len(method.params):
                raise CompileError(
                    f"override of {method.name!r} changes parameter count",
                    filename,
                    method.line,
                )
            info.slots[slot] = MethodSlot(
                method.name, len(method.params), method.ret, decl.name,
                method.line,
            )
        else:
            info.slot_index[method.name] = len(info.slots)
            info.slots.append(
                MethodSlot(
                    method.name, len(method.params), method.ret, decl.name,
                    method.line,
                )
            )
    for fname in own_fields:
        if fname in info.slot_index:
            raise CompileError(
                f"{fname!r} is both a field and a method", filename, decl.line
            )
    return info


def _check_value_types(
    syms: ProgramSyms,
    params: list[tuple[str, str]],
    ret: str,
    filename: str,
    line: int,
) -> None:
    for __, ptype in params:
        if ptype != WORD and ptype not in syms.classes:
            raise CompileError(f"unknown type {ptype!r}", filename, line)
    if ret not in (WORD, "void") and ret not in syms.classes:
        raise CompileError(f"unknown type {ret!r}", filename, line)


def _declare_function(
    syms: ProgramSyms,
    name: str,
    params: list[tuple[str, str]],
    ret: str,
    defined: bool,
    static: bool,
    line: int,
    filename: str,
) -> None:
    if name in syms.classes:
        raise CompileError(
            f"{name!r} declared as both class and function", filename, line
        )
    if name in syms.globals:
        raise CompileError(
            f"{name!r} declared as both variable and function", filename, line
        )
    existing = syms.functions.get(name)
    if existing is None:
        syms.functions[name] = FuncSig(name, len(params), ret, defined, static)
        return
    if existing.nparams != len(params):
        raise CompileError(
            f"conflicting parameter counts for {name!r}", filename, line
        )
    if existing.defined and defined:
        raise CompileError(f"duplicate definition of {name!r}", filename, line)
    existing.defined = existing.defined or defined
    existing.static = existing.static or static
    if defined:
        existing.ret = ret


def _declare_global(
    syms: ProgramSyms, var: ast.GlobalVar, filename: str
) -> None:
    if var.name in syms.classes:
        raise CompileError(
            f"{var.name!r} declared as both class and variable",
            filename,
            var.line,
        )
    if var.name in syms.functions:
        raise CompileError(
            f"{var.name!r} declared as both variable and function",
            filename,
            var.line,
        )
    if var.type != WORD and var.type not in syms.classes:
        raise CompileError(f"unknown type {var.type!r}", filename, var.line)
    if var.array_size is not None and var.type != WORD:
        raise CompileError(
            "only 'int' arrays are supported", filename, var.line
        )
    existing = syms.globals.get(var.name)
    defined = not var.extern
    if existing is not None:
        if existing.defined and defined:
            raise CompileError(
                f"duplicate definition of {var.name!r}", filename, var.line
            )
        if not existing.defined and defined:
            existing.type = var.type
            existing.array_size = var.array_size
            existing.init = var.init
            existing.static = var.static
            existing.defined = True
        return
    if var.init is not None and var.array_size is not None:
        if len(var.init) > var.array_size:
            raise CompileError(
                f"too many initializers for {var.name!r}", filename, var.line
            )
    syms.globals[var.name] = GlobalInfo(
        var.name, var.type, var.array_size, var.init, var.static, defined
    )


def merge_programs(programs: list[ast.Program], name: str) -> ast.Program:
    """Concatenate translation units for compile-all mode.

    Extern shape imports collapse against the definition (checked for
    agreement by :func:`analyze`); duplicate *definitions* are an
    error, as they would be at link time.
    """
    merged = ast.Program(name)
    seen_protos: set[str] = set()
    seen_globals: dict[str, ast.GlobalVar] = {}
    for program in programs:
        merged.classes.extend(program.classes)
        for proto in program.protos:
            if proto.name not in seen_protos:
                seen_protos.add(proto.name)
                merged.protos.append(proto)
        for var in program.globals:
            existing = seen_globals.get(var.name)
            if existing is None:
                seen_globals[var.name] = var
                merged.globals.append(var)
            elif not existing.extern and not var.extern:
                raise CompileError(
                    f"duplicate definition of {var.name!r}", name, var.line
                )
            elif existing.extern and not var.extern:
                index = merged.globals.index(existing)
                merged.globals[index] = var
                seen_globals[var.name] = var
        merged.functions.extend(program.functions)
    analyze(merged)  # validates cross-module consistency
    return merged
