"""Decaf abstract syntax.

Plain dataclasses, mirroring :mod:`repro.minicc.astnodes`: statements
and expressions carry their source line first for diagnostics.  Types
are spelled as strings — ``"int"`` for the word type, a class name for
references, ``"void"`` for value-less returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- declarations ------------------------------------------------------------


@dataclass
class FieldDecl:
    name: str
    type: str  # "int" or a class name
    line: int


@dataclass
class MethodDecl:
    name: str
    params: list[tuple[str, str]]  # (name, type)
    ret: str  # "int", "void", or a class name
    body: "Block | None"  # None for prototypes (extern classes)
    line: int


@dataclass
class ClassDecl:
    name: str
    base: str | None
    fields: list[FieldDecl]
    methods: list[MethodDecl]
    is_extern: bool
    line: int


@dataclass
class GlobalVar:
    name: str
    type: str
    array_size: int | None
    init: list[int] | None
    static: bool
    extern: bool
    line: int


@dataclass
class FuncDef:
    name: str
    params: list[tuple[str, str]]
    ret: str
    body: "Block"
    static: bool
    line: int


@dataclass
class FuncProto:
    name: str
    params: list[tuple[str, str]]
    ret: str
    line: int


@dataclass
class Program:
    name: str
    classes: list[ClassDecl] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
    protos: list[FuncProto] = field(default_factory=list)


# -- statements --------------------------------------------------------------


class Stmt:
    pass


@dataclass
class Block(Stmt):
    line: int
    body: list[Stmt]


@dataclass
class LocalDecl(Stmt):
    line: int
    name: str
    type: str
    array_size: int | None
    init: "Expr | None"


@dataclass
class ExprStmt(Stmt):
    line: int
    expr: "Expr"


@dataclass
class If(Stmt):
    line: int
    cond: "Expr"
    then: Stmt
    other: Stmt | None


@dataclass
class While(Stmt):
    line: int
    cond: "Expr"
    body: Stmt


@dataclass
class For(Stmt):
    line: int
    init: "Expr | None"
    cond: "Expr | None"
    step: "Expr | None"
    body: Stmt


@dataclass
class Return(Stmt):
    line: int
    value: "Expr | None"


@dataclass
class Break(Stmt):
    line: int


@dataclass
class Continue(Stmt):
    line: int


# -- expressions -------------------------------------------------------------


class Expr:
    pass


@dataclass
class Num(Expr):
    line: int
    value: int


@dataclass
class Str(Expr):
    line: int
    value: str


@dataclass
class Null(Expr):
    line: int


@dataclass
class This(Expr):
    line: int


@dataclass
class Var(Expr):
    line: int
    name: str


@dataclass
class New(Expr):
    line: int
    class_name: str


@dataclass
class NewArray(Expr):
    line: int
    size: Expr


@dataclass
class FieldAccess(Expr):
    line: int
    obj: Expr
    name: str


@dataclass
class MethodCall(Expr):
    line: int
    obj: Expr
    name: str
    args: list[Expr]


@dataclass
class Call(Expr):
    line: int
    name: str
    args: list[Expr]


@dataclass
class Index(Expr):
    line: int
    base: Expr
    index: Expr


@dataclass
class Unary(Expr):
    line: int
    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    line: int
    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    line: int
    target: Expr
    value: Expr
