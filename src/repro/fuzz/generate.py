"""Seeded MiniC program generators for differential fuzzing.

Two generators live here:

* :class:`ProgramGen` — the original two-module generator the
  differential test has always used (kept verbatim; tests import it
  from here);
* :class:`RichProgramGen` — the fuzzing workhorse: multi-module
  programs exercising cross-module globals, arrays and pointer
  parameters, bounded recursion, dense ``switch`` dispatch (jump-table
  shapes), and common-symbol sorting edge cases (uninitialized arrays
  whose byte sizes straddle the 16-bit GAT displacement window).

Every generated program is guaranteed to terminate.  ``for`` loops use
constant bounds and reserved counters the statement generator never
assigns; ``while`` loops and recursion draw from a shared global fuel
counter (``__fuel``) that every iteration decrements — once it hits
zero, loops break and recursion bottoms out.  Fuel is an ordinary
cross-module global, so the termination discipline itself exercises
GP-relative addressing.

Generation is a pure function of ``(seed, GenConfig)``: the same pair
always yields byte-identical sources, which is what makes corpus
entries replayable.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

#: Reserved loop counters, one per nesting depth; the statement
#: generator never assigns them, so constant-bound loops always finish.
_COUNTERS = ("i", "j", "k")

#: Bytes per MiniC ``int`` (the 64-bit architecture of the paper).
WORD = 8

#: The GP-relative displacement window: one signed 16-bit offset.
GAT_WINDOW_BYTES = 1 << 15


class ProgramGen:
    """Generates a two-module program from a seed."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.depth = 0

    def expr(self, depth: int = 0) -> str:
        rng = self.rng
        if depth > 2 or rng.random() < 0.35:
            return rng.choice(
                [
                    str(rng.randint(-100, 100)),
                    str(rng.randint(-(2**40), 2**40)),
                    "ga",
                    "gb",
                    "arr[%d]" % rng.randint(0, 7),
                    "x",
                    "y",
                ]
            )
        op = rng.choice(["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="])
        if rng.random() < 0.15:
            # Guarded division: denominator forced odd (nonzero).
            return f"(({self.expr(depth + 1)}) / (({self.expr(depth + 1)}) | 1))"
        if rng.random() < 0.1:
            return f"(({self.expr(depth + 1)}) %% (({self.expr(depth + 1)}) | 1))".replace("%%", "%")
        if rng.random() < 0.15:
            shift = rng.randint(0, 8)
            direction = rng.choice(["<<", ">>"])
            return f"(({self.expr(depth + 1)}) {direction} {shift})"
        if rng.random() < 0.2:
            return f"twist({self.expr(depth + 1)})"
        return f"(({self.expr(depth + 1)}) {op} ({self.expr(depth + 1)}))"

    def stmt(self, depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.35:
            target = rng.choice(["ga", "gb", "x", "y", f"arr[{rng.randint(0, 7)}]"])
            op = rng.choice(["=", "+=", "-=", "^="])
            return f"{target} {op} {self.expr()};"
        if roll < 0.5:
            return f"__putint({self.expr()});"
        if roll < 0.7 and depth < 2:
            body = " ".join(self.stmt(depth + 1) for __ in range(rng.randint(1, 3)))
            other = (
                f" else {{ {self.stmt(depth + 1)} }}" if rng.random() < 0.5 else ""
            )
            return f"if ({self.expr()}) {{ {body} }}{other}"
        if roll < 0.85 and depth < 2:
            bound = rng.randint(1, 6)
            var = ["i", "j", "k"][depth]  # distinct per depth: nested
            # loops sharing a counter would never terminate
            body = " ".join(self.stmt(depth + 1) for __ in range(rng.randint(1, 2)))
            return f"for ({var} = 0; {var} < {bound}; {var}++) {{ {body} }}"
        return f"y = twist({self.expr()});"

    def module_pair(self) -> tuple[str, str]:
        rng = self.rng
        body = " ".join(self.stmt() for __ in range(rng.randint(3, 7)))
        main = f"""
        int ga;
        int gb = {rng.randint(-50, 50)};
        int arr[8];
        extern int twist(int v);
        int main() {{
            int x = {rng.randint(-10, 10)};
            int y = 1;
            int i;
            int j;
            int k;
            {body}
            __putint(ga); __putint(gb); __putint(x); __putint(y);
            for (i = 0; i < 8; i++) {{ __putint(arr[i]); }}
            return 0;
        }}
        """
        helper = f"""
        int tcount;
        int twist(int v) {{
            tcount = tcount + 1;
            return (v ^ {rng.randint(1, 99)}) + (v >> 3) - tcount;
        }}
        """
        return main, helper


# -- the rich generator --------------------------------------------------------


@dataclass(frozen=True)
class GenConfig:
    """Feature mix of one generated program (the mutation space)."""

    modules: int = 3  # translation units, main lives in the first
    stmts: int = 6  # top-level statements in main's body
    helpers: int = 2  # helper functions per non-main module
    max_depth: int = 2  # statement/expression nesting bound
    fuel: int = 400  # shared budget for while loops and recursion
    recursion: bool = True  # bounded-depth self-recursive helpers
    switches: bool = True  # dense switch dispatch (jump tables)
    pointers: bool = True  # int* parameters walked over arrays
    while_loops: bool = True  # fuel-guarded while loops
    big_commons: bool = False  # commons straddling the GAT window
    dead_procs: bool = True  # never-called helpers (GC fodder)
    #: Which frontend(s) the program exercises: "minic" (the historical
    #: default — old corpus metadata deserializes to it), "decaf", or
    #: "mixed" (a Decaf program whose last module is a MiniC kernel
    #: unit, linked cross-language).  Mutation never flips language, so
    #: a corpus seed's descendants stay in its frontend's feature space.
    language: str = "minic"

    def mutated(self, rng: random.Random) -> GenConfig:
        """A neighbor in the feature space: one knob nudged."""
        knob = rng.choice(
            [
                "modules",
                "stmts",
                "helpers",
                "fuel",
                "recursion",
                "switches",
                "pointers",
                "while_loops",
                "big_commons",
                "dead_procs",
            ]
        )
        if knob == "modules":
            return dataclasses.replace(self, modules=rng.randint(2, 4))
        if knob == "stmts":
            return dataclasses.replace(self, stmts=rng.randint(3, 10))
        if knob == "helpers":
            return dataclasses.replace(self, helpers=rng.randint(1, 3))
        if knob == "fuel":
            return dataclasses.replace(self, fuel=rng.choice([50, 200, 400, 800]))
        return dataclasses.replace(self, **{knob: not getattr(self, knob)})


def random_config(
    rng: random.Random, languages: tuple[str, ...] = ("minic",)
) -> GenConfig:
    """A fresh feature mix (used when no corpus seed is being mutated).

    ``languages`` is the campaign's frontend palette; the language draw
    only consumes randomness when there is an actual choice, so
    single-language campaigns keep the historical rng stream.
    """
    config = GenConfig(
        modules=rng.randint(2, 4),
        stmts=rng.randint(3, 9),
        helpers=rng.randint(1, 3),
        fuel=rng.choice([50, 200, 400, 800]),
        recursion=rng.random() < 0.8,
        switches=rng.random() < 0.8,
        pointers=rng.random() < 0.8,
        while_loops=rng.random() < 0.7,
        big_commons=rng.random() < 0.5,
        dead_procs=rng.random() < 0.7,
    )
    if len(languages) > 1:
        return dataclasses.replace(config, language=rng.choice(list(languages)))
    if languages[0] != "minic":
        return dataclasses.replace(config, language=languages[0])
    return config


@dataclass(frozen=True)
class GeneratedProgram:
    """A multi-module MiniC program plus the recipe that made it."""

    seed: int
    config: GenConfig
    modules: tuple[tuple[str, str], ...]  # (filename, source)

    @property
    def sources(self) -> tuple[str, ...]:
        return tuple(text for __, text in self.modules)


@dataclass(frozen=True)
class _Global:
    name: str
    module: int
    size: int | None  # None: scalar; else array element count
    init: int | None  # None: common (uninitialized)


@dataclass(frozen=True)
class _Helper:
    name: str
    module: int
    kind: str  # "expr" | "walker" | "recursive" | "switch" | "dead"
    order: int  # helpers may only call strictly smaller orders


class RichProgramGen:
    """Grammar-based generator for the fuzzing campaign."""

    def __init__(self, seed: int, config: GenConfig | None = None):
        self.seed = seed
        self.config = config or GenConfig()
        self.rng = random.Random(seed)

    # -- planning -------------------------------------------------------------

    def _plan(self) -> None:
        rng, cfg = self.rng, self.config
        nmods = max(2, min(int(cfg.modules), 4))
        self.nmods = nmods

        self.globals: list[_Global] = []
        for m in range(nmods):
            self.globals.append(_Global(f"g{m}_0", m, None, None))
            self.globals.append(
                _Global(f"g{m}_1", m, None, rng.randint(-60, 60))
            )
            self.globals.append(
                _Global(f"a{m}_0", m, rng.choice([8, 16, 32]), None)
            )
        if cfg.big_commons:
            home = nmods - 1
            # One array whose byte size lands right on the 16-bit
            # displacement window, plus mid-size commons so the sorted
            # placement crosses the boundary inside the run of arrays.
            straddle = rng.randint(
                GAT_WINDOW_BYTES // WORD - 6, GAT_WINDOW_BYTES // WORD + 6
            )
            self.globals.append(_Global(f"big{home}_0", home, straddle, None))
            self.globals.append(
                _Global(f"big{home}_1", home, rng.randint(256, 1024), None)
            )

        self.helpers: list[_Helper] = []
        order = 0
        kinds = ["expr"]
        if cfg.pointers:
            kinds.append("walker")
        if cfg.recursion:
            kinds.append("recursive")
        if cfg.switches:
            kinds.append("switch")
        for m in range(1, nmods):
            for j in range(max(1, int(cfg.helpers))):
                kind = kinds[(order + j) % len(kinds)] if j else rng.choice(kinds)
                self.helpers.append(_Helper(f"h{m}_{j}", m, kind, order))
                order += 1
        if cfg.dead_procs:
            m = rng.randrange(1, nmods)
            self.helpers.append(_Helper(f"dead{m}_0", m, "dead", order))

        self.scalars = [g for g in self.globals if g.size is None]
        self.arrays = [g for g in self.globals if g.size is not None]
        self.callable = [h for h in self.helpers if h.kind != "dead"]

    # -- expressions ----------------------------------------------------------

    def _array_read(self, g: _Global, ctx: dict, depth: int) -> str:
        rng = self.rng
        if rng.random() < 0.5:
            return f"{g.name}[{rng.randint(0, g.size - 1)}]"
        mask = (1 << (g.size.bit_length() - 1)) - 1
        return f"{g.name}[({self._expr(ctx, depth + 1)}) & {mask}]"

    def _leaf(self, ctx: dict, depth: int) -> str:
        rng = self.rng
        choices = [
            lambda: str(rng.randint(-100, 100)),
            lambda: str(rng.randint(-(2**40), 2**40)),
            lambda: rng.choice([g.name for g in self.scalars]),
            lambda: "__fuel",
        ]
        if ctx["locals"]:
            choices.append(lambda: rng.choice(ctx["locals"]))
        if self.arrays:
            choices.append(
                lambda: self._array_read(rng.choice(self.arrays), ctx, depth)
            )
        return rng.choice(choices)()

    def _call(self, helper: _Helper, ctx: dict, depth: int) -> str:
        rng = self.rng
        if helper.kind == "walker":
            g = rng.choice(self.arrays)
            count = rng.randint(1, min(g.size, 16))
            return f"{helper.name}({g.name}, {count})"
        if helper.kind == "recursive":
            return f"{helper.name}({rng.randint(0, 6)}, {self._expr(ctx, depth + 1)})"
        if helper.kind == "switch":
            return f"{helper.name}({self._expr(ctx, depth + 1)})"
        return f"{helper.name}({self._expr(ctx, depth + 1)}, {self._expr(ctx, depth + 1)})"

    def _expr(self, ctx: dict, depth: int = 0) -> str:
        rng = self.rng
        if depth >= self.config.max_depth + 1 or rng.random() < 0.3:
            return self._leaf(ctx, depth)
        roll = rng.random()
        if roll < 0.08:
            return f"(({self._expr(ctx, depth + 1)}) / (({self._expr(ctx, depth + 1)}) | 1))"
        if roll < 0.14:
            return f"(({self._expr(ctx, depth + 1)}) % (({self._expr(ctx, depth + 1)}) | 1))"
        if roll < 0.24:
            shift = rng.randint(0, 9)
            direction = rng.choice(["<<", ">>"])
            return f"(({self._expr(ctx, depth + 1)}) {direction} {shift})"
        if roll < 0.3:
            op = rng.choice(["-", "~", "!"])
            return f"({op}({self._expr(ctx, depth + 1)}))"
        callables = [h for h in self.callable if h.order < ctx["max_order"]]
        if roll < 0.45 and callables:
            return self._call(rng.choice(callables), ctx, depth)
        op = rng.choice(["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!=", ">"])
        return f"(({self._expr(ctx, depth + 1)}) {op} ({self._expr(ctx, depth + 1)}))"

    # -- statements -----------------------------------------------------------

    def _assign_target(self, ctx: dict) -> str:
        rng = self.rng
        pool = [g.name for g in self.scalars if g.name != "__fuel"]
        pool += [v for v in ctx["locals"] if v not in _COUNTERS]
        target = rng.choice(pool + [None])
        if target is not None:
            return target
        g = rng.choice(self.arrays)
        mask = (1 << (g.size.bit_length() - 1)) - 1
        return f"{g.name}[({self._expr(ctx, 1)}) & {mask}]"

    def _stmt(self, ctx: dict, depth: int = 0) -> str:
        rng, cfg = self.rng, self.config
        roll = rng.random()
        if roll < 0.3:
            op = rng.choice(["=", "+=", "-=", "^="])
            return f"{self._assign_target(ctx)} {op} {self._expr(ctx)};"
        if roll < 0.42 and ctx["putint"]:
            return f"__putint({self._expr(ctx)});"
        if roll < 0.52:
            callables = [h for h in self.callable if h.order < ctx["max_order"]]
            if callables:
                acc = ctx["acc"]
                return f"{acc} ^= {self._call(rng.choice(callables), ctx, 0)};"
        if roll < 0.68 and depth < cfg.max_depth:
            body = " ".join(
                self._stmt(ctx, depth + 1) for __ in range(rng.randint(1, 2))
            )
            other = (
                f" else {{ {self._stmt(ctx, depth + 1)} }}"
                if rng.random() < 0.5
                else ""
            )
            return f"if ({self._expr(ctx)}) {{ {body} }}{other}"
        if roll < 0.8 and depth < min(cfg.max_depth, len(_COUNTERS)):
            var = _COUNTERS[depth]
            bound = rng.randint(1, 6)
            body = " ".join(
                self._stmt(ctx, depth + 1) for __ in range(rng.randint(1, 2))
            )
            return f"for ({var} = 0; {var} < {bound}; {var}++) {{ {body} }}"
        if roll < 0.88 and cfg.while_loops and depth < cfg.max_depth:
            # Fuel-guarded: terminates no matter what the condition does.
            body = self._stmt(ctx, depth + 1)
            return (
                f"while ({self._expr(ctx)}) {{ "
                f"if (__fuel <= 0) {{ break; }} __fuel = __fuel - 1; {body} }}"
            )
        if cfg.switches and depth < cfg.max_depth and rng.random() < 0.5:
            cases = " ".join(
                f"case {v}: {self._stmt(ctx, depth + 1)} break;"
                for v in range(rng.randint(3, 6))
            )
            return (
                f"switch (({self._expr(ctx)}) & 7) {{ {cases} "
                f"default: {self._stmt(ctx, depth + 1)} }}"
            )
        return f"{ctx['acc']} ^= {self._expr(ctx)};"

    # -- function bodies ------------------------------------------------------

    def _counter_decls(self) -> list[str]:
        return [f"int {var} = 0;" for var in _COUNTERS]

    def _helper_lines(self, helper: _Helper) -> list[str]:
        rng = self.rng
        ctx = {
            "locals": [],
            "acc": "r",
            "max_order": helper.order,
            "putint": False,
        }
        if helper.kind == "walker":
            step = rng.choice(["+", "^"])
            return [
                f"int {helper.name}(int *p, int n) {{",
                "    int r = 0;",
                "    int i = 0;",
                f"    for (i = 0; i < n; i++) {{ r = (r {step} p[i]) + {rng.randint(1, 9)}; }}",
                "    return r;",
                "}",
            ]
        if helper.kind == "recursive":
            ctx["locals"] = ["d", "v"]
            return [
                f"int {helper.name}(int d, int v) {{",
                "    if (d <= 0) { return v; }",
                "    if (__fuel <= 0) { return v; }",
                "    __fuel = __fuel - 1;",
                f"    return {helper.name}(d - 1, {self._expr(ctx)});",
                "}",
            ]
        if helper.kind == "switch":
            ctx["locals"] = ["x"]
            ncases = rng.randint(4, 8)
            lines = [
                f"int {helper.name}(int x) {{",
                "    int r = 0;",
                f"    switch (x & {(1 << (ncases - 1).bit_length()) - 1}) {{",
            ]
            for v in range(ncases):
                lines.append(f"    case {v}: r = {self._expr(ctx)}; break;")
            lines.append(f"    default: r = {self._expr(ctx)};")
            lines.append("    }")
            lines.append("    return r;")
            lines.append("}")
            return lines
        # "expr" and "dead" helpers: parameters plus a couple of
        # statements over the globals.
        ctx["locals"] = ["a", "b", "r"]
        lines = [f"int {helper.name}(int a, int b) {{", "    int r = 0;"]
        lines += [f"    {d}" for d in self._counter_decls()]
        for __ in range(rng.randint(1, 2)):
            lines.append(f"    {self._stmt(ctx)}")
        lines.append(f"    return (r ^ {self._expr(ctx)});")
        lines.append("}")
        return lines

    def _main_lines(self) -> list[str]:
        rng, cfg = self.rng, self.config
        ctx = {
            "locals": ["x", "y", "t"],
            "acc": "t",
            "max_order": len(self.helpers) + 1,
            "putint": True,
        }
        lines = [
            "int main() {",
            f"    int x = {rng.randint(-10, 10)};",
            f"    int y = {rng.randint(1, 20)};",
            "    int t = 0;",
        ]
        lines += [f"    {d}" for d in self._counter_decls()]
        for __ in range(max(1, int(cfg.stmts))):
            lines.append(f"    {self._stmt(ctx)}")
        # The dump: every observable, one line per statement so the
        # reducer can drop irrelevant observations.
        for g in self.scalars:
            lines.append(f"    __putint({g.name});")
        for g in self.arrays:
            lines.append(
                f"    for (i = 0; i < {g.size}; i++) {{ t = (t + ({g.name}[i] ^ (i + 1))); }} __putint(t);"
            )
        lines.append("    __putint(x);")
        lines.append("    __putint(y);")
        lines.append("    __putint(__fuel);")
        lines.append("    return 0;")
        lines.append("}")
        return lines

    # -- assembly -------------------------------------------------------------

    def _extern_lines(self, module: int) -> list[str]:
        lines = []
        if module != 0:
            lines.append("extern int __fuel;")
        for g in self.globals:
            if g.module == module:
                continue
            if g.size is None:
                lines.append(f"extern int {g.name};")
            else:
                lines.append(f"extern int {g.name}[{g.size}];")
        for h in self.helpers:
            if h.module == module or h.kind == "dead":
                continue
            sig = {
                "walker": "int *p, int n",
                "recursive": "int d, int v",
                "switch": "int x",
            }.get(h.kind, "int a, int b")
            lines.append(f"extern int {h.name}({sig});")
        return lines

    def _global_lines(self, module: int) -> list[str]:
        lines = []
        if module == 0:
            lines.append(f"int __fuel = {max(1, int(self.config.fuel))};")
        for g in self.globals:
            if g.module != module:
                continue
            if g.size is not None:
                lines.append(f"int {g.name}[{g.size}];")
            elif g.init is None:
                lines.append(f"int {g.name};")
            else:
                lines.append(f"int {g.name} = {g.init};")
        return lines

    def generate(self) -> GeneratedProgram:
        self._plan()
        # Bodies are generated in a fixed order (helpers by module and
        # index, then main) so the rng stream — and thus the program —
        # is a pure function of (seed, config).
        helper_lines: dict[str, list[str]] = {}
        for helper in self.helpers:
            helper_lines[helper.name] = self._helper_lines(helper)
        main_lines = self._main_lines()

        modules: list[tuple[str, str]] = []
        for m in range(self.nmods):
            lines = [f"/* fuzz seed={self.seed} module=m{m} */"]
            lines += self._extern_lines(m)
            lines += self._global_lines(m)
            for helper in self.helpers:
                if helper.module == m:
                    lines.append("")
                    lines += helper_lines[helper.name]
            if m == 0:
                lines.append("")
                lines += main_lines
            modules.append((f"m{m}.mc", "\n".join(lines) + "\n"))
        return GeneratedProgram(self.seed, self.config, tuple(modules))


# -- the Decaf generator -------------------------------------------------------


@dataclass(frozen=True)
class _Class:
    """One planned Decaf class: its home module and exact shape.

    ``own_methods`` is the declaration-order member list of the
    *definition*; extern shape imports in other modules must mirror it
    verbatim (sema compares shapes structurally), so the plan is the
    single source of truth for both spellings.
    """

    name: str
    base: str | None
    module: int
    fields: tuple[str, ...]
    own_methods: tuple[tuple[str, int, int], ...]  # (name, slot, nparams)


class RichDecafGen:
    """Grammar-based Decaf generator: hierarchies, overrides, dispatch.

    The OO counterpart of :class:`RichProgramGen`.  Each program plans a
    single-inheritance class chain whose definitions are spread across
    modules (so subclassing itself crosses translation units via
    ``extern class`` shape imports), overrides inherited vtable slots,
    and drives every call through dynamic dispatch — the
    function-pointer-dense shape that stresses OM's conservative
    address-calculation analysis hardest.

    Termination is structural rather than fueled: ``for`` loops use
    constant bounds and reserved counters the statement generator never
    assigns, and the callable graph is a DAG by construction — a vtable
    slot's implementation (any override of it) may only invoke slots
    strictly below its own, top-level helpers only call methods and
    strictly earlier helpers, kernels are leaves, and ``main`` sits on
    top.  Dispatch can pick any override of a slot at runtime, but every
    override obeys the same slot bound, so no cycle exists.

    With ``config.language == "mixed"`` the last module is a MiniC
    kernel unit: Decaf code calls MiniC kernels through extern
    prototypes and both sides read and write each other's globals, so
    the GAT, lituse relaxation, and WPO partitioning all see one
    address space built by two frontends.
    """

    def __init__(self, seed: int, config: GenConfig | None = None):
        self.seed = seed
        self.config = config or GenConfig(language="decaf")
        self.rng = random.Random(seed)
        self.mixed = self.config.language == "mixed"

    # -- planning -------------------------------------------------------------

    def _plan(self) -> None:
        rng, cfg = self.rng, self.config
        nmods = max(2, min(int(cfg.modules), 4))
        self.nmods = nmods
        # In mixed mode the last module slot is the MiniC kernel unit.
        self.ndecaf = nmods - 1 if self.mixed else nmods

        depth = rng.randint(2, 3)
        base_methods = rng.randint(2, 3)
        self.slot_sigs: list[int] = [
            rng.randint(1, 2) for __ in range(base_methods + depth - 1)
        ]

        self.classes: list[_Class] = []
        for k in range(depth):
            if self.ndecaf > 1:
                home = 1 + (k % (self.ndecaf - 1))
            else:
                home = 0
            fields = tuple(
                f"f{k}_{i}" for i in range(rng.randint(1, 2))
            )
            if k == 0:
                own = tuple(
                    (f"m{j}", j, self.slot_sigs[j]) for j in range(base_methods)
                )
            else:
                # One override of an existing slot plus one new slot.
                nslots = base_methods + k - 1
                over = rng.randrange(nslots)
                over_name = f"m{over}" if over < base_methods else f"n{over - base_methods + 1}"
                new_slot = base_methods + k - 1
                own = (
                    (over_name, over, self.slot_sigs[over]),
                    (f"n{k}", new_slot, self.slot_sigs[new_slot]),
                )
            self.classes.append(
                _Class(f"C{k}", f"C{k - 1}" if k else None, home, fields, own)
            )
        self.nslots = base_methods + depth - 1

        #: All fields visible on an instance of class k (inherited first).
        self.all_fields: list[tuple[str, ...]] = []
        inherited: tuple[str, ...] = ()
        for cls in self.classes:
            inherited = inherited + cls.fields
            self.all_fields.append(inherited)

        #: Slot names in slot order (override keeps the original name).
        self.slot_names = [f"m{j}" for j in range(base_methods)] + [
            f"n{k}" for k in range(1, depth)
        ]

        self.globals: list[_Global] = []
        for m in range(self.ndecaf):
            self.globals.append(_Global(f"dg{m}_0", m, None, None))
            self.globals.append(_Global(f"dg{m}_1", m, None, rng.randint(-60, 60)))
            self.globals.append(_Global(f"da{m}_0", m, rng.choice([8, 16]), None))
        if cfg.big_commons:
            home = self.ndecaf - 1
            straddle = rng.randint(
                GAT_WINDOW_BYTES // WORD - 6, GAT_WINDOW_BYTES // WORD + 6
            )
            self.globals.append(_Global(f"dbig{home}_0", home, straddle, None))
            self.globals.append(
                _Global(f"dbig{home}_1", home, rng.randint(256, 1024), None)
            )
        if self.mixed:
            # Defined on the Decaf side, read and written by the kernels.
            self.globals.append(_Global("dsh_0", 0, None, rng.randint(1, 40)))

        self.helpers: list[_Helper] = []
        order = 0
        for m in range(1, self.ndecaf):
            for j in range(max(1, int(cfg.helpers))):
                self.helpers.append(_Helper(f"dh{m}_{j}", m, "expr", order))
                order += 1
        if cfg.dead_procs and self.ndecaf > 0:
            m = rng.randrange(self.ndecaf)
            self.helpers.append(_Helper(f"ddead{m}_0", m, "dead", order))

        self.kernels = ["kq0", "kq1"] if self.mixed else []
        self.scalars = [g for g in self.globals if g.size is None]
        self.arrays = [g for g in self.globals if g.size is not None]
        self.callable = [h for h in self.helpers if h.kind != "dead"]

    def _class_of(self, name: str) -> _Class:
        return self.classes[int(name[1:])]

    # -- expressions ----------------------------------------------------------

    def _safe_index(self, size: int, ctx: dict, depth: int) -> str:
        rng = self.rng
        if rng.random() < 0.5:
            return str(rng.randint(0, size - 1))
        # Decaf has no bitwise mask; fold into range the portable way.
        return f"(((({self._expr(ctx, depth + 1)}) % {size}) + {size}) % {size})"

    def _array_read(self, g: _Global, ctx: dict, depth: int) -> str:
        return f"{g.name}[{self._safe_index(g.size, ctx, depth)}]"

    def _mix_scalars(self) -> list[str]:
        return ["mixg_0", "mixg_1"] if self.mixed else []

    def _leaf(self, ctx: dict, depth: int) -> str:
        rng = self.rng
        choices = [
            lambda: str(rng.randint(-100, 100)),
            lambda: str(rng.randint(-(2**40), 2**40)),
            lambda: rng.choice(
                [g.name for g in self.scalars] + self._mix_scalars()
            ),
        ]
        if ctx["locals"]:
            choices.append(lambda: rng.choice(ctx["locals"]))
        if ctx["fields"]:
            choices.append(lambda: rng.choice(ctx["fields"]))
        if self.arrays:
            choices.append(
                lambda: self._array_read(rng.choice(self.arrays), ctx, depth)
            )
        return rng.choice(choices)()

    def _method_call(
        self, receiver: str, slot: int, ctx: dict, depth: int
    ) -> str:
        args = ", ".join(
            self._expr(ctx, depth + 1) for __ in range(self.slot_sigs[slot])
        )
        name = self.slot_names[slot]
        return f"{receiver}.{name}({args})" if receiver else f"{name}({args})"

    def _call(self, ctx: dict, depth: int) -> str | None:
        """A DAG-respecting call, or None when nothing is callable here."""
        rng = self.rng
        options = []
        if self.kernels:
            options.append(
                lambda: f"{rng.choice(self.kernels)}"
                f"({self._expr(ctx, depth + 1)}, {self._expr(ctx, depth + 1)})"
            )
        max_slot = ctx["max_slot"]
        if ctx["this_slots"] and max_slot > 0:
            options.append(
                lambda: self._method_call(
                    rng.choice(["this", ""]), rng.randrange(max_slot), ctx, depth
                )
            )
        for obj, cls_name in ctx["objs"]:
            nslots = len(self._visible_slots(cls_name))
            callable_slots = min(nslots, max_slot)
            if callable_slots > 0:
                options.append(
                    lambda o=obj, n=callable_slots: self._method_call(
                        o, rng.randrange(n), ctx, depth
                    )
                )
        helpers = [h for h in self.callable if h.order < ctx["max_order"]]
        if helpers:
            options.append(
                lambda: f"{rng.choice(helpers).name}"
                f"({self._expr(ctx, depth + 1)}, {self._expr(ctx, depth + 1)})"
            )
        if not options:
            return None
        return rng.choice(options)()

    def _visible_slots(self, cls_name: str) -> list[str]:
        k = int(cls_name[1:])
        return self.slot_names[: len(self.slot_sigs) - (len(self.classes) - 1 - k)]

    def _expr(self, ctx: dict, depth: int = 0) -> str:
        rng = self.rng
        if depth >= self.config.max_depth + 1 or rng.random() < 0.3:
            return self._leaf(ctx, depth)
        roll = rng.random()
        if roll < 0.08:
            return f"(({self._expr(ctx, depth + 1)}) / {rng.choice([3, 5, 7])})"
        if roll < 0.16:
            return f"(({self._expr(ctx, depth + 1)}) % {rng.choice([9, 13, 17])})"
        if roll < 0.24:
            op = rng.choice(["-", "!"])
            return f"({op}({self._expr(ctx, depth + 1)}))"
        if roll < 0.44:
            call = self._call(ctx, depth)
            if call is not None:
                return call
        op = rng.choice(["+", "-", "*", "<", "<=", "==", "!=", ">", ">="])
        return f"(({self._expr(ctx, depth + 1)}) {op} ({self._expr(ctx, depth + 1)}))"

    # -- statements -----------------------------------------------------------

    def _assign_target(self, ctx: dict) -> str:
        rng = self.rng
        pool = [g.name for g in self.scalars] + self._mix_scalars()
        pool += [v for v in ctx["locals"] if v not in _COUNTERS]
        pool += list(ctx["fields"])
        for obj, cls_name in ctx["objs"]:
            k = int(cls_name[1:])
            pool += [f"{obj}.{f}" for f in self.all_fields[k]]
        target = rng.choice(pool + [None])
        if target is not None:
            return target
        g = rng.choice(self.arrays)
        return f"{g.name}[{self._safe_index(g.size, ctx, 1)}]"

    def _stmt(self, ctx: dict, depth: int = 0) -> str:
        rng, cfg = self.rng, self.config
        roll = rng.random()
        if roll < 0.3:
            target = self._assign_target(ctx)
            if rng.random() < 0.4:
                return f"{target} = ({target} + ({self._expr(ctx)}));"
            return f"{target} = {self._expr(ctx)};"
        if roll < 0.42 and ctx["putint"]:
            return f"print({self._expr(ctx)});"
        if roll < 0.54:
            call = self._call(ctx, 0)
            if call is not None:
                acc = ctx["acc"]
                return f"{acc} = ({acc} * 3 + {call});"
        if roll < 0.7 and depth < cfg.max_depth:
            body = " ".join(
                self._stmt(ctx, depth + 1) for __ in range(rng.randint(1, 2))
            )
            other = (
                f" else {{ {self._stmt(ctx, depth + 1)} }}"
                if rng.random() < 0.5
                else ""
            )
            return f"if ({self._expr(ctx)}) {{ {body} }}{other}"
        if roll < 0.85 and depth < min(cfg.max_depth, len(_COUNTERS)):
            var = _COUNTERS[depth]
            bound = rng.randint(1, 6)
            body = " ".join(
                self._stmt(ctx, depth + 1) for __ in range(rng.randint(1, 2))
            )
            return (
                f"for ({var} = 0; {var} < {bound}; {var} = {var} + 1) "
                f"{{ {body} }}"
            )
        return f"{ctx['acc']} = ({ctx['acc']} + ({self._expr(ctx)}));"

    def _counter_decls(self) -> list[str]:
        return [f"int {var} = 0;" for var in _COUNTERS]

    # -- bodies ---------------------------------------------------------------

    def _method_lines(self, cls: _Class, name: str, slot: int) -> list[str]:
        rng = self.rng
        k = int(cls.name[1:])
        params = [chr(ord("a") + i) for i in range(self.slot_sigs[slot])]
        ctx = {
            "locals": ["r"] + params,
            "fields": list(self.all_fields[k]),
            "objs": [],
            "acc": "r",
            "max_slot": slot,
            "this_slots": True,
            "max_order": 0,  # methods never call helpers (DAG discipline)
            "putint": False,
        }
        sig = ", ".join(f"int {p}" for p in params)
        lines = [f"    int {name}({sig}) {{", "        int r = 0;"]
        lines += [f"        {d}" for d in self._counter_decls()]
        for __ in range(rng.randint(1, 2)):
            lines.append(f"        {self._stmt(ctx)}")
        lines.append(f"        return (r + ({self._expr(ctx)}));")
        lines.append("    }")
        return lines

    def _helper_lines(self, helper: _Helper) -> list[str]:
        rng = self.rng
        # Helpers build an object and drive it through dispatch; the
        # receiver's dynamic class is a generator-time choice, so the
        # same helper source always dispatches the same way — but OM
        # cannot know that, which is the point.
        cls = rng.choice(self.classes)
        ctx = {
            "locals": ["r", "a", "b"],
            "fields": [],
            "objs": [("o", cls.name)],
            "acc": "r",
            "max_slot": self.nslots,
            "this_slots": False,
            "max_order": helper.order,
            "putint": False,
        }
        k = int(cls.name[1:])
        lines = [
            f"int {helper.name}(int a, int b) {{",
            "    int r = 0;",
            f"    {cls.name} o = new {cls.name}();",
            f"    o.{self.all_fields[k][0]} = a;",
        ]
        lines += [f"    {d}" for d in self._counter_decls()]
        for __ in range(rng.randint(1, 2)):
            lines.append(f"    {self._stmt(ctx)}")
        lines.append(f"    return (r + ({self._expr(ctx)}));")
        lines.append("}")
        return lines

    def _main_lines(self) -> list[str]:
        rng, cfg = self.rng, self.config
        # Object roster: one exactly-typed instance per class, plus one
        # base-typed reference to the most-derived class — the dispatch
        # site a vtable exists for.
        objs = []
        decls = []
        for k, cls in enumerate(self.classes):
            objs.append((f"o{k}", cls.name))
            decls.append(f"    {cls.name} o{k} = new {cls.name}();")
        top = self.classes[-1].name
        objs.append(("ob", "C0"))
        decls.append(f"    C0 ob = new {top}();")
        ctx = {
            "locals": ["x", "y", "t"],
            "fields": [],
            "objs": objs,
            "acc": "t",
            "max_slot": self.nslots,
            "this_slots": False,
            "max_order": len(self.helpers) + 1,
            "putint": True,
        }
        lines = [
            "int main() {",
            f"    int x = {rng.randint(-10, 10)};",
            f"    int y = {rng.randint(1, 20)};",
            "    int t = 0;",
        ]
        lines += [f"    {d}" for d in self._counter_decls()]
        lines += decls
        for k, cls in enumerate(self.classes):
            field = self.all_fields[k][-1]
            lines.append(f"    o{k}.{field} = {rng.randint(-9, 9)};")
        for __ in range(max(1, int(cfg.stmts))):
            lines.append(f"    {self._stmt(ctx)}")
        # The dump: every observable, one line per statement so the
        # reducer can drop irrelevant observations.  The base-typed
        # reference's slots all resolve through the derived vtable, so
        # the dump itself witnesses override resolution.
        for g in self.scalars:
            lines.append(f"    print({g.name});")
        for name in self._mix_scalars():
            lines.append(f"    print({name});")
        for g in self.arrays:
            lines.append(
                f"    for (i = 0; i < {g.size}; i = i + 1) "
                f"{{ t = (t + ({g.name}[i] + (i + 1))); }} print(t);"
            )
        for obj, cls_name in objs:
            k = int(cls_name[1:])
            for field in self.all_fields[k]:
                lines.append(f"    print({obj}.{field});")
            for slot, name in enumerate(self._visible_slots(cls_name)):
                args = ", ".join(
                    str(rng.randint(-5, 5)) for __ in range(self.slot_sigs[slot])
                )
                lines.append(f"    print({obj}.{name}({args}));")
        lines.append("    print(x);")
        lines.append("    print(y);")
        lines.append("    print(t);")
        lines.append("    return 0;")
        lines.append("}")
        return lines

    def _kernel_lines(self) -> list[str]:
        """The MiniC kernel unit: leaf functions, bit ops, shared globals."""
        rng = self.rng
        lines = [f"/* fuzz seed={self.seed} module=kern (MiniC) */"]
        lines.append("extern int dsh_0;")
        lines.append(f"int mixg_0 = {rng.randint(-40, 40)};")
        lines.append("int mixg_1;")
        lines.append("")
        lines.append("int kq0(int a, int b) {")
        lines.append("    mixg_1 = mixg_1 + 1;")
        lines.append(
            f"    return ((a ^ {rng.randint(1, 99)}) + (b << {rng.randint(1, 4)}))"
            f" - (dsh_0 & {rng.randint(1, 31)});"
        )
        lines.append("}")
        lines.append("")
        lines.append("int kq1(int a, int b) {")
        lines.append("    int r;")
        lines.append("    int i;")
        lines.append("    r = mixg_0;")
        lines.append(
            f"    for (i = 0; i < {rng.randint(2, 6)}; i++) "
            f"{{ r = (r ^ (a + i)) + (b >> 1); }}"
        )
        lines.append("    return r;")
        lines.append("}")
        return lines

    # -- assembly -------------------------------------------------------------

    def _class_decl_lines(self, cls: _Class, extern: bool) -> list[str]:
        head = "extern class" if extern else "class"
        extends = f" extends {cls.base}" if cls.base else ""
        lines = [f"{head} {cls.name}{extends} {{"]
        for field in cls.fields:
            lines.append(f"    int {field};")
        if extern:
            for name, slot, nparams in cls.own_methods:
                sig = ", ".join(
                    f"int {chr(ord('a') + i)}" for i in range(nparams)
                )
                lines.append(f"    int {name}({sig});")
        else:
            for name, slot, __ in cls.own_methods:
                lines.append("")
                lines += self._method_lines(cls, name, slot)
        lines.append("}")
        return lines

    def _extern_lines(self, module: int) -> list[str]:
        lines = []
        for g in self.globals:
            if g.module == module:
                continue
            if g.size is None:
                lines.append(f"extern int {g.name};")
            else:
                lines.append(f"extern int {g.name}[{g.size}];")
        for h in self.helpers:
            if h.module == module or h.kind == "dead":
                continue
            lines.append(f"extern int {h.name}(int a, int b);")
        for name in self._mix_scalars():
            lines.append(f"extern int {name};")
        for kernel in self.kernels:
            lines.append(f"extern int {kernel}(int a, int b);")
        return lines

    def _global_lines(self, module: int) -> list[str]:
        lines = []
        for g in self.globals:
            if g.module != module:
                continue
            if g.size is not None:
                lines.append(f"int {g.name}[{g.size}];")
            elif g.init is None:
                lines.append(f"int {g.name};")
            else:
                lines.append(f"int {g.name} = {g.init};")
        return lines

    def generate(self) -> GeneratedProgram:
        self._plan()
        # Fixed generation order (methods by class and slot, helpers,
        # main, kernels) keeps the program a pure function of
        # (seed, config); module assembly below draws no randomness.
        class_lines: dict[str, list[str]] = {}
        for cls in self.classes:
            class_lines[cls.name] = self._class_decl_lines(cls, extern=False)
        helper_lines: dict[str, list[str]] = {}
        for helper in self.helpers:
            helper_lines[helper.name] = self._helper_lines(helper)
        main_lines = self._main_lines()
        kernel_lines = self._kernel_lines() if self.mixed else None

        modules: list[tuple[str, str]] = []
        for m in range(self.ndecaf):
            lines = [f"/* fuzz seed={self.seed} module=d{m} (Decaf) */"]
            lines += self._extern_lines(m)
            # The whole chain, base first: a class is defined in its
            # home module and shape-imported everywhere else, so every
            # module can name every class (and subclassing crosses
            # translation units).
            for cls in self.classes:
                lines.append("")
                if cls.module == m:
                    lines += class_lines[cls.name]
                else:
                    lines += self._class_decl_lines(cls, extern=True)
            lines.append("")
            lines += self._global_lines(m)
            for helper in self.helpers:
                if helper.module == m:
                    lines.append("")
                    lines += helper_lines[helper.name]
            if m == 0:
                lines.append("")
                lines += main_lines
            modules.append((f"d{m}.dcf", "\n".join(lines) + "\n"))
        if kernel_lines is not None:
            modules.append(("kern.mc", "\n".join(kernel_lines) + "\n"))
        return GeneratedProgram(self.seed, self.config, tuple(modules))


def generate_program(seed: int, config: GenConfig | None = None) -> GeneratedProgram:
    """One deterministic program from (seed, config)."""
    config = config or GenConfig()
    if config.language in ("decaf", "mixed"):
        return RichDecafGen(seed, config).generate()
    if config.language != "minic":
        raise ValueError(f"unknown generator language {config.language!r}")
    return RichProgramGen(seed, config).generate()


# -- the scale generator -------------------------------------------------------


def generate_scale_program(
    seed: int, n_modules: int, *, salts: dict[int, int] | None = None
) -> GeneratedProgram:
    """A deterministic N-module chain program for scale experiments.

    The fuzz generators above clamp the module count to a handful; this
    builds exactly ``n_modules`` translation units.  ``main`` lives in
    module 0 and each later module exports one ``f{i}`` that calls the
    next module's ``f{i+1}``, so the call graph is a chain and every
    module references its neighbour's globals — GAT pressure and
    cross-module address loads both grow with N.

    ``salts`` maps module indices to small integers added to one
    addition-immediate constant inside that module's function.  A
    salted module compiles to different bytes while its instruction
    count — and therefore shard weights and partition boundaries —
    stays fixed.  That is exactly the "edit one module" shape the
    incremental-relink experiment needs: the edit must invalidate only
    the shard holding the module.
    """
    n_modules = max(2, int(n_modules))
    salts = dict(salts or {})
    rng = random.Random(seed)
    consts = [rng.randint(16, 80) for _ in range(n_modules)]
    sizes = [rng.choice([8, 16, 32]) for _ in range(n_modules)]

    modules: list[tuple[str, str]] = []
    for m in range(n_modules):
        const = consts[m] + int(salts.get(m, 0))
        lines = [f"/* scale seed={seed} module=s{m} */"]
        nxt = m + 1
        if nxt < n_modules:
            lines.append(f"extern int s{nxt}_g;")
            lines.append(f"extern int f{nxt}(int x);")
        lines.append(f"int s{m}_g = {rng.randint(-50, 50)};")
        lines.append(f"int s{m}_c;")
        lines.append(f"int s{m}_a[{sizes[m]}];")
        lines.append("")
        if m == 0:
            lines.append("int main() {")
            lines.append("    int r;")
            lines.append(f"    r = f1({const});")
            lines.append("    s0_g = r + s0_a[1] - s0_c;")
            lines.append("    return s0_g & 255;")
            lines.append("}")
        else:
            lines.append(f"int f{m}(int x) {{")
            lines.append("    int t;")
            lines.append(f"    t = x + {const};")
            lines.append(f"    s{m}_g = s{m}_g + t;")
            lines.append(f"    s{m}_a[t & {sizes[m] - 1}] = t - s{m}_c;")
            if nxt < n_modules:
                lines.append(f"    return f{nxt}(t) + s{nxt}_g;")
            else:
                lines.append(f"    return t + s{m}_g;")
            lines.append("}")
        modules.append((f"s{m}.mc", "\n".join(lines) + "\n"))
    return GeneratedProgram(seed, GenConfig(modules=n_modules), tuple(modules))
