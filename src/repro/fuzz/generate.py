"""Seeded MiniC program generators for differential fuzzing.

Two generators live here:

* :class:`ProgramGen` — the original two-module generator the
  differential test has always used (kept verbatim; tests import it
  from here);
* :class:`RichProgramGen` — the fuzzing workhorse: multi-module
  programs exercising cross-module globals, arrays and pointer
  parameters, bounded recursion, dense ``switch`` dispatch (jump-table
  shapes), and common-symbol sorting edge cases (uninitialized arrays
  whose byte sizes straddle the 16-bit GAT displacement window).

Every generated program is guaranteed to terminate.  ``for`` loops use
constant bounds and reserved counters the statement generator never
assigns; ``while`` loops and recursion draw from a shared global fuel
counter (``__fuel``) that every iteration decrements — once it hits
zero, loops break and recursion bottoms out.  Fuel is an ordinary
cross-module global, so the termination discipline itself exercises
GP-relative addressing.

Generation is a pure function of ``(seed, GenConfig)``: the same pair
always yields byte-identical sources, which is what makes corpus
entries replayable.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

#: Reserved loop counters, one per nesting depth; the statement
#: generator never assigns them, so constant-bound loops always finish.
_COUNTERS = ("i", "j", "k")

#: Bytes per MiniC ``int`` (the 64-bit architecture of the paper).
WORD = 8

#: The GP-relative displacement window: one signed 16-bit offset.
GAT_WINDOW_BYTES = 1 << 15


class ProgramGen:
    """Generates a two-module program from a seed."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.depth = 0

    def expr(self, depth: int = 0) -> str:
        rng = self.rng
        if depth > 2 or rng.random() < 0.35:
            return rng.choice(
                [
                    str(rng.randint(-100, 100)),
                    str(rng.randint(-(2**40), 2**40)),
                    "ga",
                    "gb",
                    "arr[%d]" % rng.randint(0, 7),
                    "x",
                    "y",
                ]
            )
        op = rng.choice(["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="])
        if rng.random() < 0.15:
            # Guarded division: denominator forced odd (nonzero).
            return f"(({self.expr(depth + 1)}) / (({self.expr(depth + 1)}) | 1))"
        if rng.random() < 0.1:
            return f"(({self.expr(depth + 1)}) %% (({self.expr(depth + 1)}) | 1))".replace("%%", "%")
        if rng.random() < 0.15:
            shift = rng.randint(0, 8)
            direction = rng.choice(["<<", ">>"])
            return f"(({self.expr(depth + 1)}) {direction} {shift})"
        if rng.random() < 0.2:
            return f"twist({self.expr(depth + 1)})"
        return f"(({self.expr(depth + 1)}) {op} ({self.expr(depth + 1)}))"

    def stmt(self, depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.35:
            target = rng.choice(["ga", "gb", "x", "y", f"arr[{rng.randint(0, 7)}]"])
            op = rng.choice(["=", "+=", "-=", "^="])
            return f"{target} {op} {self.expr()};"
        if roll < 0.5:
            return f"__putint({self.expr()});"
        if roll < 0.7 and depth < 2:
            body = " ".join(self.stmt(depth + 1) for __ in range(rng.randint(1, 3)))
            other = (
                f" else {{ {self.stmt(depth + 1)} }}" if rng.random() < 0.5 else ""
            )
            return f"if ({self.expr()}) {{ {body} }}{other}"
        if roll < 0.85 and depth < 2:
            bound = rng.randint(1, 6)
            var = ["i", "j", "k"][depth]  # distinct per depth: nested
            # loops sharing a counter would never terminate
            body = " ".join(self.stmt(depth + 1) for __ in range(rng.randint(1, 2)))
            return f"for ({var} = 0; {var} < {bound}; {var}++) {{ {body} }}"
        return f"y = twist({self.expr()});"

    def module_pair(self) -> tuple[str, str]:
        rng = self.rng
        body = " ".join(self.stmt() for __ in range(rng.randint(3, 7)))
        main = f"""
        int ga;
        int gb = {rng.randint(-50, 50)};
        int arr[8];
        extern int twist(int v);
        int main() {{
            int x = {rng.randint(-10, 10)};
            int y = 1;
            int i;
            int j;
            int k;
            {body}
            __putint(ga); __putint(gb); __putint(x); __putint(y);
            for (i = 0; i < 8; i++) {{ __putint(arr[i]); }}
            return 0;
        }}
        """
        helper = f"""
        int tcount;
        int twist(int v) {{
            tcount = tcount + 1;
            return (v ^ {rng.randint(1, 99)}) + (v >> 3) - tcount;
        }}
        """
        return main, helper


# -- the rich generator --------------------------------------------------------


@dataclass(frozen=True)
class GenConfig:
    """Feature mix of one generated program (the mutation space)."""

    modules: int = 3  # translation units, main lives in the first
    stmts: int = 6  # top-level statements in main's body
    helpers: int = 2  # helper functions per non-main module
    max_depth: int = 2  # statement/expression nesting bound
    fuel: int = 400  # shared budget for while loops and recursion
    recursion: bool = True  # bounded-depth self-recursive helpers
    switches: bool = True  # dense switch dispatch (jump tables)
    pointers: bool = True  # int* parameters walked over arrays
    while_loops: bool = True  # fuel-guarded while loops
    big_commons: bool = False  # commons straddling the GAT window
    dead_procs: bool = True  # never-called helpers (GC fodder)

    def mutated(self, rng: random.Random) -> GenConfig:
        """A neighbor in the feature space: one knob nudged."""
        knob = rng.choice(
            [
                "modules",
                "stmts",
                "helpers",
                "fuel",
                "recursion",
                "switches",
                "pointers",
                "while_loops",
                "big_commons",
                "dead_procs",
            ]
        )
        if knob == "modules":
            return dataclasses.replace(self, modules=rng.randint(2, 4))
        if knob == "stmts":
            return dataclasses.replace(self, stmts=rng.randint(3, 10))
        if knob == "helpers":
            return dataclasses.replace(self, helpers=rng.randint(1, 3))
        if knob == "fuel":
            return dataclasses.replace(self, fuel=rng.choice([50, 200, 400, 800]))
        return dataclasses.replace(self, **{knob: not getattr(self, knob)})


def random_config(rng: random.Random) -> GenConfig:
    """A fresh feature mix (used when no corpus seed is being mutated)."""
    return GenConfig(
        modules=rng.randint(2, 4),
        stmts=rng.randint(3, 9),
        helpers=rng.randint(1, 3),
        fuel=rng.choice([50, 200, 400, 800]),
        recursion=rng.random() < 0.8,
        switches=rng.random() < 0.8,
        pointers=rng.random() < 0.8,
        while_loops=rng.random() < 0.7,
        big_commons=rng.random() < 0.5,
        dead_procs=rng.random() < 0.7,
    )


@dataclass(frozen=True)
class GeneratedProgram:
    """A multi-module MiniC program plus the recipe that made it."""

    seed: int
    config: GenConfig
    modules: tuple[tuple[str, str], ...]  # (filename, source)

    @property
    def sources(self) -> tuple[str, ...]:
        return tuple(text for __, text in self.modules)


@dataclass(frozen=True)
class _Global:
    name: str
    module: int
    size: int | None  # None: scalar; else array element count
    init: int | None  # None: common (uninitialized)


@dataclass(frozen=True)
class _Helper:
    name: str
    module: int
    kind: str  # "expr" | "walker" | "recursive" | "switch" | "dead"
    order: int  # helpers may only call strictly smaller orders


class RichProgramGen:
    """Grammar-based generator for the fuzzing campaign."""

    def __init__(self, seed: int, config: GenConfig | None = None):
        self.seed = seed
        self.config = config or GenConfig()
        self.rng = random.Random(seed)

    # -- planning -------------------------------------------------------------

    def _plan(self) -> None:
        rng, cfg = self.rng, self.config
        nmods = max(2, min(int(cfg.modules), 4))
        self.nmods = nmods

        self.globals: list[_Global] = []
        for m in range(nmods):
            self.globals.append(_Global(f"g{m}_0", m, None, None))
            self.globals.append(
                _Global(f"g{m}_1", m, None, rng.randint(-60, 60))
            )
            self.globals.append(
                _Global(f"a{m}_0", m, rng.choice([8, 16, 32]), None)
            )
        if cfg.big_commons:
            home = nmods - 1
            # One array whose byte size lands right on the 16-bit
            # displacement window, plus mid-size commons so the sorted
            # placement crosses the boundary inside the run of arrays.
            straddle = rng.randint(
                GAT_WINDOW_BYTES // WORD - 6, GAT_WINDOW_BYTES // WORD + 6
            )
            self.globals.append(_Global(f"big{home}_0", home, straddle, None))
            self.globals.append(
                _Global(f"big{home}_1", home, rng.randint(256, 1024), None)
            )

        self.helpers: list[_Helper] = []
        order = 0
        kinds = ["expr"]
        if cfg.pointers:
            kinds.append("walker")
        if cfg.recursion:
            kinds.append("recursive")
        if cfg.switches:
            kinds.append("switch")
        for m in range(1, nmods):
            for j in range(max(1, int(cfg.helpers))):
                kind = kinds[(order + j) % len(kinds)] if j else rng.choice(kinds)
                self.helpers.append(_Helper(f"h{m}_{j}", m, kind, order))
                order += 1
        if cfg.dead_procs:
            m = rng.randrange(1, nmods)
            self.helpers.append(_Helper(f"dead{m}_0", m, "dead", order))

        self.scalars = [g for g in self.globals if g.size is None]
        self.arrays = [g for g in self.globals if g.size is not None]
        self.callable = [h for h in self.helpers if h.kind != "dead"]

    # -- expressions ----------------------------------------------------------

    def _array_read(self, g: _Global, ctx: dict, depth: int) -> str:
        rng = self.rng
        if rng.random() < 0.5:
            return f"{g.name}[{rng.randint(0, g.size - 1)}]"
        mask = (1 << (g.size.bit_length() - 1)) - 1
        return f"{g.name}[({self._expr(ctx, depth + 1)}) & {mask}]"

    def _leaf(self, ctx: dict, depth: int) -> str:
        rng = self.rng
        choices = [
            lambda: str(rng.randint(-100, 100)),
            lambda: str(rng.randint(-(2**40), 2**40)),
            lambda: rng.choice([g.name for g in self.scalars]),
            lambda: "__fuel",
        ]
        if ctx["locals"]:
            choices.append(lambda: rng.choice(ctx["locals"]))
        if self.arrays:
            choices.append(
                lambda: self._array_read(rng.choice(self.arrays), ctx, depth)
            )
        return rng.choice(choices)()

    def _call(self, helper: _Helper, ctx: dict, depth: int) -> str:
        rng = self.rng
        if helper.kind == "walker":
            g = rng.choice(self.arrays)
            count = rng.randint(1, min(g.size, 16))
            return f"{helper.name}({g.name}, {count})"
        if helper.kind == "recursive":
            return f"{helper.name}({rng.randint(0, 6)}, {self._expr(ctx, depth + 1)})"
        if helper.kind == "switch":
            return f"{helper.name}({self._expr(ctx, depth + 1)})"
        return f"{helper.name}({self._expr(ctx, depth + 1)}, {self._expr(ctx, depth + 1)})"

    def _expr(self, ctx: dict, depth: int = 0) -> str:
        rng = self.rng
        if depth >= self.config.max_depth + 1 or rng.random() < 0.3:
            return self._leaf(ctx, depth)
        roll = rng.random()
        if roll < 0.08:
            return f"(({self._expr(ctx, depth + 1)}) / (({self._expr(ctx, depth + 1)}) | 1))"
        if roll < 0.14:
            return f"(({self._expr(ctx, depth + 1)}) % (({self._expr(ctx, depth + 1)}) | 1))"
        if roll < 0.24:
            shift = rng.randint(0, 9)
            direction = rng.choice(["<<", ">>"])
            return f"(({self._expr(ctx, depth + 1)}) {direction} {shift})"
        if roll < 0.3:
            op = rng.choice(["-", "~", "!"])
            return f"({op}({self._expr(ctx, depth + 1)}))"
        callables = [h for h in self.callable if h.order < ctx["max_order"]]
        if roll < 0.45 and callables:
            return self._call(rng.choice(callables), ctx, depth)
        op = rng.choice(["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!=", ">"])
        return f"(({self._expr(ctx, depth + 1)}) {op} ({self._expr(ctx, depth + 1)}))"

    # -- statements -----------------------------------------------------------

    def _assign_target(self, ctx: dict) -> str:
        rng = self.rng
        pool = [g.name for g in self.scalars if g.name != "__fuel"]
        pool += [v for v in ctx["locals"] if v not in _COUNTERS]
        target = rng.choice(pool + [None])
        if target is not None:
            return target
        g = rng.choice(self.arrays)
        mask = (1 << (g.size.bit_length() - 1)) - 1
        return f"{g.name}[({self._expr(ctx, 1)}) & {mask}]"

    def _stmt(self, ctx: dict, depth: int = 0) -> str:
        rng, cfg = self.rng, self.config
        roll = rng.random()
        if roll < 0.3:
            op = rng.choice(["=", "+=", "-=", "^="])
            return f"{self._assign_target(ctx)} {op} {self._expr(ctx)};"
        if roll < 0.42 and ctx["putint"]:
            return f"__putint({self._expr(ctx)});"
        if roll < 0.52:
            callables = [h for h in self.callable if h.order < ctx["max_order"]]
            if callables:
                acc = ctx["acc"]
                return f"{acc} ^= {self._call(rng.choice(callables), ctx, 0)};"
        if roll < 0.68 and depth < cfg.max_depth:
            body = " ".join(
                self._stmt(ctx, depth + 1) for __ in range(rng.randint(1, 2))
            )
            other = (
                f" else {{ {self._stmt(ctx, depth + 1)} }}"
                if rng.random() < 0.5
                else ""
            )
            return f"if ({self._expr(ctx)}) {{ {body} }}{other}"
        if roll < 0.8 and depth < min(cfg.max_depth, len(_COUNTERS)):
            var = _COUNTERS[depth]
            bound = rng.randint(1, 6)
            body = " ".join(
                self._stmt(ctx, depth + 1) for __ in range(rng.randint(1, 2))
            )
            return f"for ({var} = 0; {var} < {bound}; {var}++) {{ {body} }}"
        if roll < 0.88 and cfg.while_loops and depth < cfg.max_depth:
            # Fuel-guarded: terminates no matter what the condition does.
            body = self._stmt(ctx, depth + 1)
            return (
                f"while ({self._expr(ctx)}) {{ "
                f"if (__fuel <= 0) {{ break; }} __fuel = __fuel - 1; {body} }}"
            )
        if cfg.switches and depth < cfg.max_depth and rng.random() < 0.5:
            cases = " ".join(
                f"case {v}: {self._stmt(ctx, depth + 1)} break;"
                for v in range(rng.randint(3, 6))
            )
            return (
                f"switch (({self._expr(ctx)}) & 7) {{ {cases} "
                f"default: {self._stmt(ctx, depth + 1)} }}"
            )
        return f"{ctx['acc']} ^= {self._expr(ctx)};"

    # -- function bodies ------------------------------------------------------

    def _counter_decls(self) -> list[str]:
        return [f"int {var} = 0;" for var in _COUNTERS]

    def _helper_lines(self, helper: _Helper) -> list[str]:
        rng = self.rng
        ctx = {
            "locals": [],
            "acc": "r",
            "max_order": helper.order,
            "putint": False,
        }
        if helper.kind == "walker":
            step = rng.choice(["+", "^"])
            return [
                f"int {helper.name}(int *p, int n) {{",
                "    int r = 0;",
                "    int i = 0;",
                f"    for (i = 0; i < n; i++) {{ r = (r {step} p[i]) + {rng.randint(1, 9)}; }}",
                "    return r;",
                "}",
            ]
        if helper.kind == "recursive":
            ctx["locals"] = ["d", "v"]
            return [
                f"int {helper.name}(int d, int v) {{",
                "    if (d <= 0) { return v; }",
                "    if (__fuel <= 0) { return v; }",
                "    __fuel = __fuel - 1;",
                f"    return {helper.name}(d - 1, {self._expr(ctx)});",
                "}",
            ]
        if helper.kind == "switch":
            ctx["locals"] = ["x"]
            ncases = rng.randint(4, 8)
            lines = [
                f"int {helper.name}(int x) {{",
                "    int r = 0;",
                f"    switch (x & {(1 << (ncases - 1).bit_length()) - 1}) {{",
            ]
            for v in range(ncases):
                lines.append(f"    case {v}: r = {self._expr(ctx)}; break;")
            lines.append(f"    default: r = {self._expr(ctx)};")
            lines.append("    }")
            lines.append("    return r;")
            lines.append("}")
            return lines
        # "expr" and "dead" helpers: parameters plus a couple of
        # statements over the globals.
        ctx["locals"] = ["a", "b", "r"]
        lines = [f"int {helper.name}(int a, int b) {{", "    int r = 0;"]
        lines += [f"    {d}" for d in self._counter_decls()]
        for __ in range(rng.randint(1, 2)):
            lines.append(f"    {self._stmt(ctx)}")
        lines.append(f"    return (r ^ {self._expr(ctx)});")
        lines.append("}")
        return lines

    def _main_lines(self) -> list[str]:
        rng, cfg = self.rng, self.config
        ctx = {
            "locals": ["x", "y", "t"],
            "acc": "t",
            "max_order": len(self.helpers) + 1,
            "putint": True,
        }
        lines = [
            "int main() {",
            f"    int x = {rng.randint(-10, 10)};",
            f"    int y = {rng.randint(1, 20)};",
            "    int t = 0;",
        ]
        lines += [f"    {d}" for d in self._counter_decls()]
        for __ in range(max(1, int(cfg.stmts))):
            lines.append(f"    {self._stmt(ctx)}")
        # The dump: every observable, one line per statement so the
        # reducer can drop irrelevant observations.
        for g in self.scalars:
            lines.append(f"    __putint({g.name});")
        for g in self.arrays:
            lines.append(
                f"    for (i = 0; i < {g.size}; i++) {{ t = (t + ({g.name}[i] ^ (i + 1))); }} __putint(t);"
            )
        lines.append("    __putint(x);")
        lines.append("    __putint(y);")
        lines.append("    __putint(__fuel);")
        lines.append("    return 0;")
        lines.append("}")
        return lines

    # -- assembly -------------------------------------------------------------

    def _extern_lines(self, module: int) -> list[str]:
        lines = []
        if module != 0:
            lines.append("extern int __fuel;")
        for g in self.globals:
            if g.module == module:
                continue
            if g.size is None:
                lines.append(f"extern int {g.name};")
            else:
                lines.append(f"extern int {g.name}[{g.size}];")
        for h in self.helpers:
            if h.module == module or h.kind == "dead":
                continue
            sig = {
                "walker": "int *p, int n",
                "recursive": "int d, int v",
                "switch": "int x",
            }.get(h.kind, "int a, int b")
            lines.append(f"extern int {h.name}({sig});")
        return lines

    def _global_lines(self, module: int) -> list[str]:
        lines = []
        if module == 0:
            lines.append(f"int __fuel = {max(1, int(self.config.fuel))};")
        for g in self.globals:
            if g.module != module:
                continue
            if g.size is not None:
                lines.append(f"int {g.name}[{g.size}];")
            elif g.init is None:
                lines.append(f"int {g.name};")
            else:
                lines.append(f"int {g.name} = {g.init};")
        return lines

    def generate(self) -> GeneratedProgram:
        self._plan()
        # Bodies are generated in a fixed order (helpers by module and
        # index, then main) so the rng stream — and thus the program —
        # is a pure function of (seed, config).
        helper_lines: dict[str, list[str]] = {}
        for helper in self.helpers:
            helper_lines[helper.name] = self._helper_lines(helper)
        main_lines = self._main_lines()

        modules: list[tuple[str, str]] = []
        for m in range(self.nmods):
            lines = [f"/* fuzz seed={self.seed} module=m{m} */"]
            lines += self._extern_lines(m)
            lines += self._global_lines(m)
            for helper in self.helpers:
                if helper.module == m:
                    lines.append("")
                    lines += helper_lines[helper.name]
            if m == 0:
                lines.append("")
                lines += main_lines
            modules.append((f"m{m}.mc", "\n".join(lines) + "\n"))
        return GeneratedProgram(self.seed, self.config, tuple(modules))


def generate_program(seed: int, config: GenConfig | None = None) -> GeneratedProgram:
    """One deterministic program from (seed, config)."""
    return RichProgramGen(seed, config).generate()


# -- the scale generator -------------------------------------------------------


def generate_scale_program(
    seed: int, n_modules: int, *, salts: dict[int, int] | None = None
) -> GeneratedProgram:
    """A deterministic N-module chain program for scale experiments.

    The fuzz generators above clamp the module count to a handful; this
    builds exactly ``n_modules`` translation units.  ``main`` lives in
    module 0 and each later module exports one ``f{i}`` that calls the
    next module's ``f{i+1}``, so the call graph is a chain and every
    module references its neighbour's globals — GAT pressure and
    cross-module address loads both grow with N.

    ``salts`` maps module indices to small integers added to one
    addition-immediate constant inside that module's function.  A
    salted module compiles to different bytes while its instruction
    count — and therefore shard weights and partition boundaries —
    stays fixed.  That is exactly the "edit one module" shape the
    incremental-relink experiment needs: the edit must invalidate only
    the shard holding the module.
    """
    n_modules = max(2, int(n_modules))
    salts = dict(salts or {})
    rng = random.Random(seed)
    consts = [rng.randint(16, 80) for _ in range(n_modules)]
    sizes = [rng.choice([8, 16, 32]) for _ in range(n_modules)]

    modules: list[tuple[str, str]] = []
    for m in range(n_modules):
        const = consts[m] + int(salts.get(m, 0))
        lines = [f"/* scale seed={seed} module=s{m} */"]
        nxt = m + 1
        if nxt < n_modules:
            lines.append(f"extern int s{nxt}_g;")
            lines.append(f"extern int f{nxt}(int x);")
        lines.append(f"int s{m}_g = {rng.randint(-50, 50)};")
        lines.append(f"int s{m}_c;")
        lines.append(f"int s{m}_a[{sizes[m]}];")
        lines.append("")
        if m == 0:
            lines.append("int main() {")
            lines.append("    int r;")
            lines.append(f"    r = f1({const});")
            lines.append("    s0_g = r + s0_a[1] - s0_c;")
            lines.append("    return s0_g & 255;")
            lines.append("}")
        else:
            lines.append(f"int f{m}(int x) {{")
            lines.append("    int t;")
            lines.append(f"    t = x + {const};")
            lines.append(f"    s{m}_g = s{m}_g + t;")
            lines.append(f"    s{m}_a[t & {sizes[m] - 1}] = t - s{m}_c;")
            if nxt < n_modules:
                lines.append(f"    return f{nxt}(t) + s{nxt}_g;")
            else:
                lines.append(f"    return t + s{m}_g;")
            lines.append("}")
        modules.append((f"s{m}.mc", "\n".join(lines) + "\n"))
    return GeneratedProgram(seed, GenConfig(modules=n_modules), tuple(modules))
