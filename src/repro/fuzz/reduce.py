"""Delta-debugging reducer: shrink an interesting program to a repro.

Classic ddmin (Zeller & Hildebrandt) over the *statement lines* of a
generated program.  The generator emits one statement per line exactly
so this works: declaration lines, braces, and function signatures are
structural and always kept, everything else is a removal candidate.
After ddmin converges the reducer also tries dropping whole procedures
and whole modules that survived, then re-runs ddmin until a fixpoint —
the result is 1-minimal at line granularity.

The interestingness predicate is caller-supplied (``modules -> bool``),
so the same machinery minimizes behavioral divergences, compiler
crashes, or anything else reproducible from source.  The predicate
must embed its own validity check (a candidate that fails to compile
should simply be uninteresting).
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.fuzz.generate import GeneratedProgram

Modules = Sequence[tuple[str, str]]
Predicate = Callable[[Modules], bool]

#: Lines the reducer never removes: structure, declarations, returns.
_KEEP_PREFIXES = ("/*", "{", "}", "int ", "extern ", "return", "if (__fuel")

_FUNC_RE = re.compile(r"^int\s+(\w+)\s*\(")


def _is_candidate(line: str) -> bool:
    stripped = line.strip()
    if not stripped:
        return False
    if stripped.startswith(_KEEP_PREFIXES):
        return False
    if stripped.endswith("{"):
        return False
    return True


@dataclass
class ReductionResult:
    """The minimized program plus how hard the reducer worked."""

    program: GeneratedProgram
    tests: int = 0
    removed_lines: int = 0
    removed_modules: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def modules(self) -> tuple[tuple[str, str], ...]:
        return self.program.modules


class _LineSpace:
    """A program as kept-line sets, rebuildable into module sources."""

    def __init__(self, modules: Modules):
        self.names = [name for name, __ in modules]
        self.lines = [text.splitlines() for __, text in modules]
        self.candidates: list[tuple[int, int]] = [
            (m, i)
            for m, module_lines in enumerate(self.lines)
            for i, line in enumerate(module_lines)
            if _is_candidate(line)
        ]

    def build(self, kept: Sequence[tuple[int, int]]) -> tuple[tuple[str, str], ...]:
        keep = set(kept)
        removable = set(self.candidates)
        out = []
        for m, (name, module_lines) in enumerate(zip(self.names, self.lines)):
            body = [
                line
                for i, line in enumerate(module_lines)
                if (m, i) not in removable or (m, i) in keep
            ]
            out.append((name, "\n".join(body) + "\n"))
        return tuple(out)


def _chunks(items: list, n: int) -> list[list]:
    size = max(1, len(items) // n)
    out = [items[i : i + size] for i in range(0, len(items), size)]
    return out[:n] if len(out) <= n else out[: n - 1] + [sum(out[n - 1 :], [])]


def _ddmin(space: _LineSpace, test: Callable, budget: list[int]) -> list:
    """Minimize the kept candidate set; ``test`` takes a kept-list."""
    current = list(space.candidates)
    if not current:
        return current
    n = 2
    while len(current) >= 2 and budget[0] > 0:
        shrunk = False
        pieces = _chunks(current, n)
        for piece in pieces:
            trial = [item for item in current if item not in set(piece)]
            budget[0] -= 1
            if test(trial):
                current = trial
                n = max(2, n - 1)
                shrunk = True
                break
            if budget[0] <= 0:
                break
        if not shrunk:
            if n >= len(current):
                break
            n = min(len(current), 2 * n)
    # 1-minimality sweep: no single remaining line is removable.
    for item in list(current):
        if budget[0] <= 0:
            break
        trial = [other for other in current if other != item]
        budget[0] -= 1
        if test(trial):
            current = trial
    return current


def _function_spans(text: str) -> list[tuple[str, int, int]]:
    """(name, first_line, last_line) for each top-level function."""
    lines = text.splitlines()
    spans = []
    start = None
    name = None
    for i, line in enumerate(lines):
        match = _FUNC_RE.match(line)
        if match and line.rstrip().endswith("{") and start is None:
            start, name = i, match.group(1)
        elif start is not None and line.startswith("}"):
            spans.append((name, start, i))
            start = None
    return spans


def _drop_unreferenced(
    modules: Modules, test: Predicate, budget: list[int]
) -> tuple[tuple[tuple[str, str], ...], bool, int]:
    """Try removing whole functions nothing else calls, then whole modules."""
    modules = tuple(modules)
    changed = False
    removed_modules = 0
    for m, (name, text) in enumerate(modules):
        for func, start, end in reversed(_function_spans(text)):
            if func == "main":
                continue
            # References elsewhere; extern declarations don't count.
            others = "\n".join(
                line
                for j, (__, t) in enumerate(modules)
                for i, line in enumerate(t.splitlines())
                if not line.lstrip().startswith("extern ")
                and not (j == m and start <= i <= end)
            )
            if re.search(rf"\b{func}\s*\(", others):
                continue
            lines = text.splitlines()
            trial_text = "\n".join(lines[:start] + lines[end + 1 :]) + "\n"
            trial = modules[:m] + ((name, trial_text),) + modules[m + 1 :]
            if budget[0] <= 0:
                return modules, changed, removed_modules
            budget[0] -= 1
            if test(trial):
                modules = trial
                text = trial_text
                changed = True
    for m in range(len(modules) - 1, 0, -1):  # never drop m0 (holds main)
        trial = modules[:m] + modules[m + 1 :]
        if budget[0] <= 0:
            break
        budget[0] -= 1
        if test(trial):
            modules = trial
            changed = True
            removed_modules += 1
    return modules, changed, removed_modules


def reduce_program(
    program: GeneratedProgram,
    is_interesting: Predicate,
    *,
    max_tests: int = 2000,
) -> ReductionResult:
    """Shrink ``program`` while ``is_interesting(modules)`` stays true.

    Returns the original program untouched (with a note) if the
    predicate does not hold on it — a reducer must never "minimize" a
    program into exhibiting a failure it didn't have.
    """
    result = ReductionResult(program)
    budget = [max_tests]
    if not is_interesting(program.modules):
        result.notes.append("predicate false on input; nothing to reduce")
        return result
    result.tests += 1

    modules = program.modules
    before_lines = sum(text.count("\n") for __, text in modules)
    while True:
        space = _LineSpace(modules)
        spent = budget[0]
        kept = _ddmin(space, lambda trial: is_interesting(space.build(trial)), budget)
        modules = space.build(kept)
        result.tests += spent - budget[0]
        spent = budget[0]
        modules, changed, dropped = _drop_unreferenced(modules, is_interesting, budget)
        result.tests += spent - budget[0]
        result.removed_modules += dropped
        if not changed or budget[0] <= 0:
            break

    after_lines = sum(text.count("\n") for __, text in modules)
    result.removed_lines = before_lines - after_lines
    result.program = dataclasses.replace(program, modules=tuple(modules))
    if budget[0] <= 0:
        result.notes.append(f"test budget ({max_tests}) exhausted")
    return result
