"""Provenance-guided differential fuzzing of the whole toolchain.

OM's pitch is that link-time rewriting is *safe*: every converted,
nullified, deleted, moved, or retargeted instruction must preserve
program behavior.  This package is the randomized check of that claim,
scaled up from the original ~100-line generator in the differential
test:

* :mod:`repro.fuzz.generate` — seeded, grammar-based MiniC program
  generators (multi-module, arrays/pointers, bounded recursion,
  switch/jump tables, GAT-window-straddling commons) under a
  guaranteed-termination fuel discipline;
* :mod:`repro.fuzz.oracle` — the differential oracle: build one program
  across the full (mode × link-variant) matrix, demand byte-identical
  output and monotone non-increasing executed instruction counts, and
  harvest the OM provenance events each link fired;
* :mod:`repro.fuzz.coverage` — transform-kind coverage
  ((action, pass) pairs) with rarity scoring, the signal that biases
  generation toward programs that light up rare transforms;
* :mod:`repro.fuzz.reduce` — a delta-debugging (ddmin) reducer that
  shrinks any interesting program to a 1-minimal repro;
* :mod:`repro.fuzz.corpus` — the on-disk corpus of coverage-novel and
  divergent programs, replayable byte-for-byte from their seeds;
* :mod:`repro.fuzz.campaign` — the fuzz loop itself
  (``python -m repro.experiments fuzz``): wave-scheduled, optionally
  fanned across a process pool, warm-startable through the
  content-addressed artifact cache.
"""

from repro.fuzz.campaign import CampaignStats, run_campaign
from repro.fuzz.corpus import CorpusEntry, list_entries, load_entry, replay_entry, save_entry
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.generate import GenConfig, GeneratedProgram, ProgramGen, RichProgramGen, generate_program
from repro.fuzz.oracle import Divergence, OracleReport, evaluate_program
from repro.fuzz.reduce import reduce_program

__all__ = [
    "CampaignStats",
    "CorpusEntry",
    "CoverageMap",
    "Divergence",
    "GenConfig",
    "GeneratedProgram",
    "OracleReport",
    "ProgramGen",
    "RichProgramGen",
    "evaluate_program",
    "generate_program",
    "list_entries",
    "load_entry",
    "reduce_program",
    "replay_entry",
    "run_campaign",
    "save_entry",
]
