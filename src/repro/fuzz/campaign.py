"""The fuzz loop: plan, evaluate, guide, reduce, persist.

A campaign is seeded and deterministic: a single master RNG plans every
iteration's (program seed, generator config), so ``--seed 0`` twice
produces the same corpus.  Iterations are scheduled in *waves* — one
task inline, or ``jobs`` tasks across a ``ProcessPoolExecutor`` sharing
the content-addressed disk cache — and results are always folded in
submission order, so parallelism never perturbs the outcome of the
guidance decisions.

Guidance is provenance coverage: each evaluated program's
``(action, pass)`` pairs feed a :class:`~repro.fuzz.coverage.CoverageMap`;
programs that light up never-seen pairs join the corpus as mutation
seeds, and the planner biases toward mutating the seeds whose coverage
is rarest under the current map.  Divergent programs are re-evaluated
inline, shrunk with the ddmin reducer, and persisted to the corpus with
their minimized sources and an OM provenance trace.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz import corpus as corpus_store
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.generate import GenConfig, generate_program, random_config
from repro.fuzz.oracle import (
    DEFAULT_MAX_INSTRUCTIONS,
    divergence_predicate,
    evaluate_program,
)
from repro.fuzz.reduce import reduce_program
from repro.obs.trace import TraceLog

#: Probability of mutating a corpus seed (vs. a fresh random config)
#: once the mutation pool is non-empty.
_MUTATE_BIAS = 0.6

# Worker-side disk cache, set once per pool worker by the initializer.
_WORKER_CACHE = None


def _fuzz_worker_init(cache_root: str, stamp: str) -> None:
    global _WORKER_CACHE
    from repro.cache import ArtifactCache

    _WORKER_CACHE = ArtifactCache(cache_root, stamp=stamp)


def _evaluate_task(seed: int, config_dict: dict, max_instructions: int) -> dict:
    """Worker entry point: generate + run the oracle, return plain data."""
    start = time.perf_counter()
    hits0, misses0 = _WORKER_CACHE.stats.snapshot() if _WORKER_CACHE else (0, 0)
    program = generate_program(seed, GenConfig(**config_dict))
    report = evaluate_program(
        program, cache=_WORKER_CACHE, max_instructions=max_instructions
    )
    hits1, misses1 = _WORKER_CACHE.stats.snapshot() if _WORKER_CACHE else (0, 0)
    return {
        "seed": seed,
        "config": config_dict,
        "pairs": sorted(report.coverage),
        "diverged": report.diverged,
        "kinds": [d.kind for d in report.divergences],
        "seconds": time.perf_counter() - start,
        "hits": hits1 - hits0,
        "misses": misses1 - misses0,
    }


@dataclass
class CampaignStats:
    """What a campaign did, formatted for humans and asserted by CI."""

    master_seed: int
    jobs: int = 1
    iterations: int = 0
    wall: float = 0.0
    divergences: list[str] = field(default_factory=list)
    corpus_paths: list[Path] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    replay_entry: str | None = None
    replay_ok: bool | None = None
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences and self.replay_ok is not False

    def format(self) -> str:
        lines = [
            f"fuzz: seed={self.master_seed} iterations={self.iterations} "
            f"divergences={len(self.divergences)} corpus={len(self.corpus_paths)} "
            f"jobs={self.jobs} wall={self.wall:.1f}s"
        ]
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"cache: hits={self.cache_hits} misses={self.cache_misses}"
            )
        lines.append(self.coverage.format())
        for summary in self.divergences:
            lines.append(f"DIVERGENCE: {summary}")
        if self.replay_entry is not None:
            verdict = "OK" if self.replay_ok else "MISMATCH"
            lines.append(
                f"replay: {self.replay_entry} regenerates byte-for-byte: {verdict}"
            )
        return "\n".join(lines)


def _provenance_trace(modules) -> TraceLog:
    """An OM-full provenance trace of a repro, for the corpus entry."""
    from repro.fuzz import oracle
    from repro.fuzz.generate import GeneratedProgram
    from repro.om import OMLevel, om_link

    program = GeneratedProgram(0, GenConfig(), tuple(modules))
    objects, libmc = oracle._compile_objects(program, "each")
    trace = TraceLog()
    om_link(objects, [libmc], level=OMLevel.FULL, trace=trace)
    return trace


def run_campaign(
    master_seed: int = 0,
    iterations: int = 50,
    *,
    time_budget: float | None = None,
    jobs: int = 1,
    corpus_dir: Path | str = "corpus",
    cache=None,
    trace: TraceLog | None = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    minimize: bool = True,
    languages: tuple[str, ...] = ("minic",),
    log=None,
) -> CampaignStats:
    """Run a deterministic fuzz campaign; returns its statistics.

    Stops after ``iterations`` evaluations or, with ``time_budget``
    (seconds), at the first wave boundary past the budget.  ``jobs > 1``
    fans evaluation across processes but requires a disk ``cache`` (the
    workers share artifacts through it); without one it falls back to
    inline execution.  ``languages`` is the frontend palette fresh
    configs draw from (``minic``, ``decaf``, ``mixed``); mutation keeps
    a corpus seed's language, so cross-language campaigns still breed
    within each frontend's feature space.
    """
    global _WORKER_CACHE
    say = log or (lambda message: None)
    if jobs > 1 and cache is None:
        say("fuzz: no disk cache; falling back to jobs=1")
        jobs = 1

    rng = random.Random(master_seed)
    stats = CampaignStats(master_seed=master_seed, jobs=jobs)
    pool: list[tuple[int, GenConfig, tuple]] = []  # (seed, config, pairs)
    hits0, misses0 = cache.stats.snapshot() if cache else (0, 0)
    started = time.perf_counter()

    def plan() -> tuple[int, GenConfig]:
        if pool and rng.random() < _MUTATE_BIAS:
            weights = [
                stats.coverage.rarity_score(pairs) + 0.01 for __, __, pairs in pool
            ]
            parent = rng.choices(pool, weights=weights)[0]
            return rng.randrange(1 << 32), parent[1].mutated(rng)
        if stats.iterations == 0 and not pool:
            return rng.randrange(1 << 32), GenConfig(language=languages[0])
        return rng.randrange(1 << 32), random_config(rng, languages)

    def fold(result: dict) -> None:
        stats.iterations += 1
        if executor is not None:
            # Worker-side cache traffic; inline traffic is captured by
            # the parent-side snapshot delta at the end.
            stats.cache_hits += result["hits"]
            stats.cache_misses += result["misses"]
        seed = result["seed"]
        config = GenConfig(**result["config"])
        fresh = stats.coverage.add(result["pairs"])
        if trace is not None:
            trace.event(
                f"iter-{stats.iterations}",
                cat="fuzz",
                seed=seed,
                diverged=result["diverged"],
                new_pairs=len(fresh),
                seconds=round(result["seconds"], 4),
            )
        if result["diverged"]:
            _handle_divergence(seed, config)
        elif fresh:
            program = generate_program(seed, config)
            path = corpus_store.save_entry(
                corpus_dir,
                program,
                kind="coverage",
                info={"new_pairs": sorted(map(list, fresh))},
            )
            stats.corpus_paths.append(path)
            pool.append((seed, config, tuple(map(tuple, result["pairs"]))))
            say(
                f"fuzz [{stats.iterations}] seed={seed} "
                f"+{len(fresh)} new pairs -> {path.name}"
            )

    def _handle_divergence(seed: int, config: GenConfig) -> None:
        program = generate_program(seed, config)
        report = evaluate_program(
            program, cache=cache, max_instructions=max_instructions
        )
        stats.divergences.append(report.summary())
        say(f"fuzz [{stats.iterations}] {report.summary()}")
        minimized = None
        if minimize and report.diverged:
            predicate = divergence_predicate(
                report, cache=cache, max_instructions=max_instructions
            )
            reduction = reduce_program(program, predicate)
            minimized = reduction.program.modules
            say(
                f"fuzz [{stats.iterations}] reduced: -{reduction.removed_lines} "
                f"lines, -{reduction.removed_modules} modules "
                f"({reduction.tests} tests)"
            )
        try:
            repro_trace = _provenance_trace(minimized or program.modules)
        except Exception:
            repro_trace = None
        path = corpus_store.save_entry(
            corpus_dir,
            program,
            kind="divergence",
            info={
                "divergences": [dataclasses.asdict(d) for d in report.divergences]
            },
            minimized=minimized,
            trace=repro_trace,
        )
        stats.corpus_paths.append(path)

    executor = None
    if jobs > 1:
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_fuzz_worker_init,
            initargs=(str(cache.root), cache.stamp),
        )
    try:
        while stats.iterations < iterations:
            elapsed = time.perf_counter() - started
            if time_budget is not None and stats.iterations and elapsed >= time_budget:
                say(f"fuzz: time budget ({time_budget:.0f}s) reached")
                break
            wave = [
                plan()
                for __ in range(min(max(1, jobs), iterations - stats.iterations))
            ]
            if executor is None:
                _WORKER_CACHE = cache
                results = [
                    _evaluate_task(seed, dataclasses.asdict(config), max_instructions)
                    for seed, config in wave
                ]
            else:
                futures = [
                    executor.submit(
                        _evaluate_task,
                        seed,
                        dataclasses.asdict(config),
                        max_instructions,
                    )
                    for seed, config in wave
                ]
                results = [future.result() for future in futures]
            for result in results:
                fold(result)
    finally:
        if executor is not None:
            executor.shutdown()
        if jobs <= 1:
            _WORKER_CACHE = None

    if stats.corpus_paths:
        entry = corpus_store.load_entry(sorted(stats.corpus_paths)[0])
        __, matches = corpus_store.replay_entry(entry)
        stats.replay_entry = entry.name
        stats.replay_ok = matches

    stats.wall = time.perf_counter() - started
    if cache:
        hits1, misses1 = cache.stats.snapshot()
        stats.cache_hits += hits1 - hits0
        stats.cache_misses += misses1 - misses0
    if trace is not None:
        trace.counter(
            "fuzz-coverage",
            cat="fuzz",
            pairs=len(stats.coverage.counts),
            programs=stats.coverage.programs,
        )
    return stats
