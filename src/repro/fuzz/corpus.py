"""The on-disk fuzz corpus: replayable, minimized, self-describing.

Each entry is a directory under the corpus root::

    corpus/
      divergence-seed00001234-9f2ab01c/
        meta.json        # kind, seed, GenConfig, divergence info
        m0.mc  m1.mc ... # the generating sources, verbatim
        minimized/       # ddmin output (divergence entries only)
          m0.mc ...
        trace.jsonl      # TraceLog of the OM link on the minimized repro

Entries are saved for two reasons: a program *diverged* (the bug
archive, kept minimized), or it lit up never-before-seen transform
coverage (the mutation pool).  The directory name embeds the seed and
a content digest, so an entry is replayable two ways: regenerate from
``(seed, config)`` — which must reproduce the sources byte-for-byte —
or rebuild directly from the stored ``.mc`` files.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.fuzz.generate import GenConfig, GeneratedProgram, generate_program

_META = "meta.json"
_TRACE = "trace.jsonl"
_MINDIR = "minimized"


def sources_digest(modules) -> str:
    """Stable content digest of a module list (order-sensitive)."""
    h = hashlib.sha256()
    for name, text in modules:
        h.update(name.encode())
        h.update(b"\0")
        h.update(text.encode())
        h.update(b"\0")
    return h.hexdigest()


def entry_id(program: GeneratedProgram, kind: str) -> str:
    return f"{kind}-seed{program.seed:08d}-{sources_digest(program.modules)[:8]}"


@dataclass
class CorpusEntry:
    """One loaded corpus directory."""

    path: Path
    kind: str
    seed: int
    config: GenConfig
    modules: tuple[tuple[str, str], ...]
    minimized: tuple[tuple[str, str], ...] | None = None
    info: dict | None = None

    @property
    def name(self) -> str:
        return self.path.name

    @property
    def program(self) -> GeneratedProgram:
        return GeneratedProgram(self.seed, self.config, self.modules)


def save_entry(
    corpus_dir: Path | str,
    program: GeneratedProgram,
    *,
    kind: str,
    info: dict | None = None,
    minimized=None,
    trace=None,
) -> Path:
    """Persist one entry; returns its directory (idempotent per content)."""
    root = Path(corpus_dir)
    path = root / entry_id(program, kind)
    path.mkdir(parents=True, exist_ok=True)
    meta = {
        "kind": kind,
        "seed": program.seed,
        "config": dataclasses.asdict(program.config),
        "modules": [name for name, __ in program.modules],
        "digest": sources_digest(program.modules),
        "info": info or {},
    }
    (path / _META).write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
    for name, text in program.modules:
        (path / name).write_text(text)
    if minimized is not None:
        mindir = path / _MINDIR
        mindir.mkdir(exist_ok=True)
        for name, text in minimized:
            (mindir / name).write_text(text)
    if trace is not None:
        (path / _TRACE).write_text(trace.to_jsonl())
    return path


def load_entry(path: Path | str) -> CorpusEntry:
    path = Path(path)
    meta = json.loads((path / _META).read_text())
    modules = tuple(
        (name, (path / name).read_text()) for name in meta["modules"]
    )
    minimized = None
    mindir = path / _MINDIR
    if mindir.is_dir():
        minimized = tuple(
            sorted(
                (entry.name, entry.read_text())
                for entry in mindir.iterdir()
                if entry.suffix == ".mc"
            )
        )
    return CorpusEntry(
        path=path,
        kind=meta["kind"],
        seed=meta["seed"],
        config=GenConfig(**meta["config"]),
        modules=modules,
        minimized=minimized,
        info=meta.get("info") or None,
    )


def list_entries(corpus_dir: Path | str) -> list[Path]:
    """Entry directories under a corpus root, sorted by name."""
    root = Path(corpus_dir)
    if not root.is_dir():
        return []
    return sorted(
        entry
        for entry in root.iterdir()
        if entry.is_dir() and (entry / _META).is_file()
    )


def replay_entry(entry: CorpusEntry) -> tuple[GeneratedProgram, bool]:
    """Regenerate from (seed, config); True iff byte-for-byte identical."""
    regenerated = generate_program(entry.seed, entry.config)
    return regenerated, regenerated.modules == entry.modules
