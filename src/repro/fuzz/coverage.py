"""Transform-kind coverage: the feedback signal of the fuzz loop.

Every OM decision recorded by :mod:`repro.obs.provenance` carries an
``action`` (convert / nullify / delete / move / retarget / gc-drop) and
the ``pass`` that made it.  The oracle harvests the ``(action, pass)``
pairs each link fired; this module accumulates them across a campaign,
scores programs by how *rare* their pairs are, and reports which
transform kinds have fired at all — the acceptance signal that the
generator actually exercises the whole optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.provenance import ACTIONS

#: A coverage point: (action, pass_name), e.g. ("convert", "address-loads").
CoveragePair = tuple[str, str]


@dataclass
class CoverageMap:
    """Counts of how many evaluated programs hit each (action, pass)."""

    counts: dict[CoveragePair, int] = field(default_factory=dict)
    programs: int = 0

    def add(self, pairs) -> set[CoveragePair]:
        """Record one program's pairs; returns the never-seen-before ones."""
        self.programs += 1
        fresh: set[CoveragePair] = set()
        for pair in set(map(tuple, pairs)):
            if pair not in self.counts:
                fresh.add(pair)
            self.counts[pair] = self.counts.get(pair, 0) + 1
        return fresh

    def rarity_score(self, pairs) -> float:
        """How unusual a program's coverage is (higher = rarer).

        Each pair contributes the inverse of how many programs have hit
        it; unseen pairs count as a full point.  Used to weight which
        corpus seeds get mutated.
        """
        return sum(1.0 / self.counts.get(tuple(pair), 1) for pair in set(map(tuple, pairs)))

    def actions_seen(self) -> set[str]:
        return {action for action, __ in self.counts}

    def missing_actions(self) -> tuple[str, ...]:
        """OM transform kinds that never fired (empty = full coverage)."""
        seen = self.actions_seen()
        return tuple(action for action in ACTIONS if action not in seen)

    def format(self) -> str:
        """The coverage table plus the per-action roll-up line."""
        lines = ["transform-kind coverage (programs hitting each pair):"]
        for (action, pass_name), count in sorted(
            self.counts.items(), key=lambda item: (-item[1], item[0])
        ):
            lines.append(f"  {action:9} x {pass_name:15} {count:5}")
        by_action: dict[str, int] = {}
        for (action, __), count in self.counts.items():
            by_action[action] = by_action.get(action, 0) + count
        summary = "  ".join(
            f"{action}={by_action.get(action, 0)}" for action in ACTIONS
        )
        lines.append(f"kinds: {summary}")
        missing = self.missing_actions()
        if missing:
            lines.append(f"MISSING transform kinds: {', '.join(missing)}")
        else:
            lines.append("all OM transform kinds fired at least once")
        return "\n".join(lines)
