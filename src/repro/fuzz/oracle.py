"""The differential oracle: one program, the whole build matrix.

A generated program is compiled in both of the paper's modes
(compile-each, compile-all) and linked with every link variant — the
standard linker, OM-simple, OM-full, OM-full+sched, OM-full+GC
(the dead-procedure extension, included so the ``gc-drop`` transform
kind is reachable), OM-full+layout (the closed PGO loop: the cell
itself links OM-full, profiles its run, and feeds the profile back
into a layout-enabled relink, reaching ``reorder``/``hot-place``/
``relax``), and OM-full-wpo (the partitioned whole-program optimizer,
pinned byte-identical to OM-full).  The oracle then asserts:

* **output equality** — all cells print identical simulator output;
* **termination** — every cell halts within the instruction budget;
* **monotone non-increasing executed instruction counts** within each
  mode: OM-simple never executes more than ld (nulled instructions are
  1-for-1), OM-full / OM-full+sched / OM-full+layout never more than
  OM-simple, and GC never more than OM-full;
* **GAT-load monotonicity** — the layout cell never executes more GAT
  address loads than its OM-full base;
* **executable byte-identity** — within each mode the OM-full-wpo
  image's sha256 equals OM-full's;
* **backend identity** — the ``jit`` column reruns the ld executable
  on the translating machine backend
  (:class:`~repro.machine.jit.JitMachine`) and must match the
  interpreter cell exactly, output and executed-instruction count.

Each OM link runs with a :class:`~repro.obs.trace.TraceLog` attached;
the provenance events it fires are distilled into ``(action, pass)``
coverage pairs — the campaign's guidance signal.

Cell results can round-trip through the content-addressed
:class:`~repro.cache.ArtifactCache`: keys cover the exact sources,
mode, variant, and toolchain stamp, so replaying a corpus entry on a
warm cache performs zero compiles, links, or simulations.
"""

from __future__ import annotations

import hashlib
import json
import traceback
from dataclasses import dataclass, field

from repro.fuzz.coverage import CoveragePair
from repro.fuzz.generate import GeneratedProgram
from repro.obs import provenance
from repro.obs.trace import TraceLog
from repro.om import OMLevel, OMOptions, om_link

#: Program versions, as in the paper's study.
MODES = ("each", "all")

#: The OM side of the matrix: variant -> (level, options).
_OM_SPECS: dict[str, tuple[OMLevel, OMOptions]] = {
    "om-simple": (OMLevel.SIMPLE, OMOptions()),
    "om-full": (OMLevel.FULL, OMOptions()),
    "om-full-sched": (OMLevel.FULL, OMOptions(schedule=True)),
    "om-full-gc": (OMLevel.FULL, OMOptions(remove_dead_procs=True)),
    "om-full-layout": (OMLevel.FULL, OMOptions(layout=True, relax=True)),
    "om-full-wpo": (OMLevel.FULL, OMOptions(partitions=2)),
}

#: Feedback variants link twice: a base link's profiled run feeds the
#: layout planner (the closed PGO loop, under fuzz).
_FEEDBACK = {"om-full-layout": "om-full"}

#: Variants whose cells run under the profiler so the oracle can also
#: compare executed GAT address loads.
_GAT_PROFILED = ("om-full", "om-full-layout")

#: Variants whose executable bytes are digested and pinned equal per
#: mode: the partitioned optimizer's whole contract is byte-identity
#: with the monolithic om-full link.
_EXE_PINNED = ("om-full", "om-full-wpo")

#: Link variants, in evaluation (and monotonicity) order.  The ``jit``
#: column is not a link variant at all: it reruns the ld executable on
#: the translating machine backend, so every wave also differentially
#: tests the JIT against the reference interpreter for free.
VARIANTS = ("ld", "jit") + tuple(_OM_SPECS)

#: (smaller-or-equal, reference) pairs the instruction check enforces.
_MONOTONE = (
    ("om-simple", "ld"),
    ("om-full", "om-simple"),
    ("om-full-sched", "om-simple"),
    ("om-full-gc", "om-full"),
    # Layout only moves procedures and promotes jsr->bsr; it must never
    # execute more than the structurally-safe om-simple bound.
    ("om-full-layout", "om-simple"),
)

#: Default per-cell simulator budget; generated programs are tiny.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000

# Per-process toolchain session (crt0 + stdlib build once per process).
_SESSION: tuple | None = None


def _toolchain():
    global _SESSION
    if _SESSION is None:
        from repro.benchsuite import build_stdlib
        from repro.linker import make_crt0

        _SESSION = (make_crt0(), build_stdlib())
    return _SESSION


@dataclass(frozen=True)
class CellResult:
    """One (mode, variant) cell: what it printed and what it cost."""

    output: str
    instructions: int
    halted: bool
    coverage: tuple[CoveragePair, ...] = ()
    #: Executed GAT address loads (profiled variants only).
    gat_loads: int | None = None
    #: sha256 of the executable image (byte-identity-pinned variants).
    exe_digest: str | None = None


@dataclass(frozen=True)
class Divergence:
    """One violated oracle invariant."""

    kind: str  # "output" | "instructions" | "gat-loads" | "exe-bytes" | "backend" | "runaway" | "build-error"
    detail: str
    cells: tuple[str, ...] = ()


@dataclass
class OracleReport:
    """Everything the matrix said about one program."""

    program: GeneratedProgram
    cells: dict[str, CellResult] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    coverage: set[CoveragePair] = field(default_factory=set)

    @property
    def diverged(self) -> bool:
        return bool(self.divergences)

    def summary(self) -> str:
        if not self.diverged:
            return f"seed {self.program.seed}: {len(self.cells)} cells agree"
        first = self.divergences[0]
        return (
            f"seed {self.program.seed}: {first.kind} divergence "
            f"[{', '.join(first.cells)}] {first.detail}"
        )


def _compile_objects(program: GeneratedProgram, mode: str):
    # Dispatch through the frontend protocol: module extensions pick
    # the language (.mc MiniC, .dcf Decaf), so cross-language programs
    # flow through every cell of the matrix unchanged.  Compile-all
    # groups per language — one unit each — merged at link time.
    from repro.frontend import compile_sources

    crt0, libmc = _toolchain()
    objects = [crt0] + compile_sources(
        [(name, text) for name, text in program.modules], mode
    )
    return objects, libmc


def _run_cell(
    program: GeneratedProgram, mode: str, variant: str, max_instructions: int
) -> CellResult:
    from repro.linker import link
    from repro.machine import run

    objects, libmc = _compile_objects(program, mode)
    if variant in ("ld", "jit"):
        executable = link(objects, [libmc])
        coverage: tuple[CoveragePair, ...] = ()
    else:
        level, options = _OM_SPECS[variant]
        profile_in = None
        if variant in _FEEDBACK:
            # Close the PGO loop inside the cell: base link, profiled
            # functional run, then the layout link fed by that profile.
            from repro.machine.profile import profile

            base_level, base_options = _OM_SPECS[_FEEDBACK[variant]]
            base_objects, base_libmc = _compile_objects(program, mode)
            base = om_link(
                base_objects, [base_libmc], level=base_level, options=base_options
            )
            profile_in = profile(
                base.executable, max_instructions=max_instructions, timed=False
            )
        trace = TraceLog()
        result = om_link(
            objects,
            [libmc],
            level=level,
            options=options,
            trace=trace,
            profile=profile_in,
        )
        executable = result.executable
        coverage = tuple(
            sorted(
                {
                    (args["action"], args["pass_name"])
                    for args in provenance.events(trace)
                }
            )
        )
    exe_digest = None
    if variant in _EXE_PINNED:
        from repro.linker.executable import dump_executable

        exe_digest = hashlib.sha256(dump_executable(executable)).hexdigest()
    gat_loads = None
    if variant in _GAT_PROFILED:
        from repro.machine.profile import profile

        profiled = profile(
            executable, max_instructions=max_instructions, timed=False
        )
        outcome = profiled.run
        gat_loads = profiled.overhead.gat_loads
    else:
        outcome = run(
            executable,
            timed=False,
            max_instructions=max_instructions,
            backend="jit" if variant == "jit" else "interp",
        )
    return CellResult(
        output=outcome.output,
        instructions=outcome.instructions,
        halted=outcome.halted,
        coverage=coverage,
        gat_loads=gat_loads,
        exe_digest=exe_digest,
    )


def _cell_payload(
    program: GeneratedProgram, mode: str, variant: str, max_instructions: int
) -> dict:
    return {
        "artifact": "fuzz-cell",
        "sources": [[name, text] for name, text in program.modules],
        "mode": mode,
        "variant": variant,
        "max_instructions": max_instructions,
    }


def _cached_cell(
    program: GeneratedProgram,
    mode: str,
    variant: str,
    max_instructions: int,
    cache,
) -> CellResult:
    if cache is None:
        return _run_cell(program, mode, variant, max_instructions)
    key = cache.key(_cell_payload(program, mode, variant, max_instructions))
    data = cache.get("fuzz", key)
    if data is not None:
        payload = json.loads(data)
        return CellResult(
            output=payload["output"],
            instructions=payload["instructions"],
            halted=payload["halted"],
            coverage=tuple((a, p) for a, p in payload["coverage"]),
            gat_loads=payload.get("gat_loads"),
            exe_digest=payload.get("exe_digest"),
        )
    cell = _run_cell(program, mode, variant, max_instructions)
    cache.put(
        "fuzz",
        key,
        json.dumps(
            {
                "output": cell.output,
                "instructions": cell.instructions,
                "halted": cell.halted,
                "coverage": [list(pair) for pair in cell.coverage],
                "gat_loads": cell.gat_loads,
                "exe_digest": cell.exe_digest,
            }
        ).encode(),
    )
    return cell


def evaluate_program(
    program: GeneratedProgram,
    *,
    cache=None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> OracleReport:
    """Run one program through the full matrix and check every invariant."""
    report = OracleReport(program)
    for mode in MODES:
        for variant in VARIANTS:
            label = f"{mode}/{variant}"
            try:
                cell = _cached_cell(program, mode, variant, max_instructions, cache)
            except Exception:
                report.divergences.append(
                    Divergence(
                        "build-error",
                        traceback.format_exc(limit=3).strip().splitlines()[-1],
                        (label,),
                    )
                )
                return report
            report.cells[label] = cell
            report.coverage.update(cell.coverage)
            if not cell.halted:
                report.divergences.append(
                    Divergence(
                        "runaway",
                        f"did not halt within {max_instructions} instructions",
                        (label,),
                    )
                )

    by_output: dict[str, list[str]] = {}
    for label, cell in report.cells.items():
        by_output.setdefault(cell.output, []).append(label)
    if len(by_output) > 1:
        groups = "; ".join(
            f"[{', '.join(labels)}] -> {output.split()}"
            for output, labels in by_output.items()
        )
        report.divergences.append(
            Divergence("output", groups, tuple(sorted(report.cells)))
        )

    for mode in MODES:
        # Backend pin: the JIT must reproduce the interpreter exactly
        # on the same (ld-linked) executable — output equality is
        # already covered globally, so this adds the executed-count
        # identity (the paper-style differential-oracle discipline).
        interp_cell = report.cells.get(f"{mode}/ld")
        jit_cell = report.cells.get(f"{mode}/jit")
        if (
            interp_cell is not None
            and jit_cell is not None
            and jit_cell.instructions != interp_cell.instructions
        ):
            report.divergences.append(
                Divergence(
                    "backend",
                    f"jit executed {jit_cell.instructions} != "
                    f"interp {interp_cell.instructions}",
                    (f"{mode}/jit", f"{mode}/ld"),
                )
            )
        # Byte-identity pin: the partitioned link must reproduce the
        # monolithic om-full image exactly, not merely equivalently.
        pinned = [
            (variant, report.cells[f"{mode}/{variant}"].exe_digest)
            for variant in _EXE_PINNED
            if f"{mode}/{variant}" in report.cells
            and report.cells[f"{mode}/{variant}"].exe_digest is not None
        ]
        if len({digest for _, digest in pinned}) > 1:
            report.divergences.append(
                Divergence(
                    "exe-bytes",
                    "; ".join(f"{v}={d[:16]}" for v, d in pinned),
                    tuple(f"{mode}/{v}" for v, _ in pinned),
                )
            )
        for smaller, reference in _MONOTONE:
            low = report.cells.get(f"{mode}/{smaller}")
            high = report.cells.get(f"{mode}/{reference}")
            if low is None or high is None:
                continue
            if low.instructions > high.instructions:
                report.divergences.append(
                    Divergence(
                        "instructions",
                        f"{smaller} executed {low.instructions} > "
                        f"{reference} {high.instructions}",
                        (f"{mode}/{smaller}", f"{mode}/{reference}"),
                    )
                )
        for variant, base in _FEEDBACK.items():
            low = report.cells.get(f"{mode}/{variant}")
            high = report.cells.get(f"{mode}/{base}")
            if low is None or high is None:
                continue
            if low.gat_loads is None or high.gat_loads is None:
                continue
            if low.gat_loads > high.gat_loads:
                report.divergences.append(
                    Divergence(
                        "gat-loads",
                        f"{variant} executed {low.gat_loads} GAT loads > "
                        f"{base} {high.gat_loads}",
                        (f"{mode}/{variant}", f"{mode}/{base}"),
                    )
                )
    return report


def divergence_predicate(
    reference: OracleReport, *, cache=None, max_instructions: int | None = None
):
    """An interestingness predicate for the reducer.

    A shrunken candidate stays interesting when it still produces a
    divergence of the same kind as the reference report (any
    compile-invalid candidate is simply uninteresting).
    """
    kind = reference.divergences[0].kind if reference.divergences else None
    budget = max_instructions or DEFAULT_MAX_INSTRUCTIONS

    def is_interesting(modules) -> bool:
        candidate = GeneratedProgram(
            reference.program.seed, reference.program.config, tuple(modules)
        )
        try:
            report = evaluate_program(
                candidate, cache=cache, max_instructions=budget
            )
        except Exception:
            return False
        if kind is None:
            return report.diverged
        return any(d.kind == kind for d in report.divergences)

    return is_interesting
