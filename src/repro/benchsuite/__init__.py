"""The benchmark-suite substrate.

Nineteen synthetic MiniC programs named after the SPEC92 suite the
paper measured (gcc excluded there too), plus the pre-compiled ``libmc``
standard library archive.  Each program is multi-module, generates its
workload deterministically, and prints checksums so that every build
variant can be verified for bit-identical behaviour.
"""

from repro.benchsuite.suite import (
    PROGRAMS,
    build_program,
    build_stdlib,
    program_sources,
    stdlib_sources,
)

__all__ = [
    "PROGRAMS",
    "build_program",
    "build_stdlib",
    "program_sources",
    "stdlib_sources",
]
