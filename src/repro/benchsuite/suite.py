"""Building the benchmark suite: sources, archives, object files.

``build_program(name, mode)`` produces the object modules of one
benchmark in either of the paper's two versions:

* ``mode="each"`` — compile-each: every source file compiled separately
  with intraprocedural optimization only;
* ``mode="all"`` — compile-all: all of the program's sources compiled as
  one unit with inlining and intra-unit call optimization.  As in the
  paper, the standard library is *not* part of the unit: "we have no
  sources for the library routines, so we could not have included them
  in any case.  This situation is typical of most users."

Workload sizes are controlled by a ``SCALE`` global in each program's
main module; ``scale`` overrides it textually, exactly like editing the
source (tests use small scales, benchmarks the default).
"""

from __future__ import annotations

import functools
import re
from pathlib import Path

from repro.frontend import compile_sources
from repro.minicc import Options, compile_module
from repro.objfile.archive import Archive
from repro.objfile.objfile import ObjectFile

_HERE = Path(__file__).parent
STDLIB_DIR = _HERE / "stdlib"
PROGRAMS_DIR = _HERE / "programs"

#: The 19 measured programs (SPEC92 minus gcc, as in the paper).
PROGRAMS = [
    "alvinn",
    "compress",
    "doduc",
    "ear",
    "eqntott",
    "espresso",
    "fpppp",
    "hydro2d",
    "li",
    "mdljdp2",
    "mdljsp2",
    "nasa7",
    "ora",
    "sc",
    "spice",
    "su2cor",
    "swm256",
    "tomcatv",
    "wave5",
]

#: The Decaf workloads (kept out of :data:`PROGRAMS`, whose membership
#: the paper-figure pipeline pins): a dispatch-heavy shape hierarchy, a
#: virtually-traversed linked structure, and a mixed-language program
#: whose Decaf main calls MiniC kernels.
DECAF_PROGRAMS = [
    "shapes",
    "dlist",
    "mixcall",
]

_SCALE_RE = re.compile(r"^int SCALE = \d+;", re.MULTILINE)


def stdlib_sources() -> list[tuple[str, str]]:
    """(filename, text) pairs for every standard-library module."""
    return [
        (path.name, path.read_text())
        for path in sorted(STDLIB_DIR.glob("*.mc"))
    ]


def program_sources(name: str) -> list[tuple[str, str]]:
    """(filename, text) pairs for one benchmark, main module first."""
    directory = PROGRAMS_DIR / name
    if not directory.is_dir():
        raise ValueError(f"unknown benchmark {name!r}")
    paths = sorted(directory.glob("*.mc")) + sorted(directory.glob("*.dcf"))
    paths.sort(key=lambda p: (p.stem != "main", p.name))
    return [(path.name, path.read_text()) for path in paths]


@functools.lru_cache(maxsize=4)
def build_stdlib(optimize: bool = True, schedule: bool = True) -> Archive:
    """Compile the standard library into the ``libmc`` archive.

    Library modules are always compiled separately (compile-each): they
    model code "compiled long before a particular application".
    """
    options = Options(optimize=optimize, schedule=schedule)
    members = [
        compile_module(text, name.replace(".mc", ".o"), options)
        for name, text in stdlib_sources()
    ]
    return Archive("libmc", members)


def apply_scale(text: str, scale: int | None) -> str:
    """Override the program's SCALE constant, if requested.

    An explicit ``scale`` with no ``int SCALE = <n>;`` line to rewrite
    is an error: silently returning the original text would run the
    default workload while claiming the requested one.
    """
    if scale is None:
        return text
    replaced, count = _SCALE_RE.subn(f"int SCALE = {scale};", text)
    if not count:
        raise ValueError(
            f"scale={scale} requested but no 'int SCALE = <n>;' line found"
        )
    return replaced


def scaled_sources(name: str, scale: int | None) -> list[tuple[str, str]]:
    """One benchmark's sources with ``scale`` applied to the main module.

    The SCALE constant lives in the main module (always first in
    :func:`program_sources` order); the other modules are untouched.
    """
    sources = program_sources(name)
    if scale is None:
        return sources
    (main_name, main_text), rest = sources[0], sources[1:]
    return [(main_name, apply_scale(main_text, scale))] + rest


def build_program(
    name: str,
    mode: str = "each",
    *,
    scale: int | None = None,
    options: Options | None = None,
) -> list[ObjectFile]:
    """Compile one benchmark into its object modules.

    Dispatches through the frontend protocol: ``.mc`` modules compile
    with MiniC, ``.dcf`` with Decaf.  A mixed-language program in
    compile-all mode yields one unit per language (merged at link
    time, as always).
    """
    options = options or Options()
    if mode not in ("each", "all"):
        raise ValueError(f"unknown mode {mode!r}")
    sources = scaled_sources(name, scale)
    objects = compile_sources(
        [(f"{name}/{fname}", text) for fname, text in sources], mode, options
    )
    if mode == "all":
        for obj in objects:
            obj.name = obj.name.replace("all", f"{name}_all", 1)
    return objects
