"""The command-line toolchain: ``python -m repro.toolchain <tool> ...``.

Mirrors the workflow of the paper's environment:

* ``cc``   — compile MiniC sources to object files (``-all`` for the
  compile-all interprocedural mode, ``-O0`` to disable optimization,
  ``-no-sched`` to disable pipeline scheduling);
* ``ar``   — build a static archive from object files;
* ``ld``   — standard link (objects + ``-l`` archives) to an executable;
* ``om``   — optimizing link (``-simple``/``-full``/``-sched``/``-gc``;
  ``-verify`` prints the structural verifier's counters, ``--trace``
  saves the link's span/provenance log as Chrome-trace JSON;
  ``-layout`` turns on profile-guided layout + jsr->bsr relaxation,
  fed by ``--profile-in profile.json``; ``--partitions N`` runs the
  transform rounds partitioned (byte-identical output), with
  ``--wpo-jobs`` for parallel shards and ``--cache-dir`` for
  incremental relinks);
* ``run``  — execute an executable on the simulated AXP
  (``--profile-out profile.json`` writes the per-procedure profile
  that closes the PGO loop);
* ``dis``  — disassemble an object file or executable;
* ``serve`` — run the toolchain as a long-lived daemon
  (:mod:`repro.serve`): compile/link/run/explain requests over a
  length-prefixed JSON TCP protocol, coalesced and content-cached,
  with bounded admission and graceful drain on SIGTERM.

Executables are serialized with pickle (they are an internal format);
objects and archives use the repository's binary format.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
from pathlib import Path

from repro.isa.disasm import disassemble
from repro.linker import link, make_crt0
from repro.machine import BACKENDS, run as machine_run
from repro.frontend import (
    LANGUAGES,
    compile_sources,
    frontend_for,
    language_for,
)
from repro.minicc import Options
from repro.objfile.archive import Archive
from repro.objfile.fileio import (
    load_archive_file,
    load_object_file,
    save_archive,
    save_object,
)
from repro.objfile.sections import SectionKind
from repro.om import OMLevel, OMOptions, om_link


def _cc(args) -> int:
    options = Options(optimize=not args.O0, schedule=not args.no_sched)
    if args.all:
        sources = [(Path(p).name, Path(p).read_text()) for p in args.sources]
        objects = compile_sources(sources, "all", options, language=args.lang)
        if len(objects) > 1:
            # A mixed-language compile-all yields one unit per
            # language; -o names a single object, so require per-file
            # invocations (each) and a plain link instead.
            raise SystemExit(
                "cc -all with mixed languages produces one unit per "
                "language; compile each language separately"
            )
        out = args.output or "all.o"
        objects[0].name = Path(out).name
        save_object(objects[0], out)
        print(out)
        return 0
    if args.output and len(args.sources) > 1:
        raise SystemExit("-o with multiple sources requires -all")
    for source in args.sources:
        path = Path(source)
        out = args.output or str(path.with_suffix(".o"))
        frontend = frontend_for(args.lang or language_for(path.name))
        obj = frontend.compile_module(
            path.read_text(), path.with_suffix(".o").name, options
        )
        save_object(obj, out)
        print(out)
    return 0


def _ar(args) -> int:
    archive = Archive(Path(args.output).stem)
    for member in args.objects:
        archive.add(load_object_file(member))
    save_archive(archive, args.output)
    print(f"{args.output}: {len(archive)} members")
    return 0


def _load_inputs(args):
    objects = [load_object_file(p) for p in args.objects]
    if not args.no_crt0:
        objects.insert(0, make_crt0())
    libraries = [load_archive_file(p) for p in args.libs or []]
    return objects, libraries


def _ld(args) -> int:
    objects, libraries = _load_inputs(args)
    executable = link(objects, libraries)
    Path(args.output).write_bytes(pickle.dumps(executable))
    print(f"{args.output}: {executable.text_size} text bytes, "
          f"GAT {executable.gat_size} bytes")
    return 0


def _om(args) -> int:
    objects, libraries = _load_inputs(args)
    level = OMLevel.SIMPLE if args.simple else OMLevel.FULL
    options = OMOptions(
        schedule=args.sched,
        remove_dead_procs=args.gc,
        convert_escaped=args.convert_escaped,
        verify=args.verify,
        layout=args.layout,
        relax=args.layout,
        partitions=args.partitions,
        wpo_jobs=args.wpo_jobs,
    )
    cache = None
    if args.cache_dir and args.partitions > 1:
        from repro.cache import ArtifactCache

        cache = ArtifactCache(args.cache_dir)
    profile_in = None
    if args.profile_in:
        from repro.machine.profile import ProfileResult

        profile_in = ProfileResult.from_json(Path(args.profile_in).read_bytes())
    trace = None
    if args.trace:
        from repro.obs.trace import TraceLog

        trace = TraceLog()
    result = om_link(
        objects,
        libraries,
        level=level,
        options=options,
        trace=trace,
        profile=profile_in,
        cache=cache,
    )
    Path(args.output).write_bytes(pickle.dumps(result.executable))
    stats = result.stats
    print(
        f"{args.output}: OM-{stats.level}; address loads "
        f"{stats.before.addr_loads} -> {stats.after.addr_loads}; "
        f"GAT {stats.gat_bytes_before} -> {stats.gat_bytes_after} bytes; "
        f"text {stats.text_bytes_before} -> {stats.text_bytes_after} bytes"
    )
    if result.wpo is not None:
        wpo = result.wpo
        print(
            f"wpo: shards={wpo.shards} rounds={wpo.rounds} "
            f"hits={wpo.hits} misses={wpo.misses} "
            f"missed_shards={wpo.missed_shards}"
        )
    if args.layout:
        print(
            f"layout: procs_moved={stats.procs_moved} "
            f"relax_iterations={stats.relax_iterations} "
            f"relax_demoted={stats.relax_demoted} "
            f"jsr->bsr={result.counters.jsr_to_bsr} "
            f"({'profiled' if profile_in is not None else 'static'})"
        )
    if result.verify is not None:
        report = result.verify
        print(
            f"verify: {report.instructions} instructions, "
            f"{report.branches} branches, {report.calls} calls, "
            f"{report.gat_entries} GAT entries, "
            f"{len(report.problems)} problems"
        )
        for problem in report.problems:
            print(f"  problem: {problem}", file=sys.stderr)
    if trace is not None:
        trace.save_chrome_trace(args.trace)
        print(f"trace: {args.trace}")
    return 1 if (result.verify is not None and result.verify.problems) else 0


def _run(args) -> int:
    executable = pickle.loads(Path(args.executable).read_bytes())
    if args.profile_out:
        from repro.machine.profile import profile

        profiled = profile(
            executable, timed=not args.fast, backend=args.backend
        )
        result = profiled.run
        Path(args.profile_out).write_bytes(profiled.to_json())
    else:
        result = machine_run(
            executable, timed=not args.fast, backend=args.backend
        )
    sys.stdout.write(result.output)
    if args.profile_out:
        print(f"profile: {args.profile_out}", file=sys.stderr)
    if args.stats:
        print(
            f"[{result.instructions} instructions, {result.cycles} cycles, "
            f"cpi {result.cpi:.2f}, i$ {result.icache_misses}, "
            f"d$ {result.dcache_misses}]",
            file=sys.stderr,
        )
    return 0


def _serve(args) -> int:
    import asyncio

    if args.fleet:
        from repro.serve.fleet import FleetConfig, fleet_main, parse_policy
        from repro.serve.router import RouterConfig

        quotas = dict(parse_policy(spec) for spec in args.quota or [])
        fleet_config = FleetConfig(
            size=args.fleet,
            workers=args.workers,
            queue_limit=args.queue_limit,
            retry_after=args.retry_after,
            run_budget=args.run_budget,
            cache_dir=None if args.no_cache else args.cache_dir,
            trace_dir=args.trace_dir,
            quotas=quotas,
        )
        router_config = RouterConfig(
            host=args.host, port=args.port, retry_after=args.retry_after
        )
        return asyncio.run(fleet_main(fleet_config, router_config))

    from repro.cache import ArtifactCache, compute_toolchain_stamp
    from repro.obs.trace import TraceLog
    from repro.serve.server import ServeConfig, serve_main

    # A daemon outlives toolchain upgrades on disk: compute the stamp
    # fresh at startup instead of trusting the memoized module-level
    # value, so artifacts are keyed under the code actually loaded now.
    cache = (
        None
        if args.no_cache
        else ArtifactCache(args.cache_dir, stamp=compute_toolchain_stamp())
    )
    trace = TraceLog(sink=args.trace) if args.trace else None
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        retry_after=args.retry_after,
        run_budget=args.run_budget,
        trace_dir=args.trace_dir,
    )
    return asyncio.run(serve_main(config, cache, trace))


def _metrics(args) -> int:
    """Scrape a running daemon's metrics in either exposition format."""
    from repro.serve.client import ServeClient

    host, _, port = args.address.rpartition(":")
    with ServeClient((host or "127.0.0.1", int(port)),
                     timeout=args.timeout) as client:
        payload = client.metrics()
    if args.format == "json":
        print(json.dumps(payload["json"], indent=2))
    else:
        sys.stdout.write(payload["text"])
    return 0


def _merge_trace(args) -> int:
    from repro.obs.merge import merge_main

    argv = list(args.sinks) + ["-o", args.output]
    if args.report:
        argv.append("--report")
    return merge_main(argv)


def _dis(args) -> int:
    path = Path(args.input)
    data = path.read_bytes()
    if data[:4] == b"ROBJ":
        obj = load_object_file(path)
        text = bytes(obj.section(SectionKind.TEXT).data)
        base = 0
    else:
        executable = pickle.loads(data)
        text = executable.text_bytes()
        base = executable.segments[0].vaddr
    for line in disassemble(text, base):
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.toolchain")
    sub = parser.add_subparsers(dest="tool", required=True)

    cc = sub.add_parser(
        "cc", help="compile MiniC (.mc) or Decaf (.dcf) sources"
    )
    cc.add_argument("sources", nargs="+")
    cc.add_argument("-o", dest="output")
    cc.add_argument("-all", action="store_true", help="compile-all mode")
    cc.add_argument("-O0", action="store_true", help="disable optimization")
    cc.add_argument("-no-sched", action="store_true", help="disable scheduling")
    cc.add_argument(
        "--lang",
        choices=LANGUAGES,
        default=None,
        help="force a frontend (default: dispatch by source extension)",
    )
    cc.set_defaults(func=_cc)

    ar = sub.add_parser("ar", help="build a static archive")
    ar.add_argument("output")
    ar.add_argument("objects", nargs="+")
    ar.set_defaults(func=_ar)

    for name, func in (("ld", _ld), ("om", _om)):
        tool = sub.add_parser(name, help=f"{name} link")
        tool.add_argument("objects", nargs="+")
        tool.add_argument("-o", dest="output", required=True)
        tool.add_argument("-l", dest="libs", action="append")
        tool.add_argument("--no-crt0", action="store_true")
        if name == "om":
            tool.add_argument("-simple", action="store_true")
            tool.add_argument("-sched", action="store_true")
            tool.add_argument("-gc", action="store_true")
            tool.add_argument("--convert-escaped", action="store_true")
            tool.add_argument(
                "-verify", action="store_true",
                help="run the structural verifier and print its counters",
            )
            tool.add_argument(
                "--trace", dest="trace", default=None,
                help="write the link's span/provenance trace (Chrome JSON)",
            )
            tool.add_argument(
                "-layout", action="store_true",
                help="profile-guided layout + jsr->bsr relaxation",
            )
            tool.add_argument(
                "--profile-in", dest="profile_in", default=None,
                help="profile JSON (from `run --profile-out`) feeding -layout",
            )
            tool.add_argument(
                "--partitions", type=int, default=0,
                help="shard the transform rounds across N partitions "
                     "(byte-identical to the monolithic link)",
            )
            tool.add_argument(
                "--wpo-jobs", dest="wpo_jobs", type=int, default=0,
                help="worker processes for partitioned rounds (0 = inline)",
            )
            tool.add_argument(
                "--cache-dir", dest="cache_dir", default=None,
                help="shard-artifact cache for incremental relinks "
                     "(used with --partitions)",
            )
        tool.set_defaults(func=func)

    runner = sub.add_parser("run", help="execute on the simulated AXP")
    runner.add_argument("executable")
    runner.add_argument("--fast", action="store_true", help="skip timing model")
    runner.add_argument("--stats", action="store_true")
    runner.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="execution engine (default: $REPRO_MACHINE_BACKEND or interp)",
    )
    runner.add_argument(
        "--profile-out", dest="profile_out", default=None,
        help="write a per-procedure profile (JSON) for `om -layout`",
    )
    runner.set_defaults(func=_run)

    dis = sub.add_parser("dis", help="disassemble an object or executable")
    dis.add_argument("input")
    dis.set_defaults(func=_dis)

    serve = sub.add_parser("serve", help="run the toolchain daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral; the bound port is "
                            "announced as 'serving on host:port')")
    serve.add_argument("--workers", type=int, default=2,
                       help="process-pool size for compile/link/run jobs")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="admitted-job bound before retry-after replies")
    serve.add_argument("--retry-after", type=float, default=0.05,
                       help="backpressure hint sent when the queue is full")
    serve.add_argument("--run-budget", type=int, default=200_000_000,
                       help="ceiling on per-request simulator budgets")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="content-addressed artifact cache directory")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without the disk cache (still coalesces)")
    serve.add_argument("--trace", default=None,
                       help="JSONL trace sink, flushed on drain")
    serve.add_argument("--trace-dir", default=None,
                       help="directory for per-pid worker trace sinks "
                            "(worker-<pid>.jsonl), mergeable with "
                            "merge-trace")
    serve.add_argument("--fleet", type=int, default=0, metavar="N",
                       help="run N daemons behind a consistent-hash "
                            "router sharing one cache root (0 = single "
                            "daemon, the default)")
    serve.add_argument("--quota", action="append", default=None,
                       metavar="TENANT:KEY=VALUE,...",
                       help="per-tenant quota for fleet mode, e.g. "
                            "'t2:rate=2,burst=4,weight=0.5' (repeatable; "
                            "keys: rate, burst, weight, inflight)")
    serve.set_defaults(func=_serve)

    metrics = sub.add_parser(
        "metrics", help="scrape a running daemon's metrics"
    )
    metrics.add_argument("address", metavar="HOST:PORT")
    metrics.add_argument("--format", choices=("prometheus", "json"),
                         default="prometheus")
    metrics.add_argument("--timeout", type=float, default=30.0)
    metrics.set_defaults(func=_metrics)

    merge = sub.add_parser(
        "merge-trace",
        help="merge JSONL trace sinks into one Chrome trace",
    )
    merge.add_argument("sinks", nargs="+",
                       help="JSONL sink files or directories of them")
    merge.add_argument("-o", dest="output", required=True,
                       help="merged Chrome-trace JSON output path")
    merge.add_argument("--report", action="store_true",
                       help="print the request-correlation report")
    merge.set_defaults(func=_merge_trace)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
