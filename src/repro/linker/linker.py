"""The standard linker entry point."""

from __future__ import annotations

from repro.linker.executable import Executable
from repro.linker.layout import LayoutOptions, compute_layout
from repro.linker.relocate import build_executable
from repro.linker.resolve import resolve_inputs
from repro.objfile.archive import Archive
from repro.objfile.objfile import ObjectFile


def link(
    objects: list[ObjectFile],
    libraries: list[Archive] = (),
    *,
    entry: str = "__start",
    options: LayoutOptions | None = None,
) -> Executable:
    """Standard (non-optimizing) link of objects and archives.

    This is the paper's baseline: every address load, PV-load, and
    GP-reset the compiler emitted survives into the executable.
    """
    inputs = resolve_inputs(objects, list(libraries))
    layout = compute_layout(inputs, options)
    return build_executable(inputs, layout, entry=entry)
