"""Memory layout: sections, GAT groups, GP values, symbol addresses.

Layout order:

* text segment at ``TEXT_BASE``: modules in link order, 16-aligned;
* data segment at ``DATA_BASE``: the merged GAT group(s) first, then
  (optionally) size-sorted COMMON symbols — the paper's "sort the common
  symbols by size and place them with the small data sections near the
  GAT" — then ``.sdata``, ``.data``, then zero-filled ``.bss``/``.sbss``
  and any remaining COMMONs.

GAT merging: each module's distinct literals are resolved to a
*literal key* (global name, or module-scoped name for statics, plus
addend) and deduplicated.  Keys are packed into groups of at most
``gat_capacity`` slots; each group gets its own GP value (the paper's
"merging into one large GAT will not always be possible").  Every
module is assigned to one group, and all its procedures use that
group's GP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.linker.executable import DATA_BASE, TEXT_BASE
from repro.linker.resolve import LinkError, ResolvedInputs
from repro.objfile.relocations import RelocType
from repro.objfile.sections import SectionKind
from repro.objfile.symbols import Binding

#: Maximum GAT slots addressable from one GP with a 16-bit displacement.
DEFAULT_GAT_CAPACITY = 8190

#: Conventional GP bias: GP sits 32752 bytes past the group start so the
#: 16-bit displacement covers the group and data just beyond it.
GP_BIAS = 32752

LiteralKey = tuple  # ("g", name, addend) | ("l", module_index, name, addend)


@dataclass
class LayoutOptions:
    gat_capacity: int = DEFAULT_GAT_CAPACITY
    sort_commons: bool = False  # OM's small-data sorting
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    #: Escaped-literal heat per symbol (from a profiled run).  When set,
    #: COMMON placement compares the paper's size sort against a
    #: weight-density sort under an explicit out-of-window cost model
    #: and keeps the cheaper order.
    symbol_weights: dict[str, float] | None = None


@dataclass
class GatGroup:
    start: int = 0
    gp: int = 0
    slots: dict[LiteralKey, int] = field(default_factory=dict)  # key -> slot addr

    @property
    def size(self) -> int:
        return 8 * len(self.slots)


@dataclass
class Layout:
    options: LayoutOptions
    inputs: ResolvedInputs
    module_base: dict[tuple[int, SectionKind], int] = field(default_factory=dict)
    common_addr: dict[str, int] = field(default_factory=dict)
    groups: list[GatGroup] = field(default_factory=list)
    module_group: list[int] = field(default_factory=list)
    text_end: int = 0
    data_end: int = 0
    bss_end: int = 0
    sorted_commons_end: int = 0
    #: True when the weight-density COMMON order beat the size sort.
    hot_commons: bool = False
    _defs_cache: dict[int, dict[str, object]] = field(default_factory=dict, repr=False)

    # -- address queries ------------------------------------------------------

    def section_base(self, module_index: int, kind: SectionKind) -> int:
        return self.module_base[(module_index, kind)]

    def symbol_addr(self, module_index: int, name: str) -> int:
        """Resolve ``name`` as seen from ``module_index`` to an address."""
        local = self._definitions(module_index).get(name)
        if local is not None:
            return self.section_base(module_index, local.section) + local.offset
        entry = self.inputs.globals.get(name)
        if entry is not None:
            def_index, sym = entry
            return self.section_base(def_index, sym.section) + sym.offset
        if name in self.common_addr:
            return self.common_addr[name]
        raise LinkError(f"no address for symbol {name!r} (module {module.name})")

    def _definitions(self, module_index: int):
        cached = self._defs_cache.get(module_index)
        if cached is None:
            module = self.inputs.modules[module_index]
            cached = {sym.name: sym for sym in module.symbols if sym.is_defined}
            self._defs_cache[module_index] = cached
        return cached

    def literal_key(self, module_index: int, name: str, addend: int) -> LiteralKey:
        local = self._definitions(module_index).get(name)
        if local is not None and local.binding is Binding.LOCAL:
            return ("l", module_index, name, addend)
        return ("g", name, addend)

    def gat_slot_addr(self, module_index: int, name: str, addend: int) -> int:
        key = self.literal_key(module_index, name, addend)
        group = self.groups[self.module_group[module_index]]
        return group.slots[key]

    def gp_for_module(self, module_index: int) -> int:
        return self.groups[self.module_group[module_index]].gp

    def global_symbols(self) -> dict[str, int]:
        """Every global symbol's final address (for the executable)."""
        out: dict[str, int] = {}
        for name, (index, sym) in self.inputs.globals.items():
            out[name] = self.section_base(index, sym.section) + sym.offset
        out.update(self.common_addr)
        return out


def compute_layout(
    inputs: ResolvedInputs, options: LayoutOptions | None = None
) -> Layout:
    """Lay out all modules, the merged GAT, and COMMON symbols."""
    options = options or LayoutOptions()
    layout = Layout(options, inputs)
    modules = inputs.modules

    # Text segment.
    cursor = options.text_base
    for index, module in enumerate(modules):
        cursor = _align(cursor, 16)
        layout.module_base[(index, SectionKind.TEXT)] = cursor
        text = module.sections.get(SectionKind.TEXT)
        cursor += text.size if text else 0
    layout.text_end = cursor

    # GAT groups: walk modules, deduplicating literal keys, splitting
    # when a group would exceed capacity.
    group_keys: list[list[LiteralKey]] = [[]]
    group_seen: set[LiteralKey] = set()
    layout.module_group = []
    for index, module in enumerate(modules):
        keys = [
            layout.literal_key(index, reloc.symbol, reloc.addend)
            for reloc in module.relocations
            if reloc.type is RelocType.LITERAL
        ]
        fresh = [k for k in dict.fromkeys(keys) if k not in group_seen]
        if len(group_keys[-1]) + len(fresh) > options.gat_capacity and group_keys[-1]:
            group_keys.append([])
            group_seen = set()
            fresh = list(dict.fromkeys(keys))
        layout.module_group.append(len(group_keys) - 1)
        group_keys[-1].extend(fresh)
        group_seen.update(fresh)
        if len(group_keys[-1]) > options.gat_capacity:
            raise LinkError(
                f"module {module.name} alone exceeds GAT capacity "
                f"({len(group_keys[-1])} literals)"
            )

    cursor = options.data_base
    for keys in group_keys:
        group = GatGroup(start=cursor, gp=cursor + GP_BIAS)
        for key in keys:
            group.slots[key] = cursor
            cursor += 8
        layout.groups.append(group)

    # Optionally place size-sorted COMMONs right after the GAT (OM's
    # small-data optimization).  They are zero-initialized but must live
    # inside the initialized data image so GP-relative stores hit RAM we
    # emit; relocate.py zero-fills them.
    sorted_commons_end = cursor
    if options.sort_commons:
        # Deterministic size sort: ties broken by alignment then name,
        # so equal-size symbols never depend on dict insertion order.
        size_order = sorted(
            inputs.commons.items(),
            key=lambda item: (item[1][0], item[1][1], item[0]),
        )
        order = size_order
        if options.symbol_weights:
            dense_order = _density_order(inputs.commons, options.symbol_weights)
            gp = layout.groups[-1].gp
            weights = options.symbol_weights
            if _window_cost(dense_order, cursor, gp, weights) < _window_cost(
                size_order, cursor, gp, weights
            ):
                order = dense_order
                layout.hot_commons = True
        for name, (size, align) in order:
            cursor = _align(cursor, align)
            layout.common_addr[name] = cursor
            cursor += size
        sorted_commons_end = cursor

    # .sdata then .data for each module.
    for kind in (SectionKind.SDATA, SectionKind.DATA):
        for index, module in enumerate(modules):
            section = module.sections.get(kind)
            if section is None:
                continue
            cursor = _align(cursor, section.alignment)
            layout.module_base[(index, kind)] = cursor
            cursor += section.size
    layout.data_end = cursor
    layout.sorted_commons_end = sorted_commons_end

    # Zero-filled: .sbss, .bss, then any COMMONs not already placed.
    cursor = _align(cursor, 16)
    for kind in (SectionKind.SBSS, SectionKind.BSS):
        for index, module in enumerate(modules):
            section = module.sections.get(kind)
            if section is None:
                continue
            cursor = _align(cursor, section.alignment)
            layout.module_base[(index, kind)] = cursor
            cursor += section.size
    if not options.sort_commons:
        for name, (size, align) in inputs.commons.items():
            cursor = _align(cursor, align)
            layout.common_addr[name] = cursor
            cursor += size
    layout.bss_end = cursor
    return layout


def _align(value: int, alignment: int) -> int:
    return -(-value // alignment) * alignment


def _density_order(
    commons: dict[str, tuple[int, int]], weights: dict[str, float]
) -> list[tuple[str, tuple[int, int]]]:
    """Hottest-per-byte first; cold symbols fall back to the size sort."""
    return sorted(
        commons.items(),
        key=lambda item: (
            -(weights.get(item[0], 0.0) / max(item[1][0], 1)),
            item[1][0],
            item[1][1],
            item[0],
        ),
    )


def _window_cost(
    order: list[tuple[str, tuple[int, int]]],
    start: int,
    gp: int,
    weights: dict[str, float],
) -> float:
    """Escaped heat landing outside the direct 16-bit GP window.

    Simulates the placement loop and charges each symbol its weight
    when its base address cannot be materialized with a single
    GP-relative ``lda`` (the window of ``gprel_direct_in_range``).
    """
    cursor = start
    cost = 0.0
    for name, (size, align) in order:
        cursor = _align(cursor, align)
        d = cursor - gp
        if not -32752 <= d <= 32767:
            cost += weights.get(name, 0.0)
        cursor += size
    return cost
