"""Standard linker substrate (the paper's ``ld`` baseline).

Performs conventional linking of object modules and static archives:
demand-driven archive member pull-in, merging of module GATs into one
GAT section with duplicate removal (splitting into multiple GAT groups
when the 16-bit GP displacement cannot cover one), segment layout,
COMMON allocation, and relocation.  No optimization is performed — the
output preserves every address load and every piece of calling-convention
bookkeeping the compiler emitted, which is exactly the baseline all of
the paper's measurements compare against.
"""

from repro.linker.executable import Executable, Segment
from repro.linker.resolve import LinkError, resolve_inputs
from repro.linker.layout import Layout, LayoutOptions, compute_layout
from repro.linker.linker import link
from repro.linker.crt0 import make_crt0

__all__ = [
    "Executable",
    "Segment",
    "LinkError",
    "resolve_inputs",
    "Layout",
    "LayoutOptions",
    "compute_layout",
    "link",
    "make_crt0",
]
