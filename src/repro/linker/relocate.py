"""Relocation: turn laid-out modules into a final executable image."""

from __future__ import annotations

from repro.linker.executable import Executable, ProcEntry, Segment
from repro.linker.layout import Layout
from repro.linker.resolve import LinkError, ResolvedInputs
from repro.objfile.relocations import RelocType
from repro.objfile.sections import SectionKind


def build_executable(
    inputs: ResolvedInputs, layout: Layout, entry: str = "__start"
) -> Executable:
    """Copy sections into place, fill the GAT, and apply relocations."""
    text_base = layout.options.text_base
    data_base = layout.options.data_base
    text = bytearray(layout.text_end - text_base)
    data = bytearray(layout.data_end - data_base)

    for index, module in enumerate(inputs.modules):
        for kind in (SectionKind.TEXT, SectionKind.SDATA, SectionKind.DATA):
            section = module.sections.get(kind)
            if section is None or not section.size:
                continue
            base = layout.section_base(index, kind)
            image, image_base = (text, text_base) if kind is SectionKind.TEXT else (data, data_base)
            start = base - image_base
            image[start : start + section.size] = section.data

    _fill_gat(inputs, layout, data, data_base)

    for index, module in enumerate(inputs.modules):
        _apply_module_relocs(inputs, layout, index, text, data)

    zero_start = layout.data_end
    zeroed = []
    if layout.bss_end > zero_start:
        zeroed.append((zero_start, layout.bss_end - zero_start))

    symbols = layout.global_symbols()
    if entry not in symbols:
        raise LinkError(f"entry symbol {entry!r} not defined")

    procs = []
    for index, module in enumerate(inputs.modules):
        base = layout.section_base(index, SectionKind.TEXT)
        for sym in module.procedures():
            procs.append(
                ProcEntry(
                    sym.name,
                    base + sym.offset,
                    sym.size,
                    gp_group=layout.module_group[index],
                    uses_gp=sym.proc.uses_gp if sym.proc else True,
                )
            )
    procs.sort(key=lambda p: p.addr)

    gat_size = sum(group.size for group in layout.groups)
    return Executable(
        entry=symbols[entry],
        gp_values=[group.gp for group in layout.groups],
        segments=[Segment(text_base, bytes(text)), Segment(data_base, bytes(data))],
        zeroed=zeroed,
        symbols=symbols,
        procs=procs,
        gat_base=data_base,
        gat_size=gat_size,
        text_size=len(text),
    )


def _literal_value(layout: Layout, key: tuple) -> int:
    if key[0] == "g":
        __, name, addend = key
        entry = layout.inputs.globals.get(name)
        if entry is not None:
            index, sym = entry
            return layout.section_base(index, sym.section) + sym.offset + addend
        if name in layout.common_addr:
            return layout.common_addr[name] + addend
        raise LinkError(f"literal references undefined symbol {name!r}")
    __, module_index, name, addend = key
    return layout.symbol_addr(module_index, name) + addend


def _fill_gat(
    inputs: ResolvedInputs, layout: Layout, data: bytearray, data_base: int
) -> None:
    for group in layout.groups:
        for key, slot_addr in group.slots.items():
            value = _literal_value(layout, key)
            offset = slot_addr - data_base
            data[offset : offset + 8] = (value % (1 << 64)).to_bytes(8, "little")


def _read_word(image: bytearray, offset: int) -> int:
    return int.from_bytes(image[offset : offset + 4], "little")


def _write_word(image: bytearray, offset: int, word: int) -> None:
    image[offset : offset + 4] = (word & 0xFFFFFFFF).to_bytes(4, "little")


def _patch_disp16(image: bytearray, offset: int, disp: int, what: str) -> None:
    if not -32768 <= disp <= 32767:
        raise LinkError(f"{what}: displacement {disp} exceeds 16 bits")
    word = _read_word(image, offset)
    _write_word(image, offset, (word & ~0xFFFF) | (disp & 0xFFFF))


def _split_hi_lo(value: int) -> tuple[int, int]:
    lo = ((value & 0xFFFF) ^ 0x8000) - 0x8000
    hi = (value - lo) >> 16
    return hi, lo


def pick_gprel_high(disps: list[int]) -> int:
    """The shared ``ldah`` constant for one GAT-split gprel group.

    Picks the smallest ``hi`` whose signed 16-bit low window
    ``[hi<<16 - 32768, hi<<16 + 32767]`` covers the largest
    displacement, then requires the smallest displacement to fit the
    same window.  Raises ValueError when no single ``hi`` covers the
    group — note this can happen even for tiny spans that straddle a
    window boundary.
    """
    hi = (max(disps) - 32767 + 65535) >> 16
    if min(disps) - (hi << 16) < -32768:
        raise ValueError("gprel group spans more than one ldah window")
    return hi


def _apply_module_relocs(
    inputs: ResolvedInputs,
    layout: Layout,
    index: int,
    text: bytearray,
    data: bytearray,
) -> None:
    module = inputs.modules[index]
    text_base = layout.options.text_base
    data_base = layout.options.data_base
    module_text = layout.section_base(index, SectionKind.TEXT)
    gp = layout.gp_for_module(index)

    # OM-produced split GP-relative references: per group, pick one
    # ``hi`` covering every low displacement, then patch highs and lows.
    gprel_groups: dict[int, list] = {}
    for reloc in module.relocations:
        if reloc.type in (RelocType.GPRELHIGH, RelocType.GPRELLOW):
            gprel_groups.setdefault(reloc.extra, []).append(reloc)
    for group_id, relocs in gprel_groups.items():
        lows = [r for r in relocs if r.type is RelocType.GPRELLOW]
        highs = [r for r in relocs if r.type is RelocType.GPRELHIGH]
        if not highs:
            raise LinkError(f"{module.name}: gprel group {group_id} has no high part")
        disps = [
            layout.symbol_addr(index, r.symbol) + r.addend - gp for r in lows
        ]
        if not disps:
            disps = [layout.symbol_addr(index, highs[0].symbol) + highs[0].addend - gp]
        try:
            hi = pick_gprel_high(disps)
        except ValueError:
            raise LinkError(
                f"{module.name}: gprel group {group_id} spans more than 64KB"
            ) from None
        for reloc in highs:
            _patch_disp16(text, module_text - text_base + reloc.offset, hi,
                          f"{module.name} gprelhigh")
        for reloc, disp in zip(lows, disps):
            _patch_disp16(text, module_text - text_base + reloc.offset,
                          disp - (hi << 16), f"{module.name} gprellow")

    for reloc in module.relocations:
        if reloc.type in (
            RelocType.LITUSE,
            RelocType.JMPTAB,
            RelocType.GPRELHIGH,
            RelocType.GPRELLOW,
        ):
            continue  # hints, or already handled above
        if reloc.type is RelocType.REFQUAD:
            value = layout.symbol_addr(index, reloc.symbol) + reloc.addend
            base = layout.section_base(index, reloc.section)
            offset = base - data_base + reloc.offset
            data[offset : offset + 8] = (value % (1 << 64)).to_bytes(8, "little")
            continue

        # The rest are text relocations.
        offset = module_text - text_base + reloc.offset
        vaddr = module_text + reloc.offset
        if reloc.type is RelocType.LITERAL:
            slot = layout.gat_slot_addr(index, reloc.symbol, reloc.addend)
            _patch_disp16(image=text, offset=offset, disp=slot - gp,
                          what=f"{module.name} literal {reloc.symbol}")
        elif reloc.type is RelocType.GPREL16:
            target = layout.symbol_addr(index, reloc.symbol) + reloc.addend
            _patch_disp16(text, offset, target - gp,
                          what=f"{module.name} gprel16 {reloc.symbol}")
        elif reloc.type is RelocType.GPDISP:
            base_vaddr = module_text + reloc.extra
            hi, lo = _split_hi_lo(gp - base_vaddr)
            if not -32768 <= hi <= 32767:
                raise LinkError(f"{module.name}: GP displacement out of range")
            _patch_disp16(text, offset, hi, f"{module.name} gpdisp hi")
            _patch_disp16(text, offset + reloc.addend, lo, f"{module.name} gpdisp lo")
        elif reloc.type is RelocType.BRADDR:
            target = layout.symbol_addr(index, reloc.symbol) + reloc.addend
            disp = (target - (vaddr + 4)) >> 2
            if not -(1 << 20) <= disp < (1 << 20):
                raise LinkError(
                    f"{module.name}: branch to {reloc.symbol} out of range"
                )
            word = _read_word(text, offset)
            _write_word(text, offset, (word & ~0x1FFFFF) | (disp & 0x1FFFFF))
        elif reloc.type is RelocType.HINT:
            target = layout.symbol_addr(index, reloc.symbol)
            word = _read_word(text, offset)
            hint = (target >> 2) & 0x3FFF
            _write_word(text, offset, (word & ~0x3FFF) | hint)
        else:  # pragma: no cover
            raise LinkError(f"unknown relocation type {reloc.type}")


def symbol_or_common_addr(layout: Layout, name: str) -> int:
    """Address of a global or COMMON symbol (helper for tools)."""
    symbols = layout.global_symbols()
    if name not in symbols:
        raise LinkError(f"unknown symbol {name!r}")
    return symbols[name]
