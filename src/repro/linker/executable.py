"""The executable image format.

An executable is fully relocated: segments of bytes at virtual
addresses, zero-filled regions, an entry point, and the per-GAT-group GP
values.  Symbol and procedure tables are retained for the simulator,
tests, and measurement tooling (the real Alpha/OSF loader format keeps
them too — the paper relies on that).
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field

#: Canonical memory map (Alpha/OSF flavoured).
TEXT_BASE = 0x1_2000_0000
DATA_BASE = 0x1_4000_0000
STACK_TOP = 0x1_6000_0000
STACK_BYTES = 1 << 20


@dataclass
class Segment:
    vaddr: int
    data: bytes

    @property
    def end(self) -> int:
        return self.vaddr + len(self.data)


@dataclass
class ProcEntry:
    """Procedure descriptor in the executable: the paper's requirement
    that the loader format identify procedure boundaries and each
    procedure's GP."""

    name: str
    addr: int
    size: int
    gp_group: int = 0
    uses_gp: bool = True


@dataclass
class Executable:
    entry: int
    gp_values: list[int]
    segments: list[Segment] = field(default_factory=list)
    zeroed: list[tuple[int, int]] = field(default_factory=list)  # (vaddr, size)
    symbols: dict[str, int] = field(default_factory=dict)
    procs: list[ProcEntry] = field(default_factory=list)
    gat_base: int = 0
    gat_size: int = 0
    text_size: int = 0

    @property
    def gp(self) -> int:
        """The primary GP value (group 0)."""
        return self.gp_values[0]

    def symbol(self, name: str) -> int:
        return self.symbols[name]

    def proc_named(self, name: str) -> ProcEntry:
        for proc in self.procs:
            if proc.name == name:
                return proc
        raise KeyError(name)

    def text_bytes(self) -> bytes:
        """The text segment contents (segments[0] by construction)."""
        return self.segments[0].data


# -- serialization -------------------------------------------------------------
#
# A compact little-endian image format in the style of
# ``repro.objfile.serialize``: magic, version byte, then the fields in
# declaration order.  ``load_executable(dump_executable(exe))``
# round-trips exactly, which is what lets the artifact cache hand back
# bit-identical images.

EXECUTABLE_MAGIC = b"REXE"
EXECUTABLE_VERSION = 1


class ExecutableFormatError(Exception):
    """Damaged or unsupported serialized executable."""


def _write_str(out: io.BytesIO, text: str) -> None:
    data = text.encode("utf-8")
    out.write(struct.pack("<H", len(data)))
    out.write(data)


def _read_str(inp: io.BytesIO) -> str:
    (length,) = struct.unpack("<H", inp.read(2))
    return inp.read(length).decode("utf-8")


def dump_executable(exe: Executable) -> bytes:
    """Serialize an executable image to bytes."""
    out = io.BytesIO()
    out.write(EXECUTABLE_MAGIC)
    out.write(bytes([EXECUTABLE_VERSION]))
    out.write(
        struct.pack(
            "<QQQQ", exe.entry, exe.gat_base, exe.gat_size, exe.text_size
        )
    )
    out.write(struct.pack("<H", len(exe.gp_values)))
    for gp in exe.gp_values:
        out.write(struct.pack("<Q", gp % (1 << 64)))
    out.write(struct.pack("<H", len(exe.segments)))
    for segment in exe.segments:
        out.write(struct.pack("<QQ", segment.vaddr, len(segment.data)))
        out.write(segment.data)
    out.write(struct.pack("<H", len(exe.zeroed)))
    for vaddr, size in exe.zeroed:
        out.write(struct.pack("<QQ", vaddr, size))
    out.write(struct.pack("<I", len(exe.symbols)))
    for name, addr in exe.symbols.items():
        _write_str(out, name)
        out.write(struct.pack("<Q", addr % (1 << 64)))
    out.write(struct.pack("<I", len(exe.procs)))
    for proc in exe.procs:
        _write_str(out, proc.name)
        out.write(
            struct.pack(
                "<QQHB", proc.addr, proc.size, proc.gp_group, int(proc.uses_gp)
            )
        )
    return out.getvalue()


def load_executable(data: bytes) -> Executable:
    """Deserialize an executable; raises ExecutableFormatError on damage."""
    inp = io.BytesIO(data)
    if inp.read(4) != EXECUTABLE_MAGIC:
        raise ExecutableFormatError("bad executable magic")
    version = inp.read(1)[0]
    if version != EXECUTABLE_VERSION:
        raise ExecutableFormatError(f"unsupported executable version {version}")
    entry, gat_base, gat_size, text_size = struct.unpack("<QQQQ", inp.read(32))
    (ngp,) = struct.unpack("<H", inp.read(2))
    gp_values = [struct.unpack("<Q", inp.read(8))[0] for _ in range(ngp)]
    (nsegments,) = struct.unpack("<H", inp.read(2))
    segments = []
    for _ in range(nsegments):
        vaddr, size = struct.unpack("<QQ", inp.read(16))
        segments.append(Segment(vaddr, inp.read(size)))
    (nzeroed,) = struct.unpack("<H", inp.read(2))
    zeroed = [struct.unpack("<QQ", inp.read(16)) for _ in range(nzeroed)]
    (nsymbols,) = struct.unpack("<I", inp.read(4))
    symbols = {}
    for _ in range(nsymbols):
        name = _read_str(inp)
        (addr,) = struct.unpack("<Q", inp.read(8))
        symbols[name] = addr
    (nprocs,) = struct.unpack("<I", inp.read(4))
    procs = []
    for _ in range(nprocs):
        name = _read_str(inp)
        addr, size, gp_group, uses_gp = struct.unpack("<QQHB", inp.read(19))
        procs.append(ProcEntry(name, addr, size, gp_group, bool(uses_gp)))
    return Executable(
        entry=entry,
        gp_values=gp_values,
        segments=segments,
        zeroed=[tuple(z) for z in zeroed],
        symbols=symbols,
        procs=procs,
        gat_base=gat_base,
        gat_size=gat_size,
        text_size=text_size,
    )
