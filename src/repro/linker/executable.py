"""The executable image format.

An executable is fully relocated: segments of bytes at virtual
addresses, zero-filled regions, an entry point, and the per-GAT-group GP
values.  Symbol and procedure tables are retained for the simulator,
tests, and measurement tooling (the real Alpha/OSF loader format keeps
them too — the paper relies on that).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical memory map (Alpha/OSF flavoured).
TEXT_BASE = 0x1_2000_0000
DATA_BASE = 0x1_4000_0000
STACK_TOP = 0x1_6000_0000
STACK_BYTES = 1 << 20


@dataclass
class Segment:
    vaddr: int
    data: bytes

    @property
    def end(self) -> int:
        return self.vaddr + len(self.data)


@dataclass
class ProcEntry:
    """Procedure descriptor in the executable: the paper's requirement
    that the loader format identify procedure boundaries and each
    procedure's GP."""

    name: str
    addr: int
    size: int
    gp_group: int = 0
    uses_gp: bool = True


@dataclass
class Executable:
    entry: int
    gp_values: list[int]
    segments: list[Segment] = field(default_factory=list)
    zeroed: list[tuple[int, int]] = field(default_factory=list)  # (vaddr, size)
    symbols: dict[str, int] = field(default_factory=dict)
    procs: list[ProcEntry] = field(default_factory=list)
    gat_base: int = 0
    gat_size: int = 0
    text_size: int = 0

    @property
    def gp(self) -> int:
        """The primary GP value (group 0)."""
        return self.gp_values[0]

    def symbol(self, name: str) -> int:
        return self.symbols[name]

    def proc_named(self, name: str) -> ProcEntry:
        for proc in self.procs:
            if proc.name == name:
                return proc
        raise KeyError(name)

    def text_bytes(self) -> bytes:
        """The text segment contents (segments[0] by construction)."""
        return self.segments[0].data
