"""Symbol resolution and archive member selection.

Implements the conventional model: explicitly named objects are always
linked; archive members are pulled in only when they define a symbol
some already-linked module needs.  This demand-driven behaviour is what
makes pre-compiled library code opaque to compile-time interprocedural
optimization while remaining fully visible at link time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.objfile.archive import Archive
from repro.objfile.objfile import ObjectFile
from repro.objfile.symbols import Symbol, SymbolKind


class LinkError(Exception):
    """Unresolved or multiply-defined symbols, layout overflow, etc."""


@dataclass
class ResolvedInputs:
    """The closed world the linker (or OM) will operate on."""

    modules: list[ObjectFile] = field(default_factory=list)
    #: global name -> (module index, Symbol) for every defined global
    globals: dict[str, tuple[int, Symbol]] = field(default_factory=dict)
    #: COMMON allocations: name -> (size, alignment)
    commons: dict[str, tuple[int, int]] = field(default_factory=dict)


def resolve_inputs(
    objects: list[ObjectFile], libraries: list[Archive] = ()
) -> ResolvedInputs:
    """Select the modules to link and build the global symbol map."""
    modules: list[ObjectFile] = list(objects)
    resolved = ResolvedInputs()

    defined: dict[str, tuple[int, Symbol]] = {}
    commons: dict[str, tuple[int, int]] = {}
    undefined: set[str] = set()

    def absorb(index: int, module: ObjectFile) -> None:
        for sym in module.symbols:
            if sym.kind is SymbolKind.UNDEF:
                if sym.name not in defined and sym.name not in commons:
                    undefined.add(sym.name)
            elif sym.kind is SymbolKind.COMMON:
                size, align = commons.get(sym.name, (0, 8))
                commons[sym.name] = (max(size, sym.size), max(align, sym.alignment))
                undefined.discard(sym.name)
            elif sym.binding.value == "global":
                if sym.name in defined:
                    raise LinkError(
                        f"symbol {sym.name!r} multiply defined "
                        f"(in {modules[defined[sym.name][0]].name} and {module.name})"
                    )
                defined[sym.name] = (index, sym)
                undefined.discard(sym.name)

    for index, module in enumerate(modules):
        absorb(index, module)

    # Demand-driven archive pull-in, iterated until a fixed point: a
    # pulled member may itself need further members (library-to-library
    # calls, which the paper observes are common).
    progress = True
    while progress and undefined:
        progress = False
        for library in libraries:
            for name in sorted(undefined):
                member = library.member_defining(name)
                if member is None or member in modules:
                    continue
                index = len(modules)
                modules.append(member)
                absorb(index, member)
                progress = True
                if not undefined:
                    break

    # A COMMON definition satisfies references; a real definition
    # overrides a COMMON of the same name.
    for name in list(commons):
        if name in defined:
            del commons[name]

    still_missing = sorted(
        name for name in undefined if name not in defined and name not in commons
    )
    if still_missing:
        raise LinkError(f"unresolved symbols: {', '.join(still_missing)}")

    resolved.modules = modules
    resolved.globals = defined
    resolved.commons = commons
    return resolved
