"""The C runtime startup module.

``__start`` establishes GP, calls ``main`` through the standard
conservative convention (PV-load from the GAT + ``jsr`` + GP reset), and
halts.  Built programmatically with the assembler so every toolchain
consumer shares one definition.
"""

from __future__ import annotations

from repro.isa.asm import Assembler
from repro.isa.instruction import Instruction
from repro.isa.opcodes import PalFunc
from repro.isa.registers import Reg
from repro.objfile.objfile import ObjectFile
from repro.objfile.relocations import LituseKind


def make_crt0() -> ObjectFile:
    """Build the startup object module."""
    asm = Assembler("crt0.o")
    asm.begin_proc("__start", exported=True, uses_gp=True, frame_size=0)
    ldah = asm.emit(
        Instruction.mem("ldah", Reg.GP, Reg.PV, 0), gpdisp_base="__start"
    )
    asm.emit(Instruction.mem("lda", Reg.GP, Reg.GP, 0), gpdisp_pair=ldah)
    load = asm.emit(Instruction.mem("ldq", Reg.PV, Reg.GP, 0), literal=("main", 0))
    asm.emit(
        Instruction.jump("jsr", Reg.RA, Reg.PV),
        lituse=(load, LituseKind.JSR),
        hint="main",
    )
    asm.label("$start_ret")
    ldah = asm.emit(
        Instruction.mem("ldah", Reg.GP, Reg.RA, 0), gpdisp_base="$start_ret"
    )
    asm.emit(Instruction.mem("lda", Reg.GP, Reg.GP, 0), gpdisp_pair=ldah)
    asm.emit(Instruction.pal(int(PalFunc.HALT)))
    asm.end_proc()
    return asm.finish()
