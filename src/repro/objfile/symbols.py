"""Symbol table entries, including procedure descriptors.

The paper notes that "the loader format identifies procedure boundaries
and specifies the correct value of GP for each procedure"; our
:class:`ProcInfo` plays the role of the ECOFF procedure descriptor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.objfile.sections import SectionKind


class Binding(enum.Enum):
    """Linkage visibility of a symbol."""

    LOCAL = "local"  # file-scope (MiniC ``static``)
    GLOBAL = "global"  # exported, participates in cross-module resolution


class SymbolKind(enum.Enum):
    """What a symbol names."""

    PROC = "proc"
    OBJECT = "object"  # defined data
    COMMON = "common"  # uninitialized global; linker allocates
    UNDEF = "undef"  # reference satisfied by another module


@dataclass
class ProcInfo:
    """Procedure descriptor.

    ``uses_gp`` records whether the procedure establishes and uses a GP
    (leaf procedures touching no globals may not).  ``frame_size`` is the
    stack frame in bytes.  ``gat_group`` is filled in at link time: the
    index of the GAT this procedure addresses through its GP.
    """

    uses_gp: bool = True
    frame_size: int = 0
    gat_group: int = 0


@dataclass
class Symbol:
    """One symbol-table entry.

    ``section``/``offset`` locate the definition (``None`` section for
    COMMON and UNDEF).  ``size`` is the object or procedure size in bytes
    (for COMMON, the size to allocate).  ``alignment`` applies to COMMON
    allocation.
    """

    name: str
    kind: SymbolKind
    binding: Binding = Binding.GLOBAL
    section: SectionKind | None = None
    offset: int = 0
    size: int = 0
    alignment: int = 8
    proc: ProcInfo | None = None

    @property
    def is_defined(self) -> bool:
        return self.kind not in (SymbolKind.UNDEF, SymbolKind.COMMON)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.section.value if self.section else "-"
        return (
            f"Symbol({self.name!r}, {self.kind.value}, {self.binding.value}, "
            f"{where}+{self.offset:#x}, size={self.size})"
        )
