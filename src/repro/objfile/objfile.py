"""The relocatable object module container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.objfile.relocations import Relocation, RelocType
from repro.objfile.sections import Section, SectionKind
from repro.objfile.symbols import Binding, Symbol, SymbolKind


class ObjectFormatError(ValueError):
    """Raised for malformed or inconsistent object modules."""


@dataclass
class ObjectFile:
    """One compiled module: sections, symbols, and relocations."""

    name: str
    sections: dict[SectionKind, Section] = field(default_factory=dict)
    symbols: list[Symbol] = field(default_factory=list)
    relocations: list[Relocation] = field(default_factory=list)

    def section(self, kind: SectionKind) -> Section:
        """Get (creating if needed) the section of the given kind."""
        sec = self.sections.get(kind)
        if sec is None:
            sec = Section(kind)
            self.sections[kind] = sec
        return sec

    # -- symbol access ----------------------------------------------------

    def add_symbol(self, symbol: Symbol) -> Symbol:
        self.symbols.append(symbol)
        return symbol

    def find_symbol(self, name: str) -> Symbol | None:
        """Find a symbol by name (definitions preferred over references)."""
        best = None
        for sym in self.symbols:
            if sym.name == name:
                if sym.is_defined:
                    return sym
                best = best or sym
        return best

    def defined_globals(self) -> list[Symbol]:
        """Symbols this module offers to other modules (incl. COMMON)."""
        return [
            s
            for s in self.symbols
            if s.binding is Binding.GLOBAL and s.kind is not SymbolKind.UNDEF
        ]

    def undefined(self) -> list[Symbol]:
        """Symbols this module needs from other modules."""
        return [s for s in self.symbols if s.kind is SymbolKind.UNDEF]

    def procedures(self) -> list[Symbol]:
        """Procedure symbols in text-offset order."""
        procs = [s for s in self.symbols if s.kind is SymbolKind.PROC]
        procs.sort(key=lambda s: s.offset)
        return procs

    # -- relocation access --------------------------------------------------

    def relocs_for(self, kind: SectionKind) -> list[Relocation]:
        """Relocations applying to the given section, in offset order."""
        relocs = [r for r in self.relocations if r.section is kind]
        relocs.sort(key=lambda r: r.offset)
        return relocs

    def literal_pool(self) -> list[tuple[str, int]]:
        """The module's distinct GAT entries: (symbol, addend) pairs.

        This is the module's ``.lita`` contribution — what the paper
        calls the module's GAT, before the linker merges and dedups the
        pools of all modules.
        """
        seen: dict[tuple[str, int], None] = {}
        for reloc in self.relocations:
            if reloc.type is RelocType.LITERAL:
                seen.setdefault((reloc.symbol, reloc.addend), None)
        return list(seen)

    @property
    def lita_size(self) -> int:
        """Bytes of GAT this module requires (8 per distinct literal)."""
        return 8 * len(self.literal_pool())

    def validate(self) -> None:
        """Sanity-check internal consistency; raises ObjectFormatError."""
        defined: set[str] = set()
        for sym in self.symbols:
            if sym.is_defined:
                if sym.name in defined:
                    raise ObjectFormatError(
                        f"{self.name}: duplicate definition of {sym.name!r}"
                    )
                defined.add(sym.name)
                if sym.section is None:
                    raise ObjectFormatError(
                        f"{self.name}: defined symbol {sym.name!r} has no section"
                    )
                sec = self.sections.get(sym.section)
                if sec is None or sym.offset > sec.size:
                    raise ObjectFormatError(
                        f"{self.name}: symbol {sym.name!r} outside its section"
                    )
        known = {s.name for s in self.symbols}
        for reloc in self.relocations:
            if reloc.section not in self.sections:
                raise ObjectFormatError(
                    f"{self.name}: relocation against missing section {reloc}"
                )
            if reloc.symbol is not None and reloc.symbol not in known:
                raise ObjectFormatError(
                    f"{self.name}: relocation names unknown symbol {reloc.symbol!r}"
                )
