"""Static libraries: archives of pre-compiled object modules.

Archives model the paper's "statically-linked pre-compiled library
code": modules compiled long before the application, pulled in by the
linker only when they satisfy an undefined symbol.  This demand-driven
member selection is what makes library code invisible to compile-time
interprocedural optimization but fully visible to OM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.objfile.objfile import ObjectFile
from repro.objfile.serialize import dump_archive, load_archive


@dataclass
class Archive:
    """An ordered collection of object modules with a symbol index."""

    name: str
    members: list[ObjectFile] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index: dict[str, ObjectFile] = {}
        for member in self.members:
            self._index_member(member)

    def _index_member(self, member: ObjectFile) -> None:
        for sym in member.defined_globals():
            # First definition wins, like ranlib's index.
            self._index.setdefault(sym.name, member)

    def add(self, member: ObjectFile) -> None:
        """Append a member and index its definitions."""
        self.members.append(member)
        self._index_member(member)

    def member_defining(self, symbol: str) -> ObjectFile | None:
        """The member that defines ``symbol``, if any."""
        return self._index.get(symbol)

    def to_bytes(self) -> bytes:
        """Serialize the archive."""
        return dump_archive(self.members)

    @classmethod
    def from_bytes(cls, name: str, data: bytes) -> Archive:
        """Deserialize an archive."""
        return cls(name, load_archive(data))

    def __len__(self) -> int:
        return len(self.members)
