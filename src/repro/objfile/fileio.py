"""File-level object and archive I/O.

Thin wrappers over the binary serializers so the toolchain CLI (and
users) can keep ``.o``/``.a`` artifacts on disk like a real toolchain.
"""

from __future__ import annotations

from pathlib import Path

from repro.objfile.archive import Archive
from repro.objfile.objfile import ObjectFile
from repro.objfile.serialize import dump_object, load_object


def save_object(obj: ObjectFile, path: str | Path) -> Path:
    path = Path(path)
    path.write_bytes(dump_object(obj))
    return path


def load_object_file(path: str | Path) -> ObjectFile:
    return load_object(Path(path).read_bytes())


def save_archive(archive: Archive, path: str | Path) -> Path:
    path = Path(path)
    path.write_bytes(archive.to_bytes())
    return path


def load_archive_file(path: str | Path) -> Archive:
    path = Path(path)
    return Archive.from_bytes(path.stem, path.read_bytes())
