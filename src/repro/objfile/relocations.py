"""Relocation records.

These model the Alpha ECOFF relocation vocabulary the paper's analysis
leans on.  Field use per type:

``REFQUAD``
    64-bit absolute address at ``section[offset]``; value is
    ``symbol + addend``.  When ``symbol`` names a procedure and ``addend``
    is nonzero, the target is a code label inside that procedure (jump
    tables); OM must retarget these when it moves code.
``GPDISP``
    Marks a GP-establishing ``ldah``/``lda`` pair.  ``offset`` is the
    ``ldah``; ``addend`` is the byte distance from the ``ldah`` to the
    paired ``lda``; ``extra`` is the section offset of the *base point* —
    the address held in the pair's base register at run time (procedure
    entry for a PV-based pair, the return point for an RA-based pair).
    The scheduler may move either instruction away from the base point;
    the record keeps the pair identifiable and patchable regardless.
``LITERAL``
    Marks an address load ``ldq rX, slot(gp)``.  ``symbol + addend`` is
    the address that must be found in the GAT slot; the linker allocates
    (or dedups) the slot and patches the 16-bit displacement.
``LITUSE``
    Marks an instruction that uses the register produced by an address
    load.  ``addend`` is the text-section offset of the corresponding
    ``LITERAL`` instruction; ``extra`` is a :class:`LituseKind`.
``BRADDR``
    21-bit branch displacement to ``symbol + addend``.
``HINT``
    14-bit jump hint on a ``jsr``/``jmp``; ``symbol`` is the predicted
    target (advisory).
``JMPTAB``
    Marks a ``jmp`` that dispatches through a jump table.  ``symbol`` is
    the table's data symbol; ``addend`` is the number of 8-byte entries.
    This is the "hint" that lets OM recover case-statement control flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.objfile.sections import SectionKind


class RelocType(enum.Enum):
    REFQUAD = "refquad"
    GPDISP = "gpdisp"
    LITERAL = "literal"
    LITUSE = "lituse"
    BRADDR = "braddr"
    HINT = "hint"
    JMPTAB = "jmptab"
    # Produced by OM's transformations (not by the compiler): direct
    # GP-relative references that the final link resolves against the
    # final data layout, keeping OM's decisions valid across GAT-
    # reduction rounds.
    GPREL16 = "gprel16"  # disp := symbol + addend - GP
    GPRELHIGH = "gprelhigh"  # ldah half of a split GP-relative reference
    GPRELLOW = "gprellow"  # low half; ``extra`` groups it with its HIGH


class LituseKind(enum.IntEnum):
    """How a LITUSE instruction consumes the loaded address."""

    BASE = 1  # base register of a load/store
    JSR = 2  # target of a jsr/jmp


@dataclass
class Relocation:
    """One relocation record (see module docstring for field use)."""

    type: RelocType
    section: SectionKind
    offset: int
    symbol: str | None = None
    addend: int = 0
    extra: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sym = f" {self.symbol}+{self.addend:#x}" if self.symbol else f" +{self.addend:#x}"
        return (
            f"Reloc({self.type.value} @ {self.section.value}+{self.offset:#x}"
            f"{sym} extra={self.extra})"
        )
