"""Sections of an object module.

The section kinds follow Alpha/OSF conventions: ``.text`` holds code,
``.data`` initialized data, ``.sdata`` small initialized data placed near
the GAT, ``.bss``/``.sbss`` zero-initialized data (size only, no bytes),
and ``.lita`` is the module's literal-address pool — the GAT fragment the
linker merges and the paper's optimizations shrink.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SectionKind(enum.Enum):
    """Section classes with distinct layout/relocation behaviour."""

    TEXT = "text"
    DATA = "data"
    SDATA = "sdata"
    BSS = "bss"
    SBSS = "sbss"
    LITA = "lita"

    @property
    def has_bytes(self) -> bool:
        """Whether the section carries image bytes (BSS kinds do not)."""
        return self not in (SectionKind.BSS, SectionKind.SBSS)


#: Canonical section names by kind.
SECTION_NAMES = {
    SectionKind.TEXT: ".text",
    SectionKind.DATA: ".data",
    SectionKind.SDATA: ".sdata",
    SectionKind.BSS: ".bss",
    SectionKind.SBSS: ".sbss",
    SectionKind.LITA: ".lita",
}


@dataclass
class Section:
    """One section: a byte container (or a bare size for BSS kinds)."""

    kind: SectionKind
    data: bytearray = field(default_factory=bytearray)
    bss_size: int = 0
    alignment: int = 8

    @property
    def name(self) -> str:
        return SECTION_NAMES[self.kind]

    @property
    def size(self) -> int:
        return self.bss_size if not self.kind.has_bytes else len(self.data)

    def append(self, data: bytes) -> int:
        """Append bytes, returning the offset they were placed at."""
        if not self.kind.has_bytes:
            raise ValueError(f"cannot append bytes to {self.name}")
        offset = len(self.data)
        self.data += data
        return offset

    def reserve(self, size: int, alignment: int = 8) -> int:
        """Reserve zero space (BSS kinds), returning the aligned offset."""
        if self.kind.has_bytes:
            self.align_to(alignment)
            return self.append(bytes(size))
        offset = -(-self.bss_size // alignment) * alignment
        self.bss_size = offset + size
        return offset

    def align_to(self, alignment: int) -> None:
        """Pad with zeros to the given alignment."""
        if not self.kind.has_bytes:
            self.bss_size = -(-self.bss_size // alignment) * alignment
            return
        while len(self.data) % alignment:
            self.data.append(0)

    def read_quad(self, offset: int) -> int:
        """Read a little-endian unsigned 64-bit value."""
        return int.from_bytes(self.data[offset : offset + 8], "little")

    def write_quad(self, offset: int, value: int) -> None:
        """Write a little-endian 64-bit value (value taken mod 2**64)."""
        self.data[offset : offset + 8] = (value % (1 << 64)).to_bytes(8, "little")

    def read_word(self, offset: int) -> int:
        """Read a little-endian unsigned 32-bit value."""
        return int.from_bytes(self.data[offset : offset + 4], "little")

    def write_word(self, offset: int, value: int) -> None:
        """Write a little-endian 32-bit value (value taken mod 2**32)."""
        self.data[offset : offset + 4] = (value % (1 << 32)).to_bytes(4, "little")
