"""Binary serialization of object modules and archives.

A compact little-endian format with explicit magic numbers and a version
byte.  ``load_object(dump_object(obj))`` round-trips exactly (property
tested).  Strings are UTF-8 with a 2-byte length prefix.
"""

from __future__ import annotations

import io
import struct

from repro.objfile.objfile import ObjectFile, ObjectFormatError
from repro.objfile.relocations import Relocation, RelocType
from repro.objfile.sections import Section, SectionKind
from repro.objfile.symbols import Binding, ProcInfo, Symbol, SymbolKind

OBJECT_MAGIC = b"ROBJ"
ARCHIVE_MAGIC = b"RARX"
FORMAT_VERSION = 1

_SECTION_CODES = {kind: i for i, kind in enumerate(SectionKind)}
_SECTION_KINDS = {i: kind for kind, i in _SECTION_CODES.items()}
_RELOC_CODES = {t: i for i, t in enumerate(RelocType)}
_RELOC_TYPES = {i: t for t, i in _RELOC_CODES.items()}
_SYMKIND_CODES = {k: i for i, k in enumerate(SymbolKind)}
_SYMKIND_KINDS = {i: k for k, i in _SYMKIND_CODES.items()}


def _write_str(out: io.BytesIO, text: str) -> None:
    data = text.encode("utf-8")
    out.write(struct.pack("<H", len(data)))
    out.write(data)


def _read_str(inp: io.BytesIO) -> str:
    (length,) = struct.unpack("<H", inp.read(2))
    return inp.read(length).decode("utf-8")


def dump_object(obj: ObjectFile) -> bytes:
    """Serialize an object module to bytes."""
    out = io.BytesIO()
    out.write(OBJECT_MAGIC)
    out.write(bytes([FORMAT_VERSION]))
    _write_str(out, obj.name)

    out.write(struct.pack("<H", len(obj.sections)))
    for kind, sec in obj.sections.items():
        out.write(struct.pack("<BH", _SECTION_CODES[kind], sec.alignment))
        if kind.has_bytes:
            out.write(struct.pack("<Q", len(sec.data)))
            out.write(sec.data)
        else:
            out.write(struct.pack("<Q", sec.bss_size))

    out.write(struct.pack("<I", len(obj.symbols)))
    for sym in obj.symbols:
        _write_str(out, sym.name)
        flags = _SYMKIND_CODES[sym.kind]
        flags |= (1 << 4) if sym.binding is Binding.GLOBAL else 0
        flags |= (1 << 5) if sym.section is not None else 0
        flags |= (1 << 6) if sym.proc is not None else 0
        out.write(bytes([flags]))
        if sym.section is not None:
            out.write(bytes([_SECTION_CODES[sym.section]]))
        out.write(struct.pack("<qqH", sym.offset, sym.size, sym.alignment))
        if sym.proc is not None:
            out.write(
                struct.pack(
                    "<BqH",
                    1 if sym.proc.uses_gp else 0,
                    sym.proc.frame_size,
                    sym.proc.gat_group,
                )
            )

    out.write(struct.pack("<I", len(obj.relocations)))
    for reloc in obj.relocations:
        out.write(
            bytes([_RELOC_CODES[reloc.type], _SECTION_CODES[reloc.section]])
        )
        _write_str(out, reloc.symbol or "")
        out.write(struct.pack("<qqq", reloc.offset, reloc.addend, reloc.extra))
    return out.getvalue()


def load_object(data: bytes) -> ObjectFile:
    """Deserialize an object module; raises ObjectFormatError on damage."""
    inp = io.BytesIO(data)
    if inp.read(4) != OBJECT_MAGIC:
        raise ObjectFormatError("bad object magic")
    version = inp.read(1)[0]
    if version != FORMAT_VERSION:
        raise ObjectFormatError(f"unsupported object version {version}")
    obj = ObjectFile(name=_read_str(inp))

    (nsections,) = struct.unpack("<H", inp.read(2))
    for _ in range(nsections):
        code, alignment = struct.unpack("<BH", inp.read(3))
        kind = _SECTION_KINDS[code]
        (size,) = struct.unpack("<Q", inp.read(8))
        sec = Section(kind, alignment=alignment)
        if kind.has_bytes:
            sec.data = bytearray(inp.read(size))
        else:
            sec.bss_size = size
        obj.sections[kind] = sec

    (nsymbols,) = struct.unpack("<I", inp.read(4))
    for _ in range(nsymbols):
        name = _read_str(inp)
        flags = inp.read(1)[0]
        kind = _SYMKIND_KINDS[flags & 0xF]
        binding = Binding.GLOBAL if flags & (1 << 4) else Binding.LOCAL
        section = _SECTION_KINDS[inp.read(1)[0]] if flags & (1 << 5) else None
        offset, size, alignment = struct.unpack("<qqH", inp.read(18))
        proc = None
        if flags & (1 << 6):
            uses_gp, frame_size, gat_group = struct.unpack("<BqH", inp.read(11))
            proc = ProcInfo(bool(uses_gp), frame_size, gat_group)
        obj.symbols.append(
            Symbol(name, kind, binding, section, offset, size, alignment, proc)
        )

    (nrelocs,) = struct.unpack("<I", inp.read(4))
    for _ in range(nrelocs):
        type_code, sec_code = inp.read(1)[0], inp.read(1)[0]
        symbol = _read_str(inp) or None
        offset, addend, extra = struct.unpack("<qqq", inp.read(24))
        obj.relocations.append(
            Relocation(
                _RELOC_TYPES[type_code],
                _SECTION_KINDS[sec_code],
                offset,
                symbol,
                addend,
                extra,
            )
        )
    return obj


def dump_archive(members: list[ObjectFile]) -> bytes:
    """Serialize a static archive of object modules."""
    out = io.BytesIO()
    out.write(ARCHIVE_MAGIC)
    out.write(bytes([FORMAT_VERSION]))
    out.write(struct.pack("<I", len(members)))
    for member in members:
        data = dump_object(member)
        out.write(struct.pack("<Q", len(data)))
        out.write(data)
    return out.getvalue()


def load_archive(data: bytes) -> list[ObjectFile]:
    """Deserialize a static archive."""
    inp = io.BytesIO(data)
    if inp.read(4) != ARCHIVE_MAGIC:
        raise ObjectFormatError("bad archive magic")
    version = inp.read(1)[0]
    if version != FORMAT_VERSION:
        raise ObjectFormatError(f"unsupported archive version {version}")
    (count,) = struct.unpack("<I", inp.read(4))
    members = []
    for _ in range(count):
        (size,) = struct.unpack("<Q", inp.read(8))
        members.append(load_object(inp.read(size)))
    return members
