"""Relocatable object-file format (ECOFF-like) and static archives.

The format deliberately mirrors the properties of the Alpha/OSF loader
format that the paper relies on:

* references to the GAT are marked for relocation (``R_LITERAL``);
* instructions that *use* a loaded address are linked back to the load
  that produced it (``R_LITUSE``, the paper's "links between an
  instruction that loads an address and the subsequent instructions that
  use it");
* GP-establishing instruction pairs are marked (``R_GPDISP``);
* procedure boundaries and per-procedure GP usage are recorded in the
  symbol table (procedure descriptors).

These hints are exactly what makes thorough link-time analysis "not
difficult", per the paper.
"""

from repro.objfile.sections import Section, SectionKind
from repro.objfile.symbols import Binding, ProcInfo, Symbol, SymbolKind
from repro.objfile.relocations import LituseKind, Relocation, RelocType
from repro.objfile.objfile import ObjectFile, ObjectFormatError
from repro.objfile.archive import Archive
from repro.objfile.serialize import (
    dump_object,
    load_object,
    dump_archive,
    load_archive,
)

__all__ = [
    "Section",
    "SectionKind",
    "Binding",
    "ProcInfo",
    "Symbol",
    "SymbolKind",
    "LituseKind",
    "Relocation",
    "RelocType",
    "ObjectFile",
    "ObjectFormatError",
    "Archive",
    "dump_object",
    "load_object",
    "dump_archive",
    "load_archive",
]
