"""Compiler driver: source text to relocatable object module.

``compile_module`` is the compile-each path (one translation unit,
intraprocedural optimization, pipeline scheduling — the paper's ``-O2``
analog).  ``compile_all`` merges several sources into one unit and adds
inlining plus intra-unit call optimization (the interprocedural
``-O4``/compile-all analog).  Both paths emit the conservative 64-bit
address-calculation model; only link-time optimization (or intra-unit
knowledge) relaxes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.asm import Assembler
from repro.minicc import astnodes as ast
from repro.minicc import ir
from repro.minicc.codegen import ProcCodegen, analyze_unit
from repro.minicc.inline import inline_module
from repro.minicc.irgen import lower_module
from repro.minicc.mcode import emit_proc
from repro.minicc.opt import optimize_module
from repro.minicc.parser import parse
from repro.minicc.sched import schedule_proc
from repro.minicc.sema import analyze, merge_modules
from repro.objfile.objfile import ObjectFile
from repro.objfile.sections import SectionKind


@dataclass
class Options:
    """Compilation switches.

    ``optimize`` runs the IR optimizer; ``schedule`` runs compile-time
    pipeline scheduling; ``inline`` enables inlining (compile-all only).
    """

    optimize: bool = True
    schedule: bool = True
    inline: bool = True
    #: Optimistic small-data mode (the -G analog of §6 of the paper):
    #: variables of at most this many bytes are addressed GP-relative
    #: directly; the linker refuses to link if the layout breaks the
    #: assumption.  0 (default) generates fully conservative code.
    small_data_threshold: int = 0


def parse_source(source: str, name: str) -> ast.Module:
    """Parse one translation unit (exposed for tools and tests)."""
    return parse(source, name)


def compile_module(
    source: str, name: str, options: Options | None = None
) -> ObjectFile:
    """Compile one source file separately (compile-each mode)."""
    module = parse(source, name)
    analyze(module)
    return _compile_unit(module, mode="each", options=options or Options())


def compile_all(
    sources: list[tuple[str, str]], unit_name: str, options: Options | None = None
) -> ObjectFile:
    """Compile several sources as a single unit (compile-all mode).

    ``sources`` is a list of ``(name, text)`` pairs.  Library sources are
    *not* expected here — like the paper's users, we have no library
    sources at application-build time; libraries arrive pre-compiled.
    """
    modules = [parse(text, name) for name, text in sources]
    merged = merge_modules(modules, unit_name)
    return _compile_unit(merged, mode="all", options=options or Options())


def _compile_unit(module: ast.Module, mode: str, options: Options) -> ObjectFile:
    irmod = lower_module(module)
    if mode == "all" and options.inline:
        inline_module(irmod)
    if options.optimize:
        optimize_module(irmod)
    return generate_object(irmod, mode, options)


def generate_object(irmod: ir.IRModule, mode: str, options: Options) -> ObjectFile:
    """Code-generate an IR module into an object file."""
    unit = analyze_unit(irmod, mode, options.small_data_threshold)
    asm = Assembler(irmod.name)

    _emit_globals(asm, irmod)

    jump_tables = []
    for func in irmod.functions:
        codegen = ProcCodegen(func, unit)
        proc = codegen.generate()
        if options.schedule:
            schedule_proc(proc)
        emit_proc(asm, proc)
        jump_tables.extend(codegen.jump_tables)

    for table in jump_tables:
        asm.data_symbol(table.symbol, SectionKind.DATA, exported=False)
        for label in table.labels:
            asm.data_quad_label(SectionKind.DATA, table.proc, label)

    return asm.finish()


def _emit_globals(asm: Assembler, irmod: ir.IRModule) -> None:
    for glob in irmod.globals:
        if glob.init is not None:
            asm.data_symbol(glob.name, SectionKind.DATA, exported=glob.exported)
            for value in glob.init:
                if isinstance(value, str):
                    # A code-address slot (vtable entry): a REFQUAD
                    # against the named procedure, fixed up at link time
                    # and tracked symbolically through OM.
                    asm.data_quad(SectionKind.DATA, 0, symbol=value)
                else:
                    asm.data_quad(SectionKind.DATA, value)
            remaining = glob.size - 8 * len(glob.init)
            if remaining > 0:
                asm.data_bytes(SectionKind.DATA, bytes(remaining))
        elif glob.exported:
            # Uninitialized exported data becomes COMMON: the linker (or
            # OM, sorting by size) decides its placement.
            asm.common(glob.name, glob.size)
        else:
            asm.bss_symbol(glob.name, glob.size, exported=False)
