"""Intraprocedural IR optimizer — the ``-O2`` analog.

Passes (run to a local fixpoint):

* constant folding and algebraic simplification (``x*8`` → shift,
  ``x+0`` → copy, compile-time evaluation of constant operands);
* immediate forming: binary ops whose second operand is a small constant
  become :class:`ir.BinImm` (the Alpha operate-literal form);
* copy propagation over single-definition moves;
* dead code elimination (pure definitions with no uses; call results
  that are never read become void calls);
* branch simplification: constant conditions, jump-to-next threading,
  unreachable-code and dead-label removal.

All passes preserve the IR's linear-interval liveness invariant (see
:mod:`repro.minicc.ir`): they only delete instructions or substitute a
use by an older, still-live value.
"""

from __future__ import annotations

from repro.minicc import ir

_MASK = (1 << 64) - 1


def _to_signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 64) if value >> 63 else value


def _fold_bin(op: str, a: int, b: int) -> int | None:
    """Evaluate an IR binary op over two 64-bit signed values."""
    if op == "add":
        return _to_signed(a + b)
    if op == "sub":
        return _to_signed(a - b)
    if op == "mul":
        return _to_signed(a * b)
    if op == "s8add":
        return _to_signed(a * 8 + b)
    if op == "div":
        if b == 0:
            return None
        quotient = abs(a) // abs(b)
        return _to_signed(-quotient if (a < 0) != (b < 0) else quotient)
    if op == "rem":
        if b == 0:
            return None
        return _to_signed(a - b * _fold_bin("div", a, b))
    if op == "and":
        return _to_signed(a & b)
    if op == "or":
        return _to_signed(a | b)
    if op == "xor":
        return _to_signed(a ^ b)
    if op == "sll":
        return _to_signed((a & _MASK) << (b & 63))
    if op == "srl":
        return _to_signed((a & _MASK) >> (b & 63))
    if op == "sra":
        return _to_signed(_to_signed(a) >> (b & 63))
    if op == "cmpeq":
        return int(a == b)
    if op == "cmplt":
        return int(a < b)
    if op == "cmple":
        return int(a <= b)
    if op == "cmpult":
        return int((a & _MASK) < (b & _MASK))
    if op == "cmpule":
        return int((a & _MASK) <= (b & _MASK))
    return None


def _fold_un(op: str, a: int) -> int:
    if op == "neg":
        return _to_signed(-a)
    if op == "not":
        return _to_signed(~a)
    return int(a == 0)  # lognot


_COMMUTATIVE = frozenset(["add", "mul", "and", "or", "xor", "cmpeq"])


def optimize_function(func: ir.IRFunc) -> None:
    """Run the optimization pipeline on one function, in place."""
    for _ in range(4):
        changed = _forward_locals(func)
        changed |= _fold_and_simplify(func)
        changed |= _propagate_copies(func)
        changed |= _eliminate_dead_code(func)
        changed |= _eliminate_dead_stores(func)
        changed |= _simplify_branches(func)
        if not changed:
            break


def optimize_module(module: ir.IRModule) -> None:
    """Optimize every function of the module."""
    for func in module.functions:
        optimize_function(func)


# -- constant folding ----------------------------------------------------------


def _constant_defs(func: ir.IRFunc) -> dict[int, int]:
    """Map each single-definition constant vreg to its value."""
    def_count: dict[int, int] = {}
    for instr in func.body:
        for dst in ir.defs_of(instr):
            def_count[dst] = def_count.get(dst, 0) + 1
    constants: dict[int, int] = {}
    for instr in func.body:
        if isinstance(instr, ir.Const) and def_count.get(instr.dst) == 1:
            constants[instr.dst] = instr.value
    return constants


def _fold_and_simplify(func: ir.IRFunc) -> bool:
    constants = _constant_defs(func)
    changed = False
    body = func.body
    for index, instr in enumerate(body):
        if isinstance(instr, ir.Bin):
            a = constants.get(instr.a)
            b = constants.get(instr.b)
            if a is not None and b is not None:
                value = _fold_bin(instr.op, a, b)
                if value is not None:
                    body[index] = ir.Const(instr.line, instr.dst, value)
                    changed = True
                    continue
            if a is not None and instr.op in _COMMUTATIVE:
                instr.a, instr.b = instr.b, instr.a
                a, b = b, a
                changed = True
            replacement = _simplify_with_const_rhs(instr, b)
            if replacement is not None:
                body[index] = replacement
                changed = True
        elif isinstance(instr, ir.BinImm):
            a = constants.get(instr.a)
            if a is not None:
                value = _fold_bin(instr.op, a, instr.imm)
                if value is not None:
                    body[index] = ir.Const(instr.line, instr.dst, value)
                    changed = True
        elif isinstance(instr, ir.Un):
            a = constants.get(instr.src)
            if a is not None:
                body[index] = ir.Const(instr.line, instr.dst, _fold_un(instr.op, a))
                changed = True
            elif instr.op == "lognot":
                body[index] = ir.BinImm(instr.line, "cmpeq", instr.dst, instr.src, 0)
                changed = True
        elif isinstance(instr, ir.CJump):
            cond = constants.get(instr.cond)
            if cond is not None:
                target = instr.if_true if cond else instr.if_false
                body[index] = ir.Jump(instr.line, target)
                changed = True
    return changed


def _simplify_with_const_rhs(instr: ir.Bin, b: int | None) -> ir.Instr | None:
    """Rewrite ``a op const`` into cheaper forms."""
    if b is None:
        return None
    op = instr.op
    if b == 0 and op in ("add", "sub", "or", "xor", "sll", "srl", "sra"):
        return ir.Mov(instr.line, instr.dst, instr.a)
    if b == 0 and op in ("mul", "and"):
        return ir.Const(instr.line, instr.dst, 0)
    if b == 1 and op in ("mul", "div"):
        return ir.Mov(instr.line, instr.dst, instr.a)
    if op == "mul" and b > 1 and (b & (b - 1)) == 0:
        return ir.BinImm(instr.line, "sll", instr.dst, instr.a, b.bit_length() - 1)
    if 0 <= b <= 255 and op not in ("div", "rem"):
        return ir.BinImm(instr.line, op, instr.dst, instr.a, b)
    if op == "sub" and -255 <= b < 0:
        return ir.BinImm(instr.line, "add", instr.dst, instr.a, -b)
    if op == "add" and -255 <= b < 0:
        return ir.BinImm(instr.line, "sub", instr.dst, instr.a, -b)
    return None


# -- store-load forwarding through locals -----------------------------------------


def _forward_locals(func: ir.IRFunc) -> bool:
    """Within a basic block, a LoadLocal after a StoreLocal of the same
    (non-address-taken) local becomes a copy of the stored value.

    Safe because non-address-taken scalars cannot alias memory stores or
    be modified by calls, and tracking resets at labels so no value is
    forwarded across a join or around a back edge (preserving the IR's
    linear-interval liveness invariant).
    """
    def_count: dict[int, int] = {}
    for instr in func.body:
        for dst in ir.defs_of(instr):
            def_count[dst] = def_count.get(dst, 0) + 1

    addr_taken = {
        index for index, local in enumerate(func.locals) if local.addr_taken
    }
    known: dict[int, int] = {}  # local index -> vreg holding its value
    changed = False
    for position, instr in enumerate(func.body):
        if isinstance(instr, ir.Label):
            known.clear()
        elif isinstance(instr, ir.StoreLocal):
            if instr.local in addr_taken:
                continue
            if def_count.get(instr.src) == 1:
                known[instr.local] = instr.src
            else:
                known.pop(instr.local, None)
        elif isinstance(instr, ir.LoadLocal):
            source = known.get(instr.local)
            if source is not None and source != instr.dst:
                func.body[position] = ir.Mov(instr.line, instr.dst, source)
                changed = True
    return changed


def _eliminate_dead_stores(func: ir.IRFunc) -> bool:
    """Drop stores to locals that are never read or address-taken."""
    read: set[int] = set()
    for instr in func.body:
        if isinstance(instr, (ir.LoadLocal, ir.AddrLocal)):
            read.add(instr.local)
    for index, local in enumerate(func.locals):
        if local.addr_taken:
            read.add(index)
    before = len(func.body)
    func.body = [
        instr
        for instr in func.body
        if not (isinstance(instr, ir.StoreLocal) and instr.local not in read)
    ]
    return len(func.body) != before


# -- copy propagation -----------------------------------------------------------


def _propagate_copies(func: ir.IRFunc) -> bool:
    def_count: dict[int, int] = {}
    for instr in func.body:
        for dst in ir.defs_of(instr):
            def_count[dst] = def_count.get(dst, 0) + 1

    mapping: dict[int, int] = {}
    for instr in func.body:
        if (
            isinstance(instr, ir.Mov)
            and def_count.get(instr.dst) == 1
            and def_count.get(instr.src, 0) == 1
        ):
            source = mapping.get(instr.src, instr.src)
            mapping[instr.dst] = source
    if not mapping:
        return False

    changed = False
    for instr in func.body:
        changed |= _rewrite_uses(instr, mapping)
    return changed


def _rewrite_uses(instr: ir.Instr, mapping: dict[int, int]) -> bool:
    changed = False

    def sub(reg: int) -> int:
        nonlocal changed
        new = mapping.get(reg, reg)
        if new != reg:
            changed = True
        return new

    if isinstance(instr, ir.Mov):
        instr.src = sub(instr.src)
    elif isinstance(instr, ir.StoreLocal):
        instr.src = sub(instr.src)
    elif isinstance(instr, ir.Load):
        instr.base = sub(instr.base)
    elif isinstance(instr, ir.Store):
        instr.src, instr.base = sub(instr.src), sub(instr.base)
    elif isinstance(instr, ir.Un):
        instr.src = sub(instr.src)
    elif isinstance(instr, ir.Bin):
        instr.a, instr.b = sub(instr.a), sub(instr.b)
    elif isinstance(instr, ir.BinImm):
        instr.a = sub(instr.a)
    elif isinstance(instr, ir.Call):
        instr.args = [sub(a) for a in instr.args]
    elif isinstance(instr, ir.CallPtr):
        instr.func = sub(instr.func)
        instr.args = [sub(a) for a in instr.args]
    elif isinstance(instr, ir.Pal) and instr.arg is not None:
        instr.arg = sub(instr.arg)
    elif isinstance(instr, ir.CJump):
        instr.cond = sub(instr.cond)
    elif isinstance(instr, ir.JumpTable):
        instr.index = sub(instr.index)
    elif isinstance(instr, ir.Ret) and instr.src is not None:
        instr.src = sub(instr.src)
    return changed


# -- dead code elimination ---------------------------------------------------------


_PURE = (
    ir.Const,
    ir.Mov,
    ir.AddrGlobal,
    ir.AddrLocal,
    ir.LoadLocal,
    ir.Load,
    ir.Un,
    ir.Bin,
    ir.BinImm,
)


def _eliminate_dead_code(func: ir.IRFunc) -> bool:
    changed = False
    while True:
        used: set[int] = set()
        for instr in func.body:
            used.update(ir.uses_of(instr))
        new_body: list[ir.Instr] = []
        removed = False
        for instr in func.body:
            if isinstance(instr, _PURE) and instr.dst not in used:
                removed = True
                continue
            if isinstance(instr, (ir.Call, ir.CallPtr, ir.Pal)):
                if instr.dst is not None and instr.dst not in used:
                    instr.dst = None
                    changed = True
            new_body.append(instr)
        func.body = new_body
        changed |= removed
        if not removed:
            return changed


# -- branch simplification -----------------------------------------------------------


def _reachable_indices(body: list[ir.Instr]) -> set[int]:
    """Indices of instructions reachable from the function entry.

    Reachability must follow the control-flow graph, not adjacency: a
    folded branch can leave whole label-reached blocks orphaned, and
    any instruction surviving in such a block may use a vreg whose
    (also unreachable) definition dead-code elimination already
    removed — which codegen would then reject.
    """
    starts: dict[str, int] = {}
    for index, instr in enumerate(body):
        if isinstance(instr, ir.Label):
            starts[instr.name] = index

    reachable: set[int] = set()
    work = [0]
    while work:
        index = work.pop()
        while index < len(body) and index not in reachable:
            reachable.add(index)
            instr = body[index]
            if isinstance(instr, ir.Jump):
                if instr.target in starts:
                    work.append(starts[instr.target])
                break
            if isinstance(instr, ir.CJump):
                for target in (instr.if_true, instr.if_false):
                    if target in starts:
                        work.append(starts[target])
                break
            if isinstance(instr, ir.JumpTable):
                for target in instr.labels:
                    if target in starts:
                        work.append(starts[target])
                break
            if isinstance(instr, ir.Ret):
                break
            index += 1
    return reachable


def _simplify_branches(func: ir.IRFunc) -> bool:
    changed = False
    body = func.body

    # Remove unreachable code, by control-flow reachability from entry.
    alive = _reachable_indices(body)
    if len(alive) != len(body):
        body = [instr for index, instr in enumerate(body) if index in alive]
        changed = True

    # Thread jumps to labels that immediately jump elsewhere, and drop
    # jumps to the very next label.
    label_next: dict[str, ir.Instr | None] = {}
    for index, instr in enumerate(body):
        if isinstance(instr, ir.Label):
            follow = index + 1
            while follow < len(body) and isinstance(body[follow], ir.Label):
                follow += 1
            label_next[instr.name] = body[follow] if follow < len(body) else None

    def resolve(target: str, depth: int = 0) -> str:
        follower = label_next.get(target)
        if depth < 8 and isinstance(follower, ir.Jump):
            return resolve(follower.target, depth + 1)
        return target

    for instr in body:
        if isinstance(instr, ir.Jump):
            new_target = resolve(instr.target)
            changed |= new_target != instr.target
            instr.target = new_target
        elif isinstance(instr, ir.CJump):
            new_true, new_false = resolve(instr.if_true), resolve(instr.if_false)
            changed |= (new_true, new_false) != (instr.if_true, instr.if_false)
            instr.if_true, instr.if_false = new_true, new_false
        elif isinstance(instr, ir.JumpTable):
            new_labels = [resolve(label) for label in instr.labels]
            changed |= new_labels != instr.labels
            instr.labels = new_labels

    cleaned: list[ir.Instr] = []
    for index, instr in enumerate(body):
        if isinstance(instr, ir.Jump):
            follow = index + 1
            is_next = False
            while follow < len(body) and isinstance(body[follow], ir.Label):
                if body[follow].name == instr.target:
                    is_next = True
                    break
                follow += 1
            if is_next:
                changed = True
                continue
        cleaned.append(instr)
    body = cleaned

    # Drop labels nothing references.
    used_labels: set[str] = set()
    for instr in body:
        if isinstance(instr, ir.Jump):
            used_labels.add(instr.target)
        elif isinstance(instr, ir.CJump):
            used_labels.update((instr.if_true, instr.if_false))
        elif isinstance(instr, ir.JumpTable):
            used_labels.update(instr.labels)
    final = [
        instr
        for instr in body
        if not (isinstance(instr, ir.Label) and instr.name not in used_labels)
    ]
    changed |= len(final) != len(body)
    func.body = final
    return changed
