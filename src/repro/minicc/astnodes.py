"""MiniC abstract syntax tree.

Every node carries its source line for diagnostics.  The tree is plain
data; semantic checking lives in :mod:`repro.minicc.sema` and lowering
in :mod:`repro.minicc.irgen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions -------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    """A name: local, parameter, global, or function."""

    name: str = ""


@dataclass
class Str(Expr):
    """A string literal; evaluates to the address of a zero-terminated
    word array (one character code per 64-bit word)."""

    value: str = ""


@dataclass
class Unary(Expr):
    """Operators: - ~ ! * (deref) & (address-of)."""

    op: str = ""
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    """Arithmetic/logical/relational binary operators (incl. && ||)."""

    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Assign(Expr):
    """``target op= value``; op is '=' or a compound like '+='."""

    op: str = "="
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class IncDec(Expr):
    """``++x``/``x++``/``--x``/``x--``."""

    op: str = "++"
    target: Expr | None = None
    is_prefix: bool = True


@dataclass
class Cond(Expr):
    """Ternary ``c ? t : f``."""

    cond: Expr | None = None
    then: Expr | None = None
    other: Expr | None = None


@dataclass
class Call(Expr):
    """A call; ``callee`` may be a Var naming a function (direct) or any
    pointer-valued expression (indirect)."""

    callee: Expr | None = None
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """``base[index]`` — 8-byte scaled."""

    base: Expr | None = None
    index: Expr | None = None


# -- statements ---------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class LocalDecl(Stmt):
    """``int x = e;`` or ``int a[N];`` inside a function."""

    name: str = ""
    array_size: int | None = None
    init: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    other: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    init: Expr | None = None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class Switch(Stmt):
    value: Expr | None = None
    cases: list[tuple[int, list[Stmt]]] = field(default_factory=list)
    default: list[Stmt] | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- top-level declarations ----------------------------------------------------


@dataclass
class GlobalVar:
    """A module-level variable definition (or extern declaration)."""

    name: str
    array_size: int | None = None
    init: list[int] | None = None
    static: bool = False
    extern: bool = False
    line: int = 0


@dataclass
class FuncProto:
    """``extern int f(int a, int b);``"""

    name: str
    params: list[str] = field(default_factory=list)
    line: int = 0


@dataclass
class FuncDef:
    name: str
    params: list[str] = field(default_factory=list)
    body: Block | None = None
    static: bool = False
    line: int = 0


@dataclass
class Module:
    """One parsed translation unit."""

    name: str
    globals: list[GlobalVar] = field(default_factory=list)
    protos: list[FuncProto] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
