"""MiniC lexer.

Hand-written scanner producing a flat token list.  Tokens carry their
line number for diagnostics.  Comments (``//`` and ``/* */``) and
whitespace are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minicc.errors import CompileError

KEYWORDS = frozenset(
    [
        "int",
        "void",
        "extern",
        "static",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "switch",
        "case",
        "default",
    ]
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "?",
    ":",
    ";",
    ",",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
]


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is 'ident', 'num', a keyword, or an operator."""

    kind: str
    value: str | int
    line: int


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Scan MiniC source into tokens; raises CompileError on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise CompileError("unterminated comment", filename, line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                value = int(source[start:pos], 16)
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                value = int(source[start:pos])
            tokens.append(Token("num", value, line))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            word = source[start:pos]
            kind = word if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            continue
        if ch == '"':
            end = pos + 1
            chars: list[str] = []
            escapes = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"'}
            while end < length and source[end] != '"':
                if source[end] == "\\":
                    if end + 1 >= length or source[end + 1] not in escapes:
                        raise CompileError("bad escape in string literal", filename, line)
                    chars.append(escapes[source[end + 1]])
                    end += 2
                elif source[end] == "\n":
                    raise CompileError("unterminated string literal", filename, line)
                else:
                    chars.append(source[end])
                    end += 1
            if end >= length:
                raise CompileError("unterminated string literal", filename, line)
            tokens.append(Token("str", "".join(chars), line))
            pos = end + 1
            continue
        if ch == "'":
            end = pos + 1
            if end < length and source[end] == "\\":
                escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                if end + 1 >= length or source[end + 1] not in escapes:
                    raise CompileError("bad escape in char literal", filename, line)
                value = escapes[source[end + 1]]
                end += 2
            elif end < length:
                value = ord(source[end])
                end += 1
            else:
                raise CompileError("unterminated char literal", filename, line)
            if end >= length or source[end] != "'":
                raise CompileError("unterminated char literal", filename, line)
            tokens.append(Token("num", value, line))
            pos = end + 1
            continue
        for operator in _OPERATORS:
            if source.startswith(operator, pos):
                tokens.append(Token(operator, operator, line))
                pos += len(operator)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", filename, line)
    tokens.append(Token("eof", "", line))
    return tokens
