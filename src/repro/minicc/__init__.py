"""MiniC: the compiler substrate.

MiniC is a C subset (64-bit ints, one-dimensional arrays, pointers,
function pointers, ``switch``) whose compiler emits exactly the
conservative 64-bit address-calculation code model the paper describes:

* every global variable and procedure address is obtained by an
  *address load* from the GAT through the GP register;
* every procedure establishes its own GP on entry from PV, and
  re-establishes it after every call returns from RA;
* every call site loads PV from the GAT and uses the general ``jsr``.

Two compilation modes mirror the paper's versions:

* **compile-each** (``-O2`` analog): each module compiled separately with
  intraprocedural optimization and pipeline scheduling;
* **compile-all** (interprocedural analog): all user sources compiled as
  one unit, with inlining and intra-unit call optimization (BSR, skipped
  GP setup, no GP reset) — but pre-compiled library calls keep the full
  conservative convention, as the paper stresses.
"""

from repro.minicc.errors import CompileError
from repro.minicc.driver import (
    Options,
    compile_module,
    compile_all,
    parse_source,
)

__all__ = [
    "CompileError",
    "Options",
    "compile_module",
    "compile_all",
    "parse_source",
]
