"""Basic-block list scheduler for the dual-issue pipeline.

Used twice, mirroring the paper: at compile time on freshly generated
code, and by OM-full's optional link-time rescheduling pass (the paper
notes OM's scheduler is "very similar to the scheduler used by the
assembler").

A side effect the paper highlights: scheduling routinely moves the
GP-establishing ``ldah``/``lda`` pair away from its logical position at
procedure entry (independent prologue instructions have longer critical
paths and are preferred), which later prevents OM-simple from
retargeting BSRs past the GP setup — only OM-full, which can move code,
restores them.

Block boundaries: control-transfer instructions end a block; *target*
labels begin one.  Marker labels (procedure entries, call return
points) always coincide with a block start and stay there; the
instructions after them are free to move, which is exactly how GP-reset
pairs drift away from their base points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.timing import can_dual_issue, result_latency
from repro.minicc.mcode import MInstr, MItem, MLabel, MProc


@dataclass
class _Node:
    item: MInstr
    index: int
    succs: list[tuple[int, int]] = field(default_factory=list)  # (node, latency)
    npreds: int = 0
    priority: int = 0
    ready_at: int = 0


def schedule_proc(proc: MProc) -> None:
    """Schedule every basic block of the procedure, in place."""
    proc.items = schedule_items(proc.items)


def schedule_items(items: list[MItem]) -> list[MItem]:
    """Return the item list with each basic block list-scheduled."""
    out: list[MItem] = []
    block: list[MInstr] = []

    def flush() -> None:
        out.extend(_schedule_block(block))
        block.clear()

    for item in items:
        if isinstance(item, MLabel):
            if item.is_target:
                flush()
                out.append(item)
            else:
                # Marker labels pin to a block start.
                flush()
                out.append(item)
            continue
        block.append(item)
        if item.instr.is_control:
            flush()
    flush()
    return out


def _schedule_block(block: list[MInstr]) -> list[MInstr]:
    if len(block) <= 1:
        return list(block)

    # A trailing control instruction is pinned last.
    tail: list[MInstr] = []
    body = list(block)
    if body and body[-1].instr.is_control:
        tail = [body.pop()]
    if len(body) <= 1:
        return body + tail

    nodes = _build_dag(body)
    _compute_priorities(nodes)
    order = _list_schedule(nodes)
    return [nodes[i].item for i in order] + tail


def _build_dag(body: list[MInstr]) -> list[_Node]:
    nodes = [_Node(item, index) for index, item in enumerate(body)]
    last_def: dict[int, int] = {}
    uses_since_def: dict[int, list[int]] = {}
    last_store: int | None = None
    mem_reads_since_store: list[int] = []

    def add_edge(src: int, dst: int, latency: int) -> None:
        nodes[src].succs.append((dst, latency))
        nodes[dst].npreds += 1

    for index, node in enumerate(nodes):
        instr = node.item.instr
        for reg in instr.uses():
            if reg in last_def:  # RAW
                add_edge(last_def[reg], index, result_latency(nodes[last_def[reg]].item.instr))
            uses_since_def.setdefault(reg, []).append(index)
        for reg in instr.defs():
            if reg in last_def:  # WAW
                add_edge(last_def[reg], index, 1)
            for user in uses_since_def.get(reg, []):  # WAR
                if user != index:
                    add_edge(user, index, 0)
            last_def[reg] = index
            uses_since_def[reg] = []
        if instr.op.is_store:
            if last_store is not None:
                add_edge(last_store, index, 1)
            for reader in mem_reads_since_store:
                add_edge(reader, index, 0)
            last_store = index
            mem_reads_since_store = []
        elif instr.op.is_load:
            if last_store is not None:
                add_edge(last_store, index, 1)
            mem_reads_since_store.append(index)
    return nodes


def _compute_priorities(nodes: list[_Node]) -> None:
    """Priority = critical-path length to the end of the block."""
    for node in reversed(nodes):
        latency = result_latency(node.item.instr)
        best = 0
        for succ, edge_latency in node.succs:
            best = max(best, nodes[succ].priority + max(edge_latency, 1))
        node.priority = best + (latency - 1)


def _list_schedule(nodes: list[_Node]) -> list[int]:
    """Cycle-by-cycle dual-issue list scheduling; returns issue order."""
    pending = {node.index for node in nodes}
    npreds = [node.npreds for node in nodes]
    ready: list[int] = [n.index for n in nodes if n.npreds == 0]
    order: list[int] = []
    cycle = 0

    def pick(exclude: int | None) -> int | None:
        candidates = [
            i
            for i in ready
            if nodes[i].ready_at <= cycle
            and (
                exclude is None
                or can_dual_issue(nodes[exclude].item.instr, nodes[i].item.instr)
            )
        ]
        if not candidates:
            return None
        # Highest priority first; original order breaks ties (stability).
        return min(candidates, key=lambda i: (-nodes[i].priority, i))

    while pending:
        issued: list[int] = []
        first = pick(None)
        if first is not None:
            issued.append(first)
            ready.remove(first)
            second = pick(first)
            if second is not None:
                issued.append(second)
                ready.remove(second)
        for index in issued:
            pending.discard(index)
            order.append(index)
            for succ, edge_latency in nodes[index].succs:
                npreds[succ] -= 1
                earliest = cycle + max(edge_latency, 1)
                nodes[succ].ready_at = max(nodes[succ].ready_at, earliest)
                if npreds[succ] == 0:
                    ready.append(succ)
        cycle += 1
        if not issued and not ready:
            # Nothing ready this cycle: jump to the next ready time.
            future = [
                nodes[i].ready_at for i in pending if npreds[nodes[i].index] == 0
            ]
            if future:
                cycle = max(cycle, min(future))
    return order
