"""MiniC recursive-descent parser.

Types in MiniC are all 64-bit words; the parser accepts ``int``,
``int *`` and ``void`` (functions only) but does not track a type
lattice — arrays and address-of are the only places representation
matters, and those are structural.
"""

from __future__ import annotations

from repro.minicc import astnodes as ast
from repro.minicc.errors import CompileError
from repro.minicc.lexer import Token, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])


class Parser:
    """Parses one translation unit into an :class:`ast.Module`."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.filename = filename
        self.tokens: list[Token] = tokenize(source, filename)
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        if self.tok.kind != kind:
            raise self.error(f"expected {kind!r}, found {self.tok.value!r}")
        return self.advance()

    def accept(self, kind: str) -> bool:
        if self.tok.kind == kind:
            self.advance()
            return True
        return False

    def error(self, message: str) -> CompileError:
        return CompileError(message, self.filename, self.tok.line)

    # -- top level -----------------------------------------------------------

    def parse_module(self, name: str) -> ast.Module:
        module = ast.Module(name)
        while self.tok.kind != "eof":
            self._parse_top_decl(module)
        return module

    def _parse_type(self) -> None:
        """Consume a type spelling: ``int``, ``int *``, or ``void``."""
        if not (self.accept("int") or self.accept("void")):
            raise self.error(f"expected type, found {self.tok.value!r}")
        while self.accept("*"):
            pass

    def _parse_top_decl(self, module: ast.Module) -> None:
        line = self.tok.line
        is_extern = self.accept("extern")
        is_static = self.accept("static")
        self._parse_type()
        name = str(self.expect("ident").value)

        if self.tok.kind == "(":
            # Function prototype or definition.
            params = self._parse_params()
            if self.accept(";"):
                module.protos.append(ast.FuncProto(name, params, line))
                return
            if is_extern:
                raise self.error("extern function declaration needs ';'")
            body = self._parse_block()
            module.functions.append(ast.FuncDef(name, params, body, is_static, line))
            return

        # Variable.
        array_size = None
        if self.accept("["):
            array_size = int(self.expect("num").value)
            self.expect("]")
            if array_size <= 0:
                raise CompileError("array size must be positive", self.filename, line)
        init = None
        if self.accept("="):
            if is_extern:
                raise self.error("extern variable cannot have an initializer")
            init = self._parse_const_init()
        self.expect(";")
        module.globals.append(
            ast.GlobalVar(name, array_size, init, is_static, is_extern, line)
        )

    def _parse_const_init(self) -> list[int]:
        if self.accept("{"):
            values = [self._parse_const_expr()]
            while self.accept(","):
                if self.tok.kind == "}":
                    break
                values.append(self._parse_const_expr())
            self.expect("}")
            return values
        return [self._parse_const_expr()]

    def _parse_const_expr(self) -> int:
        negative = self.accept("-")
        value = int(self.expect("num").value)
        return -value if negative else value

    def _parse_params(self) -> list[str]:
        self.expect("(")
        params: list[str] = []
        if self.accept(")"):
            return params
        if self.tok.kind == "void" and self.peek().kind == ")":
            self.advance()
            self.expect(")")
            return params
        while True:
            self._parse_type()
            params.append(str(self.expect("ident").value))
            if not self.accept(","):
                break
        self.expect(")")
        if len(params) > 6:
            raise self.error("MiniC functions take at most 6 parameters")
        return params

    # -- statements -----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        line = self.tok.line
        self.expect("{")
        body: list[ast.Stmt] = []
        while not self.accept("}"):
            if self.tok.kind == "eof":
                raise self.error("unterminated block")
            body.append(self._parse_stmt())
        return ast.Block(line, body)

    def _parse_stmt(self) -> ast.Stmt:
        line = self.tok.line
        kind = self.tok.kind
        if kind == "{":
            return self._parse_block()
        if kind == ";":
            self.advance()
            return ast.Block(line, [])
        if kind == "int":
            self.advance()
            while self.accept("*"):
                pass
            name = str(self.expect("ident").value)
            array_size = None
            init = None
            if self.accept("["):
                array_size = int(self.expect("num").value)
                self.expect("]")
            elif self.accept("="):
                init = self._parse_expr()
            self.expect(";")
            return ast.LocalDecl(line, name, array_size, init)
        if kind == "if":
            self.advance()
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            then = self._parse_stmt()
            other = self._parse_stmt() if self.accept("else") else None
            return ast.If(line, cond, then, other)
        if kind == "while":
            self.advance()
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            return ast.While(line, cond, self._parse_stmt())
        if kind == "do":
            self.advance()
            body = self._parse_stmt()
            self.expect("while")
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.DoWhile(line, body, cond)
        if kind == "for":
            self.advance()
            self.expect("(")
            init = None if self.tok.kind == ";" else self._parse_expr()
            self.expect(";")
            cond = None if self.tok.kind == ";" else self._parse_expr()
            self.expect(";")
            step = None if self.tok.kind == ")" else self._parse_expr()
            self.expect(")")
            return ast.For(line, init, cond, step, self._parse_stmt())
        if kind == "switch":
            return self._parse_switch()
        if kind == "return":
            self.advance()
            value = None if self.tok.kind == ";" else self._parse_expr()
            self.expect(";")
            return ast.Return(line, value)
        if kind == "break":
            self.advance()
            self.expect(";")
            return ast.Break(line)
        if kind == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue(line)
        expr = self._parse_expr()
        self.expect(";")
        return ast.ExprStmt(line, expr)

    def _parse_switch(self) -> ast.Switch:
        line = self.tok.line
        self.expect("switch")
        self.expect("(")
        value = self._parse_expr()
        self.expect(")")
        self.expect("{")
        cases: list[tuple[int, list[ast.Stmt]]] = []
        default: list[ast.Stmt] | None = None
        seen: set[int] = set()
        while not self.accept("}"):
            if self.accept("case"):
                case_value = self._parse_const_expr()
                if case_value in seen:
                    raise self.error(f"duplicate case {case_value}")
                seen.add(case_value)
                self.expect(":")
                cases.append((case_value, self._parse_case_body()))
            elif self.accept("default"):
                if default is not None:
                    raise self.error("duplicate default")
                self.expect(":")
                default = self._parse_case_body()
            else:
                raise self.error("expected 'case' or 'default'")
        return ast.Switch(line, value, cases, default)

    def _parse_case_body(self) -> list[ast.Stmt]:
        body: list[ast.Stmt] = []
        while self.tok.kind not in ("case", "default", "}", "eof"):
            body.append(self._parse_stmt())
        return body

    # -- expressions ------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        if self.tok.kind in _ASSIGN_OPS:
            op = self.tok.kind
            line = self.tok.line
            self.advance()
            value = self._parse_assignment()
            return ast.Assign(line, op, left, value)
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self.accept("?"):
            line = self.tok.line
            then = self._parse_expr()
            self.expect(":")
            other = self._parse_ternary()
            return ast.Cond(line, cond, then, other)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            prec = _PRECEDENCE.get(self.tok.kind, 0)
            if prec < min_prec:
                return left
            op = self.tok.kind
            line = self.tok.line
            self.advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(line, op, left, right)

    def _parse_unary(self) -> ast.Expr:
        line = self.tok.line
        if self.tok.kind in ("-", "~", "!", "*", "&"):
            op = self.tok.kind
            self.advance()
            return ast.Unary(line, op, self._parse_unary())
        if self.tok.kind in ("++", "--"):
            op = self.tok.kind
            self.advance()
            return ast.IncDec(line, op, self._parse_unary(), is_prefix=True)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            line = self.tok.line
            if self.accept("["):
                index = self._parse_expr()
                self.expect("]")
                expr = ast.Index(line, expr, index)
            elif self.tok.kind == "(":
                args = self._parse_args()
                expr = ast.Call(line, expr, args)
            elif self.tok.kind in ("++", "--"):
                op = self.tok.kind
                self.advance()
                expr = ast.IncDec(line, op, expr, is_prefix=False)
            else:
                return expr

    def _parse_args(self) -> list[ast.Expr]:
        self.expect("(")
        args: list[ast.Expr] = []
        if self.accept(")"):
            return args
        while True:
            args.append(self._parse_expr())
            if not self.accept(","):
                break
        self.expect(")")
        if len(args) > 6:
            raise self.error("MiniC calls take at most 6 arguments")
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "num":
            self.advance()
            return ast.Num(token.line, int(token.value))
        if token.kind == "ident":
            self.advance()
            return ast.Var(token.line, str(token.value))
        if token.kind == "str":
            self.advance()
            return ast.Str(token.line, str(token.value))
        if token.kind == "(":
            self.advance()
            expr = self._parse_expr()
            self.expect(")")
            return expr
        raise self.error(f"unexpected token {token.value!r}")


def parse(source: str, name: str, filename: str | None = None) -> ast.Module:
    """Parse MiniC source text into a module AST."""
    return Parser(source, filename or name).parse_module(name)
