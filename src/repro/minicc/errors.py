"""Compiler diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """A source-level error with location information."""

    def __init__(self, message: str, filename: str = "<input>", line: int = 0):
        self.message = message
        self.filename = filename
        self.line = line
        super().__init__(f"{filename}:{line}: {message}" if line else message)
