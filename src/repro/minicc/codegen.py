"""Code generation: IR to annotated machine code (the conservative model).

This back end emits exactly the address-calculation idioms the paper
describes for 64-bit targets:

* global variable and procedure addresses come from *address loads*
  ``ldq rX, slot(gp)`` marked with ``R_LITERAL``, and every instruction
  consuming the loaded address is marked with ``R_LITUSE``;
* procedures that need the GAT establish GP on entry from PV
  (``ldah gp/lda gp`` pair, ``R_GPDISP``) and re-establish it from RA
  after every call returns;
* direct calls load PV from the GAT and use the general ``jsr`` —
  except *local calls* (callee defined in this unit and either the unit
  is compiled in compile-all mode or the callee is ``static``), which
  use ``bsr`` past the callee's GP setup with no PV load and no GP
  reset.  This models the compile-time interprocedural optimization the
  paper's compile-all versions receive.

Register conventions: expression temporaries live in t0..t10 (t11 and
AT are reserved scratch), register-allocated locals in s0..s5, arguments
in a0..a5, results in v0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import PalFunc
from repro.isa.registers import Reg
from repro.minicc import ir
from repro.minicc.errors import CompileError
from repro.minicc.mcode import MInstr, MLabel, MProc
from repro.objfile.relocations import LituseKind

#: Registers usable for expression temporaries.
_T_POOL = (
    Reg.T0, Reg.T1, Reg.T2, Reg.T3, Reg.T4, Reg.T5,
    Reg.T6, Reg.T7, Reg.T8, Reg.T9, Reg.T10,
)
_SCRATCH1 = Reg.AT
_SCRATCH2 = Reg.T11
_S_POOL = (Reg.S0, Reg.S1, Reg.S2, Reg.S3, Reg.S4, Reg.S5)
_ARG_REGS = (Reg.A0, Reg.A1, Reg.A2, Reg.A3, Reg.A4, Reg.A5)

_BIN_TO_OP = {
    "add": "addq",
    "s8add": "s8addq",
    "sub": "subq",
    "mul": "mulq",
    "and": "and",
    "or": "bis",
    "xor": "xor",
    "sll": "sll",
    "srl": "srl",
    "sra": "sra",
    "cmpeq": "cmpeq",
    "cmplt": "cmplt",
    "cmple": "cmple",
    "cmpult": "cmpult",
    "cmpule": "cmpule",
}

_PAL_FUNC = {
    "halt": PalFunc.HALT,
    "putchar": PalFunc.PUTCHAR,
    "putint": PalFunc.PUTINT,
    "getticks": PalFunc.GETTICKS,
}

#: Library routines implementing integer division (the Alpha has no
#: divide instruction; division is a library call, as on the real AXP).
DIV_CALLS = {"div": "__divq", "rem": "__remq"}


@dataclass
class UnitInfo:
    """Whole-translation-unit facts the per-procedure codegen needs."""

    mode: str  # "each" or "all"
    funcs: dict[str, ir.IRFunc] = field(default_factory=dict)
    uses_gp: dict[str, bool] = field(default_factory=dict)
    postgp_targets: set[str] = field(default_factory=set)
    #: Optimistic small-data mode (-G analog): variables no larger than
    #: this are addressed GP-relative directly, gambling that the final
    #: layout keeps them within reach; the linker refuses to link when
    #: the gamble fails.  0 disables.
    small_data_threshold: int = 0
    global_sizes: dict[str, int] = field(default_factory=dict)

    def is_local_call(self, callee: str) -> bool:
        func = self.funcs.get(callee)
        if func is None:
            return False
        return self.mode == "all" or not func.exported

    def is_small_data(self, symbol: str) -> bool:
        if not self.small_data_threshold or symbol in self.funcs:
            return False
        size = self.global_sizes.get(symbol, 0)
        return 0 < size <= self.small_data_threshold


def analyze_unit(
    module: ir.IRModule, mode: str, small_data_threshold: int = 0
) -> UnitInfo:
    """Pre-scan the unit: GP usage per function and local-call targets."""
    info = UnitInfo(
        mode,
        {f.name: f for f in module.functions},
        small_data_threshold=small_data_threshold,
        global_sizes=dict(module.global_sizes),
    )
    for func in module.functions:
        info.uses_gp[func.name] = _function_uses_gp(func)
    for func in module.functions:
        for instr in func.body:
            callee = None
            if isinstance(instr, ir.Call):
                callee = instr.callee
            elif isinstance(instr, ir.Bin) and instr.op in DIV_CALLS:
                callee = DIV_CALLS[instr.op]
            if callee and info.is_local_call(callee) and info.uses_gp.get(callee):
                info.postgp_targets.add(callee)
    return info


def _function_uses_gp(func: ir.IRFunc) -> bool:
    """A function needs GP iff it performs any GAT access."""
    for instr in func.body:
        if isinstance(instr, (ir.AddrGlobal, ir.JumpTable, ir.Call)):
            return True
        if isinstance(instr, ir.Bin) and instr.op in DIV_CALLS:
            return True
    return False


@dataclass
class _JumpTableData:
    """A pending jump table to materialize in .data."""

    symbol: str
    proc: str
    labels: list[str]


class ProcCodegen:
    """Generates one procedure's :class:`MProc`."""

    def __init__(self, func: ir.IRFunc, unit: UnitInfo):
        self.func = func
        self.unit = unit
        self.items: list[MInstr | MLabel] = []
        self.jump_tables: list[_JumpTableData] = []
        self.externs: set[str] = set()
        self._ret_counter = 0
        self._jt_counter = 0

        self.uses_gp = unit.uses_gp[func.name]
        self.makes_calls = any(
            isinstance(i, (ir.Call, ir.CallPtr))
            or (isinstance(i, ir.Bin) and i.op in DIV_CALLS)
            for i in func.body
        )
        # PAL builtins read a0, so a0-resident parameter homes are unsafe.
        self.has_pal = any(isinstance(i, ir.Pal) for i in func.body)

        # Virtual register bookkeeping.
        self.vreg_loc: dict[int, tuple[str, int]] = {}  # vreg -> ("reg", r) | ("spill", off)
        self.free_tregs: list[int] = list(reversed(_T_POOL))
        self.last_use: dict[int, int] = {}
        self.alias_ok: set[int] = set()  # indices of alias-safe LoadLocals
        self.spill_slot: dict[int, int] = {}  # vreg -> frame offset
        self.n_spill_slots = 0
        self.lit_load_of: dict[int, int] = {}  # vreg -> uid of its literal load
        self.lit_sym_of: dict[int, tuple[str, int]] = {}  # vreg -> (symbol, addend)
        # Literal loads whose value escapes into arithmetic or calls;
        # OM may convert but not nullify these (their uses cannot all be
        # rebased onto GP).
        self.escaped_uids: set[int] = set()

        self._assign_locals()

    # -- local variable placement ----------------------------------------------

    def _assign_locals(self) -> None:
        """Decide register vs. stack placement and lay out the frame."""
        func = self.func
        candidates = [
            (index, local)
            for index, local in enumerate(func.locals)
            if not local.is_array and not local.addr_taken
        ]
        candidates.sort(key=lambda pair: -pair[1].weight)
        self.local_reg: dict[int, int] = {}
        if not self.makes_calls and not self.has_pal:
            # Leaf procedure: parameters stay in their argument registers
            # (no move, no save), leaving the s-registers for hot locals.
            for index in range(len(func.params)):
                self.local_reg[index] = int(_ARG_REGS[index])
            candidates = [c for c in candidates if c[0] >= len(func.params)]
        spool = list(_S_POOL)
        for index, local in candidates:
            if index in self.local_reg:
                continue
            if not spool:
                break
            if local.weight <= 0 and index >= len(func.params):
                break
            self.local_reg[index] = int(spool.pop(0))
        self.sregs_used = sorted(
            reg for reg in set(self.local_reg.values()) if reg in _S_POOL
        )

        offset = 0
        self.ra_offset = None
        if self.makes_calls:
            self.ra_offset = offset
            offset += 8
        self.sreg_save_offset = {}
        for sreg in self.sregs_used:
            self.sreg_save_offset[sreg] = offset
            offset += 8
        self.local_offset: dict[int, int] = {}
        for index, local in enumerate(func.locals):
            if index in self.local_reg:
                continue
            self.local_offset[index] = offset
            offset += (local.size + 7) & ~7
        self.fixed_frame = offset

    @property
    def frame_size(self) -> int:
        total = self.fixed_frame + 8 * self.n_spill_slots
        return (total + 15) & ~15

    # -- emission helpers ---------------------------------------------------------

    def emit(self, instr: Instruction, **kwargs) -> MInstr:
        item = MInstr(instr, **kwargs)
        self.items.append(item)
        return item

    def emit_label(self, name: str, is_target: bool = True) -> None:
        self.items.append(MLabel(name, is_target))

    def _new_ret_label(self) -> str:
        self._ret_counter += 1
        return f"{self.func.name}$ret{self._ret_counter}"

    def error(self, message: str, line: int = 0) -> CompileError:
        return CompileError(message, self.func.name, line)

    # -- virtual register allocation ------------------------------------------------

    def _compute_liveness(self) -> None:
        body = self.func.body
        def_count: dict[int, int] = {}
        for index, instr in enumerate(body):
            for reg in ir.uses_of(instr):
                self.last_use[reg] = index
            for reg in ir.defs_of(instr):
                def_count[reg] = def_count.get(reg, 0) + 1
        # Multi-definition vregs (ternary merges) must never be spilled:
        # an eviction on one control-flow arm would leave the other arm's
        # value behind.  Keep them pinned in their register.
        self.pinned = {vreg for vreg, count in def_count.items() if count > 1}
        # Alias-safe LoadLocal detection: all uses happen before anything
        # that could change the underlying s-register or control flow.
        for index, instr in enumerate(body):
            if not isinstance(instr, ir.LoadLocal):
                continue
            if instr.local not in self.local_reg:
                continue
            last = self.last_use.get(instr.dst, index)
            safe = True
            for probe in body[index + 1 : last + 1]:
                if isinstance(probe, ir.StoreLocal) and probe.local == instr.local:
                    safe = False
                elif isinstance(probe, (ir.Call, ir.CallPtr, ir.Label)):
                    safe = False
                elif isinstance(probe, ir.Bin) and probe.op in DIV_CALLS:
                    safe = False
                if not safe:
                    break
            if safe:
                self.alias_ok.add(index)

    def _alloc_treg(self, vreg: int) -> int:
        existing = self.vreg_loc.get(vreg)
        if existing is not None and existing[0] == "reg":
            return existing[1]
        if not self.free_tregs:
            self._evict_one()
        reg = self.free_tregs.pop()
        self.vreg_loc[vreg] = ("reg", reg)
        return reg

    def _evict_one(self) -> None:
        """Spill the in-register vreg with the farthest next use."""
        victim = None
        farthest = -1
        for vreg, (kind, reg) in self.vreg_loc.items():
            if kind != "reg" or reg not in _T_POOL or vreg in self.pinned:
                continue
            distance = self.last_use.get(vreg, 0)
            if distance > farthest:
                victim, farthest = vreg, distance
        if victim is None:  # pragma: no cover - pool exhaustion without temps
            raise self.error("temporary register pool exhausted")
        reg = self.vreg_loc[victim][1]
        slot = self._spill_slot_for(victim)
        self.emit(Instruction.mem("stq", reg, Reg.SP, slot))
        self.vreg_loc[victim] = ("spill", slot)
        self.free_tregs.append(reg)

    def _spill_slot_for(self, vreg: int) -> int:
        slot = self.spill_slot.get(vreg)
        if slot is None:
            slot = self.fixed_frame + 8 * self.n_spill_slots
            self.n_spill_slots += 1
            self.spill_slot[vreg] = slot
        return slot

    def _reg_of(self, vreg: int, index: int, scratch: int = _SCRATCH1) -> int:
        """Register currently holding ``vreg``, reloading spills."""
        loc = self.vreg_loc.get(vreg)
        if loc is None:
            raise self.error(f"use of undefined temporary v{vreg} at {index}")
        kind, value = loc
        if kind == "reg":
            return value
        self.emit(Instruction.mem("ldq", scratch, Reg.SP, value))
        return int(scratch)

    def _release(self, vreg: int, index: int) -> None:
        """Free ``vreg``'s register if this was its last use."""
        if self.last_use.get(vreg, -1) > index:
            return
        loc = self.vreg_loc.pop(vreg, None)
        if loc is not None and loc[0] == "reg" and loc[1] in _T_POOL:
            self.free_tregs.append(loc[1])
        self.lit_load_of.pop(vreg, None)
        self.lit_sym_of.pop(vreg, None)

    def _use_regs(self, vregs: list[int], index: int) -> list[int]:
        """Fetch operand registers (distinct scratch for two spills)."""
        scratches = [_SCRATCH1, _SCRATCH2]
        regs = []
        for vreg in vregs:
            loc = self.vreg_loc.get(vreg)
            if loc is not None and loc[0] == "spill":
                regs.append(self._reg_of(vreg, index, scratches.pop(0)))
            else:
                regs.append(self._reg_of(vreg, index))
        for vreg in vregs:
            self._release(vreg, index)
        return regs

    def _lituse_for(self, base_vreg: int) -> dict:
        """LITUSE annotation if ``base_vreg`` came from an address load."""
        uid = self.lit_load_of.get(base_vreg)
        if uid is None:
            return {}
        return {"lituse": (uid, LituseKind.BASE)}

    # -- prologue / epilogue --------------------------------------------------------

    def _emit_prologue(self) -> None:
        func = self.func
        if self.uses_gp:
            ldah = self.emit(
                Instruction.mem("ldah", Reg.GP, Reg.PV, 0), gpdisp_base=func.name
            )
            self.emit(
                Instruction.mem("lda", Reg.GP, Reg.GP, 0), gpdisp_pair=ldah.uid
            )
        if func.name in self.unit.postgp_targets:
            self.emit_label(f"{func.name}$postgp", is_target=True)
        self._sp_adjust = None
        if self.fixed_frame or self.makes_calls:
            self._sp_adjust = self.emit(Instruction.mem("lda", Reg.SP, Reg.SP, 0))
        if self.ra_offset is not None:
            self.emit(Instruction.mem("stq", Reg.RA, Reg.SP, self.ra_offset))
        for sreg in self.sregs_used:
            self.emit(Instruction.mem("stq", sreg, Reg.SP, self.sreg_save_offset[sreg]))
        for pindex in range(len(func.params)):
            areg = _ARG_REGS[pindex]
            home_reg = self.local_reg.get(pindex)
            if home_reg is not None:
                if home_reg != int(areg):
                    self.emit(Instruction.opr("bis", areg, areg, home_reg))
            else:
                self.emit(
                    Instruction.mem("stq", areg, Reg.SP, self.local_offset[pindex])
                )

    def _emit_epilogue(self) -> None:
        self.emit_label(f"{self.func.name}$exit", is_target=True)
        if self.ra_offset is not None:
            self.emit(Instruction.mem("ldq", Reg.RA, Reg.SP, self.ra_offset))
        for sreg in self.sregs_used:
            self.emit(Instruction.mem("ldq", sreg, Reg.SP, self.sreg_save_offset[sreg]))
        if self._sp_adjust is not None:
            self.emit(Instruction.mem("lda", Reg.SP, Reg.SP, 0))  # patched below
        self.emit(Instruction.jump("ret", Reg.ZERO, Reg.RA, 1))

    def _patch_frame(self) -> None:
        frame = self.frame_size
        if self._sp_adjust is None:
            return
        self._sp_adjust.instr.disp = -frame
        for item in self.items:
            if (
                isinstance(item, MInstr)
                and item.instr.op.name == "lda"
                and item.instr.ra == Reg.SP
                and item.instr.rb == Reg.SP
                and item.instr.disp == 0
                and item is not self._sp_adjust
            ):
                item.instr.disp = frame

    # -- main loop --------------------------------------------------------------------

    def generate(self) -> MProc:
        self._compute_liveness()
        self.emit_label(self.func.name, is_target=False)
        self._emit_prologue()
        body = self.func.body
        for index, instr in enumerate(body):
            self._gen_instr(instr, index, body)
        self._emit_epilogue()
        self._patch_frame()
        for item in self.items:
            if isinstance(item, MInstr) and item.uid in self.escaped_uids:
                item.lit_escaped = True
        proc = MProc(
            self.func.name,
            self.items,
            exported=self.func.exported,
            uses_gp=self.uses_gp,
            frame_size=self.frame_size,
        )
        return proc

    def _gen_instr(self, instr: ir.Instr, index: int, body: list[ir.Instr]) -> None:
        self._track_escapes(instr)
        if isinstance(instr, ir.Const):
            self._gen_const(instr.dst, instr.value)
        elif isinstance(instr, ir.Mov):
            (src,) = self._use_regs([instr.src], index)
            dst = self._alloc_treg(instr.dst)
            self.emit(Instruction.opr("bis", src, src, dst))
        elif isinstance(instr, ir.AddrGlobal):
            dst = self._alloc_treg(instr.dst)
            if self.unit.is_small_data(instr.symbol):
                # Optimistic small-data mode: compute the address
                # directly off GP, assuming the final layout keeps the
                # symbol within a 16-bit displacement.
                self.emit(
                    Instruction.mem("lda", dst, Reg.GP, 0),
                    gprel=("gprel16", instr.symbol, instr.addend, 0),
                )
                self.externs.add(instr.symbol)
            else:
                item = self.emit(
                    Instruction.mem("ldq", dst, Reg.GP, 0),
                    literal=(instr.symbol, instr.addend),
                )
                self.externs.add(instr.symbol)
                self.lit_load_of[instr.dst] = item.uid
                self.lit_sym_of[instr.dst] = (instr.symbol, instr.addend)
        elif isinstance(instr, ir.AddrLocal):
            dst = self._alloc_treg(instr.dst)
            self.emit(
                Instruction.mem("lda", dst, Reg.SP, self.local_offset[instr.local])
            )
        elif isinstance(instr, ir.LoadLocal):
            self._gen_load_local(instr, index)
        elif isinstance(instr, ir.StoreLocal):
            self._gen_store_local(instr, index)
        elif isinstance(instr, ir.Load):
            lituse = self._lituse_for(instr.base)
            (base,) = self._use_regs([instr.base], index)
            dst = self._alloc_treg(instr.dst)
            self.emit(Instruction.mem("ldq", dst, base, instr.offset), **lituse)
        elif isinstance(instr, ir.Store):
            lituse = self._lituse_for(instr.base)
            src, base = self._use_regs([instr.src, instr.base], index)
            self.emit(Instruction.mem("stq", src, base, instr.offset), **lituse)
        elif isinstance(instr, ir.Un):
            self._gen_un(instr, index)
        elif isinstance(instr, ir.Bin):
            self._gen_bin(instr, index)
        elif isinstance(instr, ir.BinImm):
            (a,) = self._use_regs([instr.a], index)
            dst = self._alloc_treg(instr.dst)
            self.emit(Instruction.opr(_BIN_TO_OP[instr.op], a, instr.imm, dst, lit=True))
        elif isinstance(instr, ir.Call):
            self._gen_call(instr.callee, instr.args, instr.dst, index)
        elif isinstance(instr, ir.CallPtr):
            self._gen_call_ptr(instr, index)
        elif isinstance(instr, ir.Pal):
            self._gen_pal(instr, index)
        elif isinstance(instr, ir.Label):
            self.emit_label(instr.name, is_target=True)
        elif isinstance(instr, ir.Jump):
            self.emit(Instruction.branch("br", Reg.ZERO, 0), branch=(instr.target, 0))
        elif isinstance(instr, ir.CJump):
            self._gen_cjump(instr, index, body)
        elif isinstance(instr, ir.JumpTable):
            self._gen_jump_table(instr, index)
        elif isinstance(instr, ir.Ret):
            if instr.src is not None:
                (src,) = self._use_regs([instr.src], index)
                self.emit(Instruction.opr("bis", src, src, Reg.V0))
            if not self._falls_to_exit(index, body):
                self.emit(
                    Instruction.branch("br", Reg.ZERO, 0),
                    branch=(f"{self.func.name}$exit", 0),
                )
        else:  # pragma: no cover
            raise self.error(f"unhandled IR {type(instr).__name__}", instr.line)

    @staticmethod
    def _falls_to_exit(index: int, body: list[ir.Instr]) -> bool:
        return index == len(body) - 1

    def _track_escapes(self, instr: ir.Instr) -> None:
        """Record address loads whose value is consumed by anything other
        than the base register of a load/store."""
        sanctioned: set[int] = set()
        if isinstance(instr, (ir.Load, ir.Store)):
            sanctioned.add(instr.base)
        for vreg in ir.uses_of(instr):
            if vreg in sanctioned:
                continue
            uid = self.lit_load_of.get(vreg)
            if uid is not None:
                self.escaped_uids.add(uid)

    # -- individual constructs -----------------------------------------------------

    def _gen_const(self, dst_vreg: int, value: int) -> None:
        dst = self._alloc_treg(dst_vreg)
        self._materialize(dst, value)

    def _materialize(self, dst: int, value: int) -> None:
        """Build an arbitrary 64-bit constant in ``dst``.

        Constants are assembled 16 bits at a time: ``value`` splits into
        a sign-adjusted low half and an upper part with the low 16 bits
        clear, so ``upper<<16 + lo == value`` exactly; the upper part
        recurses (at most three levels for a 64-bit value).
        """
        if -32768 <= value <= 32767:
            self.emit(Instruction.mem("lda", dst, Reg.ZERO, value))
            return
        low = ((value & 0xFFFF) ^ 0x8000) - 0x8000
        upper = (value - low) >> 16
        if -32768 <= upper <= 32767:
            self.emit(Instruction.mem("ldah", dst, Reg.ZERO, upper))
            if low:
                self.emit(Instruction.mem("lda", dst, dst, low))
            return
        self._materialize(dst, upper)
        self.emit(Instruction.opr("sll", dst, 16, dst, lit=True))
        if low:
            self.emit(Instruction.mem("lda", dst, dst, low))

    def _gen_load_local(self, instr: ir.LoadLocal, index: int) -> None:
        sreg = self.local_reg.get(instr.local)
        if sreg is not None:
            if index in self.alias_ok:
                self.vreg_loc[instr.dst] = ("reg", sreg)
                return
            dst = self._alloc_treg(instr.dst)
            self.emit(Instruction.opr("bis", sreg, sreg, dst))
            return
        dst = self._alloc_treg(instr.dst)
        self.emit(Instruction.mem("ldq", dst, Reg.SP, self.local_offset[instr.local]))

    def _gen_store_local(self, instr: ir.StoreLocal, index: int) -> None:
        (src,) = self._use_regs([instr.src], index)
        sreg = self.local_reg.get(instr.local)
        if sreg is not None:
            self.emit(Instruction.opr("bis", src, src, sreg))
        else:
            self.emit(
                Instruction.mem("stq", src, Reg.SP, self.local_offset[instr.local])
            )

    def _gen_un(self, instr: ir.Un, index: int) -> None:
        (src,) = self._use_regs([instr.src], index)
        dst = self._alloc_treg(instr.dst)
        if instr.op == "neg":
            self.emit(Instruction.opr("subq", Reg.ZERO, src, dst))
        elif instr.op == "not":
            self.emit(Instruction.opr("ornot", Reg.ZERO, src, dst))
        else:  # lognot
            self.emit(Instruction.opr("cmpeq", src, 0, dst, lit=True))

    def _gen_bin(self, instr: ir.Bin, index: int) -> None:
        if instr.op in DIV_CALLS:
            self._gen_call(DIV_CALLS[instr.op], [instr.a, instr.b], instr.dst, index)
            return
        a, b = self._use_regs([instr.a, instr.b], index)
        dst = self._alloc_treg(instr.dst)
        self.emit(Instruction.opr(_BIN_TO_OP[instr.op], a, b, dst))

    def _gen_cjump(self, instr: ir.CJump, index: int, body: list[ir.Instr]) -> None:
        (cond,) = self._use_regs([instr.cond], index)
        self.emit(
            Instruction.branch("bne", cond, 0), branch=(instr.if_true, 0)
        )
        if not self._label_is_next(instr.if_false, index, body):
            self.emit(
                Instruction.branch("br", Reg.ZERO, 0), branch=(instr.if_false, 0)
            )

    @staticmethod
    def _label_is_next(label: str, index: int, body: list[ir.Instr]) -> bool:
        for probe in body[index + 1 :]:
            if isinstance(probe, ir.Label):
                if probe.name == label:
                    return True
                continue
            return False
        return False

    def _gen_jump_table(self, instr: ir.JumpTable, index: int) -> None:
        self._jt_counter += 1
        table_symbol = f"{self.func.name}$jt{self._jt_counter}"
        self.jump_tables.append(
            _JumpTableData(table_symbol, self.func.name, list(instr.labels))
        )
        (idx,) = self._use_regs([instr.index], index)
        load = self.emit(
            Instruction.mem("ldq", _SCRATCH1, Reg.GP, 0), literal=(table_symbol, 0)
        )
        self.escaped_uids.add(load.uid)  # consumed by s8addq, not rebasable
        self.emit(
            Instruction.opr("s8addq", idx, _SCRATCH1, _SCRATCH1),
            lituse=(load.uid, LituseKind.BASE),
        )
        self.emit(Instruction.mem("ldq", _SCRATCH1, _SCRATCH1, 0))
        self.emit(
            Instruction.jump("jmp", Reg.ZERO, _SCRATCH1),
            jmptab=(table_symbol, len(instr.labels)),
        )

    # -- calls ------------------------------------------------------------------------

    def _live_across(self, index: int) -> list[int]:
        """Vregs in t-registers that must survive position ``index``."""
        return [
            vreg
            for vreg, (kind, reg) in self.vreg_loc.items()
            if kind == "reg" and reg in _T_POOL and self.last_use.get(vreg, -1) > index
        ]

    def _save_live_temps(self, index: int) -> list[tuple[int, int, int]]:
        # Note for link-time analysis: these saves/restores may move a
        # literal-loaded address through a spill slot.  That is safe for
        # OM's nullification: every *addressing* use of the value is
        # lituse-marked and gets rebased onto GP, leaving the spill
        # round-trip to shuffle a dead register.
        saved = []
        for vreg in self._live_across(index):
            reg = self.vreg_loc[vreg][1]
            slot = self._spill_slot_for(vreg)
            self.emit(Instruction.mem("stq", reg, Reg.SP, slot))
            saved.append((vreg, reg, slot))
        return saved

    def _restore_live_temps(self, saved: list[tuple[int, int, int]]) -> None:
        for __, reg, slot in saved:
            self.emit(Instruction.mem("ldq", reg, Reg.SP, slot))

    def _move_args(self, args: list[int], index: int) -> None:
        for pos, vreg in enumerate(args):
            loc = self.vreg_loc.get(vreg)
            if loc is None:
                raise self.error(f"call argument v{vreg} undefined")
            kind, value = loc
            target = _ARG_REGS[pos]
            if kind == "spill":
                self.emit(Instruction.mem("ldq", target, Reg.SP, value))
            elif value != int(target):
                self.emit(Instruction.opr("bis", value, value, target))
        for vreg in args:
            self._release(vreg, index)

    def _gen_call(
        self, callee: str, args: list[int], dst: int | None, index: int
    ) -> None:
        local = self.unit.is_local_call(callee)
        saved = self._save_live_temps(index)
        self._move_args(args, index)
        if local:
            target = (
                f"{callee}$postgp" if self.unit.uses_gp.get(callee) else callee
            )
            self.emit(Instruction.branch("bsr", Reg.RA, 0), branch=(target, 0))
        else:
            self.externs.add(callee)
            load = self.emit(
                Instruction.mem("ldq", Reg.PV, Reg.GP, 0), literal=(callee, 0)
            )
            self.emit(
                Instruction.jump("jsr", Reg.RA, Reg.PV),
                lituse=(load.uid, LituseKind.JSR),
                hint=callee,
            )
            self._emit_gp_reset()
        self._finish_call(dst, saved)

    def _gen_call_ptr(self, instr: ir.CallPtr, index: int) -> None:
        saved = self._save_live_temps(index)
        func_loc = self.vreg_loc.get(instr.func)
        if func_loc is None:
            raise self.error(f"indirect call target v{instr.func} undefined")
        kind, value = func_loc
        if kind == "spill":
            self.emit(Instruction.mem("ldq", Reg.PV, Reg.SP, value))
        else:
            self.emit(Instruction.opr("bis", value, value, Reg.PV))
        self._release(instr.func, index)
        self._move_args(instr.args, index)
        self.emit(Instruction.jump("jsr", Reg.RA, Reg.PV))
        if self.uses_gp:
            self._emit_gp_reset()
        self._finish_call(instr.dst, saved)

    def _emit_gp_reset(self) -> None:
        label = self._new_ret_label()
        self.emit_label(label, is_target=False)
        ldah = self.emit(
            Instruction.mem("ldah", Reg.GP, Reg.RA, 0), gpdisp_base=label
        )
        self.emit(Instruction.mem("lda", Reg.GP, Reg.GP, 0), gpdisp_pair=ldah.uid)

    def _finish_call(self, dst: int | None, saved: list[tuple[int, int, int]]) -> None:
        self._restore_live_temps(saved)
        if dst is not None:
            reg = self._alloc_treg(dst)
            self.emit(Instruction.opr("bis", Reg.V0, Reg.V0, reg))

    def _gen_pal(self, instr: ir.Pal, index: int) -> None:
        if instr.arg is not None:
            (src,) = self._use_regs([instr.arg], index)
            if src != Reg.A0:
                self.emit(Instruction.opr("bis", src, src, Reg.A0))
        self.emit(Instruction.pal(int(_PAL_FUNC[instr.kind])))
        if instr.dst is not None:
            reg = self._alloc_treg(instr.dst)
            self.emit(Instruction.opr("bis", Reg.V0, Reg.V0, reg))
