"""Semantic analysis: module symbol tables and well-formedness checks.

Produces a :class:`ModuleSyms` used by IR generation to classify every
name as a local, parameter, global variable, or function, and to check
call arity.  MiniC is a whole-word language, so "type checking" reduces
to structural rules (arrays are not assignable, address-of applies to
variables and functions, etc.), enforced in irgen where the structure
is at hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minicc import astnodes as ast
from repro.minicc.errors import CompileError
from repro.minicc.ir import PAL_BUILTINS


@dataclass
class FuncSig:
    name: str
    nparams: int
    defined: bool = False
    static: bool = False


@dataclass
class GlobalInfo:
    name: str
    array_size: int | None = None
    init: list[int] | None = None
    static: bool = False
    defined: bool = False  # False for extern declarations


@dataclass
class ModuleSyms:
    """Name environment of one translation unit."""

    functions: dict[str, FuncSig] = field(default_factory=dict)
    globals: dict[str, GlobalInfo] = field(default_factory=dict)


def analyze(module: ast.Module) -> ModuleSyms:
    """Build and validate the module symbol table."""
    syms = ModuleSyms()

    for proto in module.protos:
        _declare_function(syms, proto.name, len(proto.params), False, False, proto.line, module.name)
    for func in module.functions:
        _declare_function(
            syms, func.name, len(func.params), True, func.static, func.line, module.name
        )

    for var in module.globals:
        if var.name in syms.functions:
            raise CompileError(
                f"{var.name!r} declared as both variable and function",
                module.name,
                var.line,
            )
        existing = syms.globals.get(var.name)
        defined = not var.extern
        if existing is not None:
            if existing.defined and defined:
                raise CompileError(
                    f"duplicate definition of {var.name!r}", module.name, var.line
                )
            if not existing.defined and defined:
                existing.array_size = var.array_size
                existing.init = var.init
                existing.static = var.static
                existing.defined = True
            continue
        if var.init is not None and var.array_size is not None:
            if len(var.init) > var.array_size:
                raise CompileError(
                    f"too many initializers for {var.name!r}", module.name, var.line
                )
        syms.globals[var.name] = GlobalInfo(
            var.name, var.array_size, var.init, var.static, defined
        )

    for name in PAL_BUILTINS:
        if name in syms.functions or name in syms.globals:
            raise CompileError(f"{name!r} is a reserved builtin", module.name)
    return syms


def _declare_function(
    syms: ModuleSyms,
    name: str,
    nparams: int,
    defined: bool,
    static: bool,
    line: int,
    filename: str,
) -> None:
    if name in syms.globals:
        raise CompileError(
            f"{name!r} declared as both variable and function", filename, line
        )
    existing = syms.functions.get(name)
    if existing is None:
        syms.functions[name] = FuncSig(name, nparams, defined, static)
        return
    if existing.nparams != nparams:
        raise CompileError(
            f"conflicting parameter counts for {name!r}", filename, line
        )
    if existing.defined and defined:
        raise CompileError(f"duplicate definition of {name!r}", filename, line)
    existing.defined = existing.defined or defined
    existing.static = existing.static or static


def merge_modules(modules: list[ast.Module], name: str) -> ast.Module:
    """Concatenate translation units for compile-all mode.

    Duplicate extern declarations collapse; duplicate *definitions* are
    an error, as they would be at link time.
    """
    merged = ast.Module(name)
    seen_protos: set[str] = set()
    seen_globals: dict[str, ast.GlobalVar] = {}
    for module in modules:
        for proto in module.protos:
            if proto.name not in seen_protos:
                seen_protos.add(proto.name)
                merged.protos.append(proto)
        for var in module.globals:
            existing = seen_globals.get(var.name)
            if existing is None:
                seen_globals[var.name] = var
                merged.globals.append(var)
            elif not existing.extern and not var.extern:
                raise CompileError(f"duplicate definition of {var.name!r}", name, var.line)
            elif existing.extern and not var.extern:
                index = merged.globals.index(existing)
                merged.globals[index] = var
                seen_globals[var.name] = var
        merged.functions.extend(module.functions)
    analyze(merged)  # validates cross-module consistency
    return merged
