"""Three-address intermediate representation.

The IR is a flat, per-function instruction list over virtual registers
(plain ints).  Named locals are *not* virtual registers: they are
entities accessed via ``LoadLocal``/``StoreLocal`` so the code generator
can decide their placement (callee-saved register or stack slot).

Invariant relied on by the code generator's temporary allocator: every
virtual register's live range is the linear interval from its first
definition to its last use, and no virtual register is live around a
loop back edge.  ``irgen`` produces IR with this shape, and the
optimizer preserves it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Binary operators understood by the IR.
BIN_OPS = frozenset(
    [
        "add",
        "sub",
        "mul",
        "div",
        "rem",
        "and",
        "or",
        "xor",
        "sll",
        "srl",
        "sra",
        "s8add",  # a*8 + b, for array indexing
        "cmpeq",
        "cmpne",
        "cmplt",
        "cmple",
        "cmpult",
        "cmpule",
    ]
)

UN_OPS = frozenset(["neg", "not", "lognot"])

#: Builtins lowered to CALL_PAL instructions.
PAL_BUILTINS = {"__putint": "putint", "__putchar": "putchar", "__getticks": "getticks", "__halt": "halt"}


@dataclass(slots=True)
class Instr:
    line: int = 0


@dataclass(slots=True)
class Const(Instr):
    dst: int = 0
    value: int = 0


@dataclass(slots=True)
class Mov(Instr):
    dst: int = 0
    src: int = 0


@dataclass(slots=True)
class AddrGlobal(Instr):
    """dst := address of ``symbol + addend`` (variable or function)."""

    dst: int = 0
    symbol: str = ""
    addend: int = 0


@dataclass(slots=True)
class AddrLocal(Instr):
    """dst := address of a stack local (marks it address-taken)."""

    dst: int = 0
    local: int = 0


@dataclass(slots=True)
class LoadLocal(Instr):
    dst: int = 0
    local: int = 0


@dataclass(slots=True)
class StoreLocal(Instr):
    local: int = 0
    src: int = 0


@dataclass(slots=True)
class Load(Instr):
    """dst := mem[base + offset] (64-bit)."""

    dst: int = 0
    base: int = 0
    offset: int = 0


@dataclass(slots=True)
class Store(Instr):
    """mem[base + offset] := src."""

    src: int = 0
    base: int = 0
    offset: int = 0


@dataclass(slots=True)
class Un(Instr):
    op: str = ""
    dst: int = 0
    src: int = 0


@dataclass(slots=True)
class Bin(Instr):
    op: str = ""
    dst: int = 0
    a: int = 0
    b: int = 0


@dataclass(slots=True)
class BinImm(Instr):
    """Binary operation with a small immediate (operate-literal form)."""

    op: str = ""
    dst: int = 0
    a: int = 0
    imm: int = 0


@dataclass(slots=True)
class Call(Instr):
    """Direct call; ``dst`` is None for calls in void context."""

    dst: int | None = None
    callee: str = ""
    args: list[int] = field(default_factory=list)


@dataclass(slots=True)
class CallPtr(Instr):
    """Indirect call through a function pointer value."""

    dst: int | None = None
    func: int = 0
    args: list[int] = field(default_factory=list)


@dataclass(slots=True)
class Pal(Instr):
    """OS builtin: putint/putchar/getticks/halt."""

    kind: str = ""
    dst: int | None = None
    arg: int | None = None


@dataclass(slots=True)
class Label(Instr):
    name: str = ""


@dataclass(slots=True)
class Jump(Instr):
    target: str = ""


@dataclass(slots=True)
class CJump(Instr):
    """Branch to ``if_true`` when cond != 0, else to ``if_false``.

    The code generator exploits fallthrough when the next label matches.
    """

    cond: int = 0
    if_true: str = ""
    if_false: str = ""


@dataclass(slots=True)
class JumpTable(Instr):
    """Computed jump: ``index`` is already normalized and bounds-checked
    to [0, len(labels))."""

    index: int = 0
    labels: list[str] = field(default_factory=list)


@dataclass(slots=True)
class Ret(Instr):
    src: int | None = None


@dataclass(slots=True)
class IRLocal:
    """A named local variable or stack array."""

    name: str
    size: int = 8  # bytes
    is_array: bool = False
    addr_taken: bool = False
    weight: float = 0.0  # use count, loop-depth weighted


@dataclass
class IRFunc:
    name: str
    params: list[str] = field(default_factory=list)
    locals: list[IRLocal] = field(default_factory=list)
    body: list[Instr] = field(default_factory=list)
    exported: bool = True
    next_vreg: int = 0
    next_label: int = 0

    def new_vreg(self) -> int:
        self.next_vreg += 1
        return self.next_vreg - 1

    def new_label(self, hint: str = "L") -> str:
        self.next_label += 1
        return f"{self.name}${hint}{self.next_label}"


@dataclass
class IRGlobal:
    """A module-level variable after semantic analysis.

    ``init`` entries are quadword values; a ``str`` entry names a symbol
    whose address fills that slot (emitted as a REFQUAD relocation —
    how vtables carry method addresses through the linker and OM).
    """

    name: str
    size: int = 8
    is_array: bool = False
    init: list[int | str] | None = None
    exported: bool = True


@dataclass
class IRModule:
    name: str
    globals: list[IRGlobal] = field(default_factory=list)
    functions: list[IRFunc] = field(default_factory=list)
    #: Declared byte sizes of every known data symbol (including
    #: externs) — used by the optimistic small-data mode (-G analog).
    global_sizes: dict[str, int] = field(default_factory=dict)


def defs_of(instr: Instr) -> tuple[int, ...]:
    """Virtual registers defined by ``instr``."""
    if isinstance(
        instr, (Const, Mov, AddrGlobal, AddrLocal, LoadLocal, Load, Un, Bin, BinImm)
    ):
        return (instr.dst,)
    if isinstance(instr, (Call, CallPtr, Pal)) and instr.dst is not None:
        return (instr.dst,)
    return ()


def uses_of(instr: Instr) -> tuple[int, ...]:
    """Virtual registers used by ``instr``."""
    if isinstance(instr, Mov):
        return (instr.src,)
    if isinstance(instr, StoreLocal):
        return (instr.src,)
    if isinstance(instr, Load):
        return (instr.base,)
    if isinstance(instr, Store):
        return (instr.src, instr.base)
    if isinstance(instr, Un):
        return (instr.src,)
    if isinstance(instr, Bin):
        return (instr.a, instr.b)
    if isinstance(instr, BinImm):
        return (instr.a,)
    if isinstance(instr, Call):
        return tuple(instr.args)
    if isinstance(instr, CallPtr):
        return (instr.func, *instr.args)
    if isinstance(instr, Pal):
        return (instr.arg,) if instr.arg is not None else ()
    if isinstance(instr, CJump):
        return (instr.cond,)
    if isinstance(instr, JumpTable):
        return (instr.index,)
    if isinstance(instr, Ret):
        return (instr.src,) if instr.src is not None else ()
    return ()


def format_function(func: IRFunc) -> str:
    """Human-readable IR dump, for tests and debugging."""
    lines = [f"func {func.name}({', '.join(func.params)}):"]
    for instr in func.body:
        if isinstance(instr, Label):
            lines.append(f"{instr.name}:")
        else:
            lines.append(f"    {instr}")
    return "\n".join(lines)
