"""Machine code with symbolic annotations — the scheduler's substrate.

The code generator produces, per procedure, a list of :class:`MLabel`
and :class:`MInstr` items.  Relocation requests reference other items by
unique id (not list index) so the pipeline scheduler can reorder items
freely; the driver maps ids to assembler item indices at emission time.

Label semantics matter for scheduling:

* ``is_target`` labels are control-flow join points — basic block
  boundaries that instructions may not cross;
* marker labels (``is_target=False``) only *name a point* (procedure
  entry, call return points used as GPDISP bases); instructions may be
  scheduled past them, which is exactly how compile-time scheduling ends
  up moving GP-setup code away from its logical position (the effect the
  paper's OM-full undoes).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.isa.asm import Assembler
from repro.isa.instruction import Instruction
from repro.objfile.relocations import LituseKind

_uid_counter = itertools.count(1)


def next_uid() -> int:
    return next(_uid_counter)


def ensure_uid_floor(floor: int) -> None:
    """Advance the uid counter past ``floor``.

    Processes that receive items created elsewhere (the partitioned OM
    driver ships pickled modules to shard workers) must raise their own
    counter above every received uid before creating new items, or a
    fresh uid could collide with a shipped one inside the same
    procedure and corrupt the uid-keyed links (lituse, gpdisp pairs).
    """
    global _uid_counter
    current = next(_uid_counter)
    _uid_counter = itertools.count(max(current, floor) + 1)


@dataclass
class MLabel:
    name: str
    is_target: bool = True
    align: int = 0  # quadword-align this label's address when nonzero


@dataclass
class MInstr:
    """One instruction plus relocation requests (see Assembler.emit)."""

    instr: Instruction
    uid: int = field(default_factory=next_uid)
    literal: tuple[str, int] | None = None
    lit_escaped: bool = False  # literal value escapes beyond load/store bases
    lituse: tuple[int, LituseKind] | None = None  # (uid of literal load, kind)
    gpdisp_base: str | None = None
    gpdisp_pair: int | None = None  # uid of the paired ldah
    branch: tuple[str, int] | None = None
    hint: str | None = None
    jmptab: tuple[str, int] | None = None
    # OM-produced GP-relative reference: (kind, symbol, addend, group)
    # where kind is "gprel16", "gprelhigh", or "gprellow".
    gprel: tuple[str, str, int, int] | None = None


MItem = MLabel | MInstr


@dataclass
class MProc:
    """One generated procedure, ready for scheduling and assembly."""

    name: str
    items: list[MItem] = field(default_factory=list)
    exported: bool = True
    uses_gp: bool = True
    frame_size: int = 0


def emit_proc(asm: Assembler, proc: MProc) -> None:
    """Feed a procedure into the assembler, resolving uid references."""
    asm.begin_proc(
        proc.name,
        exported=proc.exported,
        uses_gp=proc.uses_gp,
        frame_size=proc.frame_size,
    )
    uid_to_index: dict[int, int] = {}
    for item in proc.items:
        if isinstance(item, MLabel):
            if item.name != proc.name:  # entry label emitted by begin_proc
                asm.label(item.name)
            continue
        kwargs: dict = {}
        if item.literal is not None:
            kwargs["literal"] = item.literal
            kwargs["lit_escaped"] = item.lit_escaped
        if item.lituse is not None:
            load_uid, kind = item.lituse
            kwargs["lituse"] = (uid_to_index[load_uid], kind)
        if item.gpdisp_base is not None:
            kwargs["gpdisp_base"] = item.gpdisp_base
        if item.gpdisp_pair is not None:
            kwargs["gpdisp_pair"] = uid_to_index[item.gpdisp_pair]
        if item.branch is not None:
            kwargs["branch"] = item.branch
        if item.hint is not None:
            kwargs["hint"] = item.hint
        if item.jmptab is not None:
            kwargs["jmptab"] = item.jmptab
        if item.gprel is not None:
            kwargs["gprel"] = item.gprel
        uid_to_index[item.uid] = asm.emit(item.instr, **kwargs)
    asm.end_proc()
