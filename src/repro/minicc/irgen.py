"""Lowering from AST to IR.

Implements MiniC evaluation semantics: 64-bit two's-complement
arithmetic, arrays decaying to addresses, 8-byte-scaled indexing,
short-circuit ``&&``/``||``, C-style ``switch`` fallthrough.  Comparisons
are canonicalized to the machine's cmpeq/cmplt/cmple/cmpult/cmpule
repertoire; loops are rotated so each iteration executes one backward
conditional branch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minicc import astnodes as ast
from repro.minicc import ir
from repro.minicc.errors import CompileError
from repro.minicc.sema import ModuleSyms, analyze


@dataclass
class _LoopCtx:
    break_label: str
    continue_label: str | None


class FuncLowerer:
    """Lowers one function definition to an :class:`ir.IRFunc`."""

    def __init__(
        self,
        syms: ModuleSyms,
        func: ast.FuncDef,
        filename: str,
        string_pool: dict[str, str] | None = None,
    ):
        self.syms = syms
        self.string_pool = string_pool if string_pool is not None else {}
        self.filename = filename
        self.func = ir.IRFunc(
            func.name, list(func.params), exported=not func.static
        )
        self.scopes: list[dict[str, int]] = [{}]
        self.loops: list[_LoopCtx] = []
        self.loop_depth = 0
        self.ast_func = func
        for param in func.params:
            self._declare_local(param, func.line)

    # -- plumbing -----------------------------------------------------------

    def emit(self, instr: ir.Instr) -> ir.Instr:
        self.func.body.append(instr)
        return instr

    def error(self, message: str, line: int) -> CompileError:
        return CompileError(message, self.filename, line)

    def _declare_local(
        self, name: str, line: int, size: int = 8, is_array: bool = False
    ) -> int:
        scope = self.scopes[-1]
        if name in scope:
            raise self.error(f"duplicate local {name!r}", line)
        index = len(self.func.locals)
        self.func.locals.append(ir.IRLocal(name, size, is_array))
        scope[name] = index
        return index

    def _lookup_local(self, name: str) -> int | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _weight(self) -> float:
        return float(8 ** min(self.loop_depth, 3))

    def _touch(self, local: int) -> None:
        self.func.locals[local].weight += self._weight()

    # -- lowering entry point --------------------------------------------------

    def lower(self) -> ir.IRFunc:
        self.gen_stmt(self.ast_func.body)
        body = self.func.body
        if not body or not isinstance(body[-1], ir.Ret):
            self.emit(ir.Ret(self.ast_func.line, None))
        return self.func

    # -- statements --------------------------------------------------------------

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.scopes.append({})
            for inner in stmt.body:
                self.gen_stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, ast.ExprStmt):
            self.gen_expr(stmt.expr)
        elif isinstance(stmt, ast.LocalDecl):
            self._gen_local_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, ast.Return):
            value = self.gen_expr(stmt.value) if stmt.value is not None else None
            self.emit(ir.Ret(stmt.line, value))
        elif isinstance(stmt, ast.Break):
            if not self.loops:
                raise self.error("break outside loop or switch", stmt.line)
            self.emit(ir.Jump(stmt.line, self.loops[-1].break_label))
        elif isinstance(stmt, ast.Continue):
            target = next(
                (ctx.continue_label for ctx in reversed(self.loops) if ctx.continue_label),
                None,
            )
            if target is None:
                raise self.error("continue outside loop", stmt.line)
            self.emit(ir.Jump(stmt.line, target))
        else:  # pragma: no cover - parser produces no other nodes
            raise self.error(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _gen_local_decl(self, stmt: ast.LocalDecl) -> None:
        if stmt.array_size is not None:
            if stmt.array_size <= 0:
                raise self.error("array size must be positive", stmt.line)
            index = self._declare_local(
                stmt.name, stmt.line, size=8 * stmt.array_size, is_array=True
            )
            __ = index
            return
        index = self._declare_local(stmt.name, stmt.line)
        if stmt.init is not None:
            value = self.gen_expr(stmt.init)
            self._touch(index)
            self.emit(ir.StoreLocal(stmt.line, index, value))

    def _gen_if(self, stmt: ast.If) -> None:
        then_label = self.func.new_label("then")
        end_label = self.func.new_label("endif")
        else_label = self.func.new_label("else") if stmt.other else end_label
        self.gen_cond(stmt.cond, then_label, else_label)
        self.emit(ir.Label(stmt.line, then_label))
        self.gen_stmt(stmt.then)
        if stmt.other is not None:
            self.emit(ir.Jump(stmt.line, end_label))
            self.emit(ir.Label(stmt.line, else_label))
            self.gen_stmt(stmt.other)
        self.emit(ir.Label(stmt.line, end_label))

    def _gen_while(self, stmt: ast.While) -> None:
        body_label = self.func.new_label("loop")
        test_label = self.func.new_label("test")
        end_label = self.func.new_label("endloop")
        self.emit(ir.Jump(stmt.line, test_label))
        self.emit(ir.Label(stmt.line, body_label))
        self.loops.append(_LoopCtx(end_label, test_label))
        self.loop_depth += 1
        self.gen_stmt(stmt.body)
        self.loop_depth -= 1
        self.loops.pop()
        self.emit(ir.Label(stmt.line, test_label))
        self.gen_cond(stmt.cond, body_label, end_label)
        self.emit(ir.Label(stmt.line, end_label))

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        body_label = self.func.new_label("loop")
        test_label = self.func.new_label("test")
        end_label = self.func.new_label("endloop")
        self.emit(ir.Label(stmt.line, body_label))
        self.loops.append(_LoopCtx(end_label, test_label))
        self.loop_depth += 1
        self.gen_stmt(stmt.body)
        self.loop_depth -= 1
        self.loops.pop()
        self.emit(ir.Label(stmt.line, test_label))
        self.gen_cond(stmt.cond, body_label, end_label)
        self.emit(ir.Label(stmt.line, end_label))

    def _gen_for(self, stmt: ast.For) -> None:
        body_label = self.func.new_label("loop")
        step_label = self.func.new_label("step")
        test_label = self.func.new_label("test")
        end_label = self.func.new_label("endloop")
        if stmt.init is not None:
            self.gen_expr(stmt.init)
        self.emit(ir.Jump(stmt.line, test_label))
        self.emit(ir.Label(stmt.line, body_label))
        self.loops.append(_LoopCtx(end_label, step_label))
        self.loop_depth += 1
        self.gen_stmt(stmt.body)
        self.loop_depth -= 1
        self.loops.pop()
        self.emit(ir.Label(stmt.line, step_label))
        if stmt.step is not None:
            self.gen_expr(stmt.step)
        self.emit(ir.Label(stmt.line, test_label))
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body_label, end_label)
        else:
            self.emit(ir.Jump(stmt.line, body_label))
        self.emit(ir.Label(stmt.line, end_label))

    def _gen_switch(self, stmt: ast.Switch) -> None:
        end_label = self.func.new_label("endsw")
        default_body = self.func.new_label("swdef") if stmt.default is not None else end_label
        case_labels = {value: self.func.new_label("case") for value, _ in stmt.cases}
        value = self.gen_expr(stmt.value)

        values = sorted(case_labels)
        if self._switch_is_dense(values):
            low, high = values[0], values[-1]
            labels = [
                case_labels.get(v, default_body) for v in range(low, high + 1)
            ]
            index = self.func.new_vreg()
            if low:
                base = self.func.new_vreg()
                self.emit(ir.Const(stmt.line, base, low))
                self.emit(ir.Bin(stmt.line, "sub", index, value, base))
            else:
                self.emit(ir.Mov(stmt.line, index, value))
            bound = self.func.new_vreg()
            self.emit(ir.Const(stmt.line, bound, len(labels)))
            in_range = self.func.new_vreg()
            self.emit(ir.Bin(stmt.line, "cmpult", in_range, index, bound))
            table_label = self.func.new_label("swtab")
            self.emit(ir.CJump(stmt.line, in_range, table_label, default_body))
            self.emit(ir.Label(stmt.line, table_label))
            self.emit(ir.JumpTable(stmt.line, index, labels))
        else:
            for case_value in values:
                probe = self.func.new_vreg()
                self.emit(ir.Const(stmt.line, probe, case_value))
                test = self.func.new_vreg()
                self.emit(ir.Bin(stmt.line, "cmpeq", test, value, probe))
                next_label = self.func.new_label("swnext")
                self.emit(ir.CJump(stmt.line, test, case_labels[case_value], next_label))
                self.emit(ir.Label(stmt.line, next_label))
            self.emit(ir.Jump(stmt.line, default_body))

        # Bodies, with C fallthrough semantics; break jumps to end.
        self.loops.append(_LoopCtx(end_label, None))
        for case_value, body in stmt.cases:
            self.emit(ir.Label(stmt.line, case_labels[case_value]))
            for inner in body:
                self.gen_stmt(inner)
        if stmt.default is not None:
            self.emit(ir.Label(stmt.line, default_body))
            for inner in stmt.default:
                self.gen_stmt(inner)
        self.loops.pop()
        self.emit(ir.Label(stmt.line, end_label))

    @staticmethod
    def _switch_is_dense(values: list[int]) -> bool:
        if len(values) < 4:
            return False
        span = values[-1] - values[0] + 1
        return span <= max(3 * len(values), 16) and span <= 512

    # -- conditions ------------------------------------------------------------

    _COND_SWAP = {"==": False, "!=": True}
    _COND_CMP = {
        "<": ("cmplt", False),
        "<=": ("cmple", False),
        ">": ("cmplt", True),
        ">=": ("cmple", True),
    }

    def gen_cond(self, expr: ast.Expr, if_true: str, if_false: str) -> None:
        """Emit a branch to ``if_true``/``if_false`` on ``expr``'s truth."""
        if isinstance(expr, ast.Num):
            self.emit(ir.Jump(expr.line, if_true if expr.value else if_false))
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_cond(expr.operand, if_false, if_true)
            return
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                mid = self.func.new_label("and")
                self.gen_cond(expr.left, mid, if_false)
                self.emit(ir.Label(expr.line, mid))
                self.gen_cond(expr.right, if_true, if_false)
                return
            if expr.op == "||":
                mid = self.func.new_label("or")
                self.gen_cond(expr.left, if_true, mid)
                self.emit(ir.Label(expr.line, mid))
                self.gen_cond(expr.right, if_true, if_false)
                return
            if expr.op in ("==", "!="):
                test = self._emit_bin("cmpeq", expr)
                if expr.op == "!=":
                    if_true, if_false = if_false, if_true
                self.emit(ir.CJump(expr.line, test, if_true, if_false))
                return
            if expr.op in self._COND_CMP:
                op, swapped = self._COND_CMP[expr.op]
                left, right = (expr.right, expr.left) if swapped else (expr.left, expr.right)
                a = self.gen_expr(left)
                b = self.gen_expr(right)
                test = self.func.new_vreg()
                self.emit(ir.Bin(expr.line, op, test, a, b))
                self.emit(ir.CJump(expr.line, test, if_true, if_false))
                return
        value = self.gen_expr(expr)
        self.emit(ir.CJump(expr.line, value, if_true, if_false))

    def _emit_bin(self, op: str, expr: ast.Binary) -> int:
        a = self.gen_expr(expr.left)
        b = self.gen_expr(expr.right)
        dst = self.func.new_vreg()
        self.emit(ir.Bin(expr.line, op, dst, a, b))
        return dst

    # -- expressions ---------------------------------------------------------------

    _BIN_MAP = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "/": "div",
        "%": "rem",
        "&": "and",
        "|": "or",
        "^": "xor",
        "<<": "sll",
        ">>": "sra",
    }

    def gen_expr(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Num):
            dst = self.func.new_vreg()
            self.emit(ir.Const(expr.line, dst, expr.value))
            return dst
        if isinstance(expr, ast.Var):
            return self._gen_var_read(expr)
        if isinstance(expr, ast.Str):
            symbol = self.string_pool.get(expr.value)
            if symbol is None:
                symbol = f"$str{len(self.string_pool)}"
                self.string_pool[expr.value] = symbol
            dst = self.func.new_vreg()
            self.emit(ir.AddrGlobal(expr.line, dst, symbol))
            return dst
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self._gen_incdec(expr)
        if isinstance(expr, ast.Cond):
            return self._gen_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr, want_result=True)
        if isinstance(expr, ast.Index):
            base, offset = self._gen_index_addr(expr)
            dst = self.func.new_vreg()
            self.emit(ir.Load(expr.line, dst, base, offset))
            return dst
        raise self.error(f"unhandled expression {type(expr).__name__}", expr.line)

    def _gen_var_read(self, expr: ast.Var) -> int:
        name = expr.name
        local = self._lookup_local(name)
        dst = self.func.new_vreg()
        if local is not None:
            if self.func.locals[local].is_array:
                self.emit(ir.AddrLocal(expr.line, dst, local))
            else:
                self._touch(local)
                self.emit(ir.LoadLocal(expr.line, dst, local))
            return dst
        info = self.syms.globals.get(name)
        if info is not None:
            addr = self.func.new_vreg()
            self.emit(ir.AddrGlobal(expr.line, addr, name))
            if info.array_size is not None:
                return addr
            self.emit(ir.Load(expr.line, dst, addr, 0))
            return dst
        if name in self.syms.functions:
            self.emit(ir.AddrGlobal(expr.line, dst, name))
            return dst
        raise self.error(f"undeclared name {name!r}", expr.line)

    def _gen_unary(self, expr: ast.Unary) -> int:
        if expr.op == "&":
            return self._gen_addr_of(expr.operand, expr.line)
        if expr.op == "*":
            base = self.gen_expr(expr.operand)
            dst = self.func.new_vreg()
            self.emit(ir.Load(expr.line, dst, base, 0))
            return dst
        src = self.gen_expr(expr.operand)
        dst = self.func.new_vreg()
        op = {"-": "neg", "~": "not", "!": "lognot"}[expr.op]
        self.emit(ir.Un(expr.line, op, dst, src))
        return dst

    def _gen_addr_of(self, target: ast.Expr, line: int) -> int:
        if isinstance(target, ast.Var):
            local = self._lookup_local(target.name)
            dst = self.func.new_vreg()
            if local is not None:
                self.func.locals[local].addr_taken = True
                self.emit(ir.AddrLocal(line, dst, local))
                return dst
            if target.name in self.syms.globals or target.name in self.syms.functions:
                self.emit(ir.AddrGlobal(line, dst, target.name))
                return dst
            raise self.error(f"undeclared name {target.name!r}", line)
        if isinstance(target, ast.Index):
            base, offset = self._gen_index_addr(target)
            if offset == 0:
                return base
            dst = self.func.new_vreg()
            off = self.func.new_vreg()
            self.emit(ir.Const(line, off, offset))
            self.emit(ir.Bin(line, "add", dst, base, off))
            return dst
        if isinstance(target, ast.Unary) and target.op == "*":
            return self.gen_expr(target.operand)
        raise self.error("cannot take the address of this expression", line)

    def _gen_binary(self, expr: ast.Binary) -> int:
        op = expr.op
        if op in ("&&", "||"):
            return self._materialize_cond(expr)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if op == "==":
                return self._emit_bin("cmpeq", expr)
            if op == "!=":
                test = self._emit_bin("cmpeq", expr)
                dst = self.func.new_vreg()
                self.emit(ir.Un(expr.line, "lognot", dst, test))
                return dst
            cmp_op, swapped = self._COND_CMP[op]
            left, right = (expr.right, expr.left) if swapped else (expr.left, expr.right)
            a = self.gen_expr(left)
            b = self.gen_expr(right)
            dst = self.func.new_vreg()
            self.emit(ir.Bin(expr.line, cmp_op, dst, a, b))
            return dst
        return self._emit_bin(self._BIN_MAP[op], expr)

    def _materialize_cond(self, expr: ast.Expr) -> int:
        dst = self.func.new_vreg()
        true_label = self.func.new_label("ctrue")
        false_label = self.func.new_label("cfalse")
        end_label = self.func.new_label("cend")
        self.gen_cond(expr, true_label, false_label)
        self.emit(ir.Label(expr.line, true_label))
        self.emit(ir.Const(expr.line, dst, 1))
        self.emit(ir.Jump(expr.line, end_label))
        self.emit(ir.Label(expr.line, false_label))
        self.emit(ir.Const(expr.line, dst, 0))
        self.emit(ir.Label(expr.line, end_label))
        return dst

    def _gen_ternary(self, expr: ast.Cond) -> int:
        dst = self.func.new_vreg()
        then_label = self.func.new_label("tthen")
        else_label = self.func.new_label("telse")
        end_label = self.func.new_label("tend")
        self.gen_cond(expr.cond, then_label, else_label)
        self.emit(ir.Label(expr.line, then_label))
        then_value = self.gen_expr(expr.then)
        self.emit(ir.Mov(expr.line, dst, then_value))
        self.emit(ir.Jump(expr.line, end_label))
        self.emit(ir.Label(expr.line, else_label))
        else_value = self.gen_expr(expr.other)
        self.emit(ir.Mov(expr.line, dst, else_value))
        self.emit(ir.Label(expr.line, end_label))
        return dst

    # -- lvalues, assignment -----------------------------------------------------

    def _gen_index_addr(self, expr: ast.Index) -> tuple[int, int]:
        """Return (base_vreg, byte_offset) for ``base[index]``."""
        base = self.gen_expr(expr.base)
        if isinstance(expr.index, ast.Num) and -4096 <= expr.index.value < 4096:
            return base, 8 * expr.index.value
        index = self.gen_expr(expr.index)
        addr = self.func.new_vreg()
        self.emit(ir.Bin(expr.line, "s8add", addr, index, base))
        return addr, 0

    def _gen_assign(self, expr: ast.Assign) -> int:
        target = expr.target
        line = expr.line
        compound = expr.op != "="
        bin_op = self._BIN_MAP[expr.op[:-1]] if compound else None

        if isinstance(target, ast.Var):
            name = target.name
            local = self._lookup_local(name)
            if local is not None:
                if self.func.locals[local].is_array:
                    raise self.error("cannot assign to an array", line)
                if compound:
                    current = self.func.new_vreg()
                    self._touch(local)
                    self.emit(ir.LoadLocal(line, current, local))
                    rhs = self.gen_expr(expr.value)
                    value = self.func.new_vreg()
                    self.emit(ir.Bin(line, bin_op, value, current, rhs))
                else:
                    value = self.gen_expr(expr.value)
                self._touch(local)
                self.emit(ir.StoreLocal(line, local, value))
                return value
            info = self.syms.globals.get(name)
            if info is None:
                raise self.error(f"cannot assign to {name!r}", line)
            if info.array_size is not None:
                raise self.error("cannot assign to an array", line)
            addr = self.func.new_vreg()
            self.emit(ir.AddrGlobal(line, addr, name))
            if compound:
                current = self.func.new_vreg()
                self.emit(ir.Load(line, current, addr, 0))
                rhs = self.gen_expr(expr.value)
                value = self.func.new_vreg()
                self.emit(ir.Bin(line, bin_op, value, current, rhs))
            else:
                value = self.gen_expr(expr.value)
            self.emit(ir.Store(line, value, addr, 0))
            return value

        # Memory lvalues: a[i] and *p.
        if isinstance(target, ast.Index):
            base, offset = self._gen_index_addr(target)
        elif isinstance(target, ast.Unary) and target.op == "*":
            base, offset = self.gen_expr(target.operand), 0
        else:
            raise self.error("not an assignable expression", line)
        if compound:
            current = self.func.new_vreg()
            self.emit(ir.Load(line, current, base, offset))
            rhs = self.gen_expr(expr.value)
            value = self.func.new_vreg()
            self.emit(ir.Bin(line, bin_op, value, current, rhs))
        else:
            value = self.gen_expr(expr.value)
        self.emit(ir.Store(line, value, base, offset))
        return value

    def _gen_incdec(self, expr: ast.IncDec) -> int:
        delta = ast.Num(expr.line, 1)
        op = "+=" if expr.op == "++" else "-="
        assign = ast.Assign(expr.line, op, expr.target, delta)
        if expr.is_prefix:
            return self._gen_assign(assign)
        # Postfix: capture the old value first.
        old = self.gen_expr(expr.target)
        self._gen_assign(assign)
        return old

    # -- calls ------------------------------------------------------------------

    def _gen_call(self, expr: ast.Call, want_result: bool) -> int:
        line = expr.line
        callee = expr.callee
        if isinstance(callee, ast.Var) and self._lookup_local(callee.name) is None:
            name = callee.name
            if name in ir.PAL_BUILTINS:
                return self._gen_pal(name, expr)
            sig = self.syms.functions.get(name)
            if sig is not None:
                if len(expr.args) != sig.nparams:
                    raise self.error(
                        f"{name!r} takes {sig.nparams} arguments,"
                        f" {len(expr.args)} given",
                        line,
                    )
                args = [self.gen_expr(arg) for arg in expr.args]
                dst = self.func.new_vreg() if want_result else None
                self.emit(ir.Call(line, dst, name, args))
                return dst if dst is not None else -1
            if name not in self.syms.globals:
                raise self.error(f"call to undeclared function {name!r}", line)
        func = self.gen_expr(callee)
        args = [self.gen_expr(arg) for arg in expr.args]
        dst = self.func.new_vreg() if want_result else None
        self.emit(ir.CallPtr(line, dst, func, args))
        return dst if dst is not None else -1

    def _gen_pal(self, name: str, expr: ast.Call) -> int:
        kind = ir.PAL_BUILTINS[name]
        want_arg = kind in ("putint", "putchar")
        if want_arg != bool(expr.args) or len(expr.args) > 1:
            raise self.error(f"wrong arguments for builtin {name}", expr.line)
        arg = self.gen_expr(expr.args[0]) if expr.args else None
        dst = self.func.new_vreg() if kind == "getticks" else None
        self.emit(ir.Pal(expr.line, kind, dst, arg))
        return dst if dst is not None else -1


def lower_module(module: ast.Module, syms: ModuleSyms | None = None) -> ir.IRModule:
    """Lower a parsed module to IR (running semantic analysis if needed)."""
    syms = syms or analyze(module)
    out = ir.IRModule(module.name)
    for name, info in syms.globals.items():
        out.global_sizes[name] = 8 * (info.array_size or 1)
    for name, info in syms.globals.items():
        if not info.defined:
            continue
        size = 8 * (info.array_size or 1)
        out.globals.append(
            ir.IRGlobal(name, size, info.array_size is not None, info.init, not info.static)
        )
    string_pool: dict[str, str] = {}
    for func in module.functions:
        out.functions.append(
            FuncLowerer(syms, func, module.name, string_pool).lower()
        )
    for text, symbol in string_pool.items():
        words = [ord(ch) for ch in text] + [0]
        out.globals.append(
            ir.IRGlobal(symbol, 8 * len(words), True, words, exported=False)
        )
        out.global_sizes[symbol] = 8 * len(words)
    return out
