"""Procedure inlining — the interprocedural half of compile-all mode.

The paper's compile-all versions were built with DEC's interprocedural
optimization, whose chief effect (footnote 5) is "the inlining of user
routines; if a multiply-inlined user routine contains a library call
then that call will be replicated".  This pass reproduces that: small
user routines are inlined at direct call sites, replicating any library
calls their bodies contain; calls to pre-compiled library routines are
untouched because their bodies are simply not in the unit.
"""

from __future__ import annotations

from repro.minicc import ir

#: Callee body size (IR instructions) above which we do not inline.
#: Medium-sized routines stay as (intra-unit-optimized) calls, as real
#: interprocedural compilers keep them.
MAX_INLINE_SIZE = 14

#: Caller body size above which we stop growing it.
MAX_CALLER_SIZE = 400

#: Inline passes (bounded cascade).
PASSES = 2


def inline_module(module: ir.IRModule) -> int:
    """Inline eligible direct calls; returns the number of sites inlined."""
    total = 0
    for _ in range(PASSES):
        templates = {
            func.name: func
            for func in module.functions
            if _is_candidate(func)
        }
        round_count = 0
        for func in module.functions:
            round_count += _inline_into(func, templates)
        total += round_count
        if not round_count:
            break
    return total


def _is_candidate(func: ir.IRFunc) -> bool:
    if len(func.body) > MAX_INLINE_SIZE:
        return False
    for instr in func.body:
        if isinstance(instr, ir.Call) and instr.callee == func.name:
            return False  # directly recursive
    return True


def _inline_into(caller: ir.IRFunc, templates: dict[str, ir.IRFunc]) -> int:
    count = 0
    body: list[ir.Instr] = []
    for instr in caller.body:
        if (
            isinstance(instr, ir.Call)
            and instr.callee != caller.name
            and instr.callee in templates
            and len(caller.body) + len(body) < MAX_CALLER_SIZE
        ):
            body.extend(_splice(caller, templates[instr.callee], instr))
            count += 1
        else:
            body.append(instr)
    caller.body = body
    return count


def _splice(caller: ir.IRFunc, callee: ir.IRFunc, call: ir.Call) -> list[ir.Instr]:
    """Expand one call site into a renamed copy of the callee body."""
    vreg_base = caller.next_vreg
    caller.next_vreg += callee.next_vreg
    local_base = len(caller.locals)
    for local in callee.locals:
        caller.locals.append(
            ir.IRLocal(
                f"{callee.name}${local.name}",
                local.size,
                local.is_array,
                local.addr_taken,
                local.weight,
            )
        )
    caller.next_label += 1
    prefix = f"{caller.name}$inl{caller.next_label}$"
    end_label = f"{prefix}end"

    out: list[ir.Instr] = []
    for pindex, arg in enumerate(call.args):
        out.append(ir.StoreLocal(call.line, local_base + pindex, arg))

    def vreg(reg: int) -> int:
        return vreg_base + reg

    for instr in callee.body:
        if isinstance(instr, ir.Ret):
            # A return becomes: assign the result (if wanted), jump to end.
            line = instr.line
            if call.dst is not None:
                if instr.src is not None:
                    out.append(ir.Mov(line, call.dst, vreg(instr.src)))
                else:
                    out.append(ir.Const(line, call.dst, 0))
            out.append(ir.Jump(line, end_label))
            continue
        out.append(_copy_instr(instr, vreg, local_base, prefix))
    out.append(ir.Label(call.line, end_label))
    return out


def _copy_instr(instr: ir.Instr, vreg, local_base: int, prefix: str) -> ir.Instr:
    line = instr.line
    if isinstance(instr, ir.Const):
        return ir.Const(line, vreg(instr.dst), instr.value)
    if isinstance(instr, ir.Mov):
        return ir.Mov(line, vreg(instr.dst), vreg(instr.src))
    if isinstance(instr, ir.AddrGlobal):
        return ir.AddrGlobal(line, vreg(instr.dst), instr.symbol, instr.addend)
    if isinstance(instr, ir.AddrLocal):
        return ir.AddrLocal(line, vreg(instr.dst), local_base + instr.local)
    if isinstance(instr, ir.LoadLocal):
        return ir.LoadLocal(line, vreg(instr.dst), local_base + instr.local)
    if isinstance(instr, ir.StoreLocal):
        return ir.StoreLocal(line, local_base + instr.local, vreg(instr.src))
    if isinstance(instr, ir.Load):
        return ir.Load(line, vreg(instr.dst), vreg(instr.base), instr.offset)
    if isinstance(instr, ir.Store):
        return ir.Store(line, vreg(instr.src), vreg(instr.base), instr.offset)
    if isinstance(instr, ir.Un):
        return ir.Un(line, instr.op, vreg(instr.dst), vreg(instr.src))
    if isinstance(instr, ir.Bin):
        return ir.Bin(line, instr.op, vreg(instr.dst), vreg(instr.a), vreg(instr.b))
    if isinstance(instr, ir.BinImm):
        return ir.BinImm(line, instr.op, vreg(instr.dst), vreg(instr.a), instr.imm)
    if isinstance(instr, ir.Call):
        dst = vreg(instr.dst) if instr.dst is not None else None
        return ir.Call(line, dst, instr.callee, [vreg(a) for a in instr.args])
    if isinstance(instr, ir.CallPtr):
        dst = vreg(instr.dst) if instr.dst is not None else None
        return ir.CallPtr(line, dst, vreg(instr.func), [vreg(a) for a in instr.args])
    if isinstance(instr, ir.Pal):
        dst = vreg(instr.dst) if instr.dst is not None else None
        arg = vreg(instr.arg) if instr.arg is not None else None
        return ir.Pal(line, instr.kind, dst, arg)
    if isinstance(instr, ir.Label):
        return ir.Label(line, prefix + instr.name)
    if isinstance(instr, ir.Jump):
        return ir.Jump(line, prefix + instr.target)
    if isinstance(instr, ir.CJump):
        return ir.CJump(
            line, vreg(instr.cond), prefix + instr.if_true, prefix + instr.if_false
        )
    if isinstance(instr, ir.JumpTable):
        return ir.JumpTable(
            line, vreg(instr.index), [prefix + label for label in instr.labels]
        )
    raise TypeError(f"cannot inline {type(instr).__name__}")  # pragma: no cover
