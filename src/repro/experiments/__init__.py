"""Experiment harness: regenerates every table and figure of the paper.

Each ``figN_rows`` function produces the same rows/series the paper
reports (per-program values plus the unweighted arithmetic mean the
paper's bar-chart keys show); ``python -m repro.experiments <figure>``
prints them.  EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments.build import (
    VARIANTS,
    build_objects,
    configure_cache,
    link_variant,
    variant_stats,
)
from repro.experiments.pipeline import PipelineMetrics, plan_cells, prewarm
from repro.experiments.figures import (
    fig3_rows,
    fig4_rows,
    fig5_rows,
    fig6_rows,
    fig7_rows,
    gat_rows,
)

__all__ = [
    "VARIANTS",
    "PipelineMetrics",
    "build_objects",
    "configure_cache",
    "link_variant",
    "plan_cells",
    "prewarm",
    "variant_stats",
    "fig3_rows",
    "fig4_rows",
    "fig5_rows",
    "fig6_rows",
    "fig7_rows",
    "gat_rows",
]
