"""Command-line entry point: ``python -m repro.experiments <figure>``.

Figures: fig3 fig4 fig5 fig6 fig7 gat overhead all.  ``--scale N``
shrinks the workloads (useful for smoke runs); ``--programs a,b,c``
restricts the program set.

``--jobs N`` fans the build/link/run matrix across N worker processes
before the tables are printed; artifacts flow between workers (and
between invocations) through the content-addressed disk cache at
``--cache-dir`` (default: ``$REPRO_CACHE_DIR`` or ``.repro-cache``).
``--no-cache`` disables the disk cache, which also forces inline
execution.  Each run prints the pipeline's per-stage metrics table —
on a warm cache every stage shows hits and zero misses.

``--trace out.json`` writes a Chrome-trace timeline of the pipeline
(one span per build/link/run/profile cell, on its worker's pid lane);
load it at https://ui.perfetto.dev or ``chrome://tracing``.

Two observability subcommands exist alongside the figures:

* ``explain <prog>`` — relink one program with a provenance trace
  attached and print every transformation decision OM made (pass, pc,
  before -> after, reason), reconciled against the pass counters;
* ``profile <prog>`` — per-procedure cycle/instruction attribution
  and executed address-calculation overhead for one build.

``layout <prog>`` compares one program's om-full build against the
profile-fed ``om-full-layout`` build (the closed PGO loop): identical
output, jsr->bsr conversions, executed GAT loads, cycles, and the
layout subsystem's telemetry.  Exits non-zero if any layout invariant
fails.

``fuzz`` runs the provenance-guided differential fuzzer
(:mod:`repro.fuzz`): seeded random MiniC programs through the full
(mode × link-variant) matrix, divergences minimized and persisted to
``--corpus-dir``.  Exits non-zero on any divergence or replay
mismatch.

``wpo`` runs the incremental-relink experiment: a deterministic
scale-N chain program (:func:`repro.fuzz.generate.
generate_scale_program`) is linked monolithically and with the
partitioned optimizer (:mod:`repro.wpo`), then relinked after
one-module edits.  It asserts byte-identity against the monolithic
link at every step, that a warm relink misses nothing, and that each
edit's shard-cache misses land only in the shards holding the edited
modules; ``--figure-out`` writes the relink-time-vs-touched-modules
figure.  Exits non-zero if any invariant fails.

``bench`` runs the pinned perf suite (:mod:`.bench`) — build matrix,
serve cold/warm, WPO incremental relink — and writes a
schema-versioned ``BENCH_pinned.json``; ``regress`` (:mod:`.regress`)
compares such a report against the committed baselines in
``benchmarks/baselines/`` with direction-aware per-metric tolerances
and exits non-zero on any out-of-tolerance regression.  The pair is
CI's perf gate; ``regress --update-baselines`` is the refresh
procedure after an intentional perf change.

``serve-bench`` benchmarks the serving path
(:mod:`repro.serve.loadgen`): a seeded mixed workload replayed against
the toolchain daemon at a configurable concurrency, cold cache then
warm, reporting throughput and p50/p95/p99 latency and reconciling the
client's observations against the server's ``status`` counters.
``--fleet N`` embeds N daemons behind the consistent-hash router
instead of one; ``--soak --duration S --tenants T`` switches to the
gated multi-tenant endurance run (warm-p99 ceiling, error budget,
fleet-wide counter reconciliation, optional ``--speedup-floor``).
Exits non-zero on any failed request, reconciliation mismatch, or
tripped gate.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from pathlib import Path

from repro.cache import ArtifactCache
from repro.experiments import figures, pipeline
from repro.experiments.build import configure_cache
from repro.experiments.report import print_figure

_FIGURES = {
    "fig3": (figures.fig3_rows, True),
    "fig4": (figures.fig4_rows, True),
    "fig5": (figures.fig5_rows, True),
    "fig6": (figures.fig6_rows, False),
    "fig7": (figures.fig7_rows, False),
    "gat": (figures.gat_rows, False),
    "overhead": (figures.overhead_rows, False),
    "pgo": (figures.pgo_rows, False),
}

_EXPLAIN_VARIANTS = (
    "om-none",
    "om-simple",
    "om-full",
    "om-full-sched",
    "om-full-layout",
)


def _explain(argv) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments explain")
    parser.add_argument("program")
    parser.add_argument("--proc", type=str, default=None,
                        help="restrict output to one procedure")
    parser.add_argument("--mode", choices=("each", "all"), default="each")
    parser.add_argument("--variant", choices=_EXPLAIN_VARIANTS,
                        default="om-full")
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--trace", type=str, default=None,
                        help="also save the full trace (Chrome-trace JSON)")
    args = parser.parse_args(argv)

    from repro.experiments import build
    from repro.obs import provenance
    from repro.obs.trace import TraceLog
    from repro.om import OMOptions, om_link

    configure_cache(None)
    objects, lib = build.copies_for(args.program, args.mode, args.scale)
    level, options = build._LEVELS[args.variant]
    profile_in = None
    base = build.FEEDBACK_VARIANTS.get(args.variant)
    if base:
        profile_in = build.profile_variant(args.program, args.mode, base, args.scale)
    trace = TraceLog()
    result = om_link(
        objects,
        [lib],
        level=level,
        options=dataclasses.replace(options, verify=True),
        trace=trace,
        profile=profile_in,
    )

    lines = provenance.explain_lines(trace, proc=args.proc)
    for line in lines:
        print(line)

    events = provenance.events(trace, proc=args.proc)
    by_proc: dict[str, int] = {}
    for event in events:
        by_proc[event["proc"]] = by_proc.get(event["proc"], 0) + 1
    print()
    print(f"{len(events)} provenance events in {len(by_proc)} procedures")
    for proc, count in sorted(by_proc.items(), key=lambda kv: -kv[1])[:10]:
        print(f"  {proc}: {count}")

    mismatches = provenance.reconcile(trace, result.counters)
    if args.proc is None:
        if mismatches:
            print("\ncounter reconciliation FAILED:")
            for field, (seen, expected) in sorted(mismatches.items()):
                print(f"  {field}: {seen} events vs counter {expected}")
        else:
            print("\nprovenance events reconcile exactly with pass counters")

    report = result.verify
    if report is not None:
        print(
            f"verify: instructions={report.instructions} "
            f"branches={report.branches} calls={report.calls} "
            f"gat_entries={report.gat_entries} problems={len(report.problems)}"
        )

    if args.trace:
        trace.save_chrome_trace(args.trace)
        print(f"trace written to {args.trace}")
    return 1 if (mismatches and args.proc is None) else 0


def _profile(argv) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments profile")
    parser.add_argument("program")
    parser.add_argument("--mode", choices=("each", "all"), default="each")
    parser.add_argument(
        "--variant",
        choices=("ld",) + _EXPLAIN_VARIANTS,
        default="om-full",
    )
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--top", type=int, default=10)
    args = parser.parse_args(argv)

    from repro.experiments import build

    configure_cache(None)
    keys, rows = figures.profile_rows(
        args.program, args.mode, args.variant, args.scale, top=args.top
    )
    result = build.profile_variant(args.program, args.mode, args.variant, args.scale)
    print_figure(
        f"profile {args.program}/{args.mode}/{args.variant}",
        keys,
        rows,
        percent=False,
    )
    counts = result.overhead
    total = result.run.instructions
    frac = counts.instructions / total if total else 0.0
    print(
        f"run: {total} instructions, {result.run.cycles} cycles  |  "
        f"overhead: {counts.gat_loads} GAT loads "
        f"({counts.pv_loads} PV), {counts.gp_setup_pairs} GP-setup pairs "
        f"= {100 * frac:.2f}% of executed instructions"
    )
    return 0


def _layout(argv) -> int:
    """Compare one program's om-full link against the PGO closed loop."""
    parser = argparse.ArgumentParser(prog="repro.experiments layout")
    parser.add_argument("program")
    parser.add_argument("--mode", choices=("each", "all"), default="each")
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--cache-dir", type=str, default=None)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args(argv)

    from repro.experiments import build

    configure_cache(_resolve_cache(args.cache_dir, args.no_cache))
    base = build.variant_stats(args.program, args.mode, "om-full", args.scale)
    layout = build.variant_stats(
        args.program, args.mode, "om-full-layout", args.scale
    )
    base_prof = build.profile_variant(
        args.program, args.mode, "om-full", args.scale
    )
    layout_prof = build.profile_variant(
        args.program, args.mode, "om-full-layout", args.scale
    )

    identical = layout_prof.run.output == base_prof.run.output
    print(f"layout {args.program}/{args.mode}: "
          f"outputs identical: {'OK' if identical else 'FAIL'}")
    print(
        f"jsr->bsr: om-full={base.counters.jsr_to_bsr} "
        f"om-full-layout={layout.counters.jsr_to_bsr}"
    )
    print(
        f"executed GAT loads: om-full={base_prof.overhead.gat_loads} "
        f"om-full-layout={layout_prof.overhead.gat_loads}"
    )
    saved = base_prof.run.cycles - layout_prof.run.cycles
    print(
        f"cycles: om-full={base_prof.run.cycles} "
        f"om-full-layout={layout_prof.run.cycles} "
        f"({100.0 * saved / max(base_prof.run.cycles, 1):+.3f}%)"
    )
    print(
        f"layout: procs_moved={layout.stats.procs_moved} "
        f"relax_iterations={layout.stats.relax_iterations} "
        f"relax_demoted={layout.stats.relax_demoted}"
    )
    ok = (
        identical
        and layout.counters.jsr_to_bsr >= base.counters.jsr_to_bsr
        and layout_prof.overhead.gat_loads <= base_prof.overhead.gat_loads
    )
    if not ok:
        print("layout invariants: FAIL")
    return 0 if ok else 1


def _resolve_cache(cache_dir: str | None, no_cache: bool) -> ArtifactCache | None:
    if no_cache:
        return None
    return ArtifactCache(
        Path(cache_dir or os.environ.get("REPRO_CACHE_DIR") or ".repro-cache")
    )


def _wpo(argv) -> int:
    """Incremental-relink experiment on a scale-N chain program."""
    parser = argparse.ArgumentParser(prog="repro.experiments wpo")
    parser.add_argument("--modules", type=int, default=24,
                        help="translation units in the generated program")
    parser.add_argument("--partitions", type=int, default=6,
                        help="WPO shard count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--edits", type=int, default=3,
                        help="sweep touched-module counts 1..K")
    parser.add_argument("--cache-dir", type=str, default=None)
    parser.add_argument("--figure-out", type=str, default=None,
                        help="write the relink-time figure JSON here")
    args = parser.parse_args(argv)

    import json
    import time

    from repro.benchsuite import build_stdlib
    from repro.fuzz.generate import generate_scale_program
    from repro.linker import make_crt0
    from repro.linker.executable import dump_executable
    from repro.frontend import compile_sources
    from repro.objfile.archive import Archive
    from repro.objfile.serialize import dump_archive, load_archive
    from repro.om import OMLevel, OMOptions, om_link

    cache = _resolve_cache(args.cache_dir, False)
    crt0 = make_crt0()
    lib = build_stdlib()

    def compiled(program) -> bytes:
        return dump_archive(
            [crt0] + compile_sources(list(program.modules), "each")
        )

    def timed_link(blob: bytes, options: OMOptions, use_cache: bool):
        # Private copies per link, as in the pipeline: linkers mutate.
        objects = load_archive(blob)
        libmc = Archive(lib.name, load_archive(dump_archive(lib.members)))
        start = time.monotonic()
        result = om_link(
            objects,
            [libmc],
            level=OMLevel.FULL,
            options=options,
            cache=cache if use_cache else None,
        )
        return result, time.monotonic() - start

    wpo_options = OMOptions(partitions=args.partitions)
    program = generate_scale_program(args.seed, args.modules)
    blob = compiled(program)

    mono, mono_s = timed_link(blob, OMOptions(), False)
    mono_bytes = dump_executable(mono.executable)

    cold, cold_s = timed_link(blob, wpo_options, True)
    identical = dump_executable(cold.executable) == mono_bytes
    ok = identical
    stats = cold.wpo
    print(
        f"wpo: modules={args.modules} partitions={args.partitions} "
        f"shards={stats.shards} rounds={stats.rounds}"
    )
    print(
        f"wpo: cold misses={stats.misses} hits={stats.hits} "
        f"identical={'OK' if identical else 'FAIL'} "
        f"link={cold_s:.3f}s full={mono_s:.3f}s"
    )

    warm, warm_s = timed_link(blob, wpo_options, True)
    identical = dump_executable(warm.executable) == mono_bytes
    ok = ok and identical and warm.wpo.misses == 0
    print(
        f"wpo: warm misses={warm.wpo.misses} hits={warm.wpo.hits} "
        f"identical={'OK' if identical else 'FAIL'} link={warm_s:.3f}s"
    )

    points = []
    for touched in range(1, max(1, args.edits) + 1):
        # Edited modules spread across 1..N-1 (module 0 holds main),
        # salted so instruction counts — and shard boundaries — hold.
        span = args.modules - 1
        edited = sorted({1 + (i * span) // touched for i in range(touched)})
        version = generate_scale_program(
            args.seed, args.modules, salts={m: touched for m in edited}
        )
        vblob = compiled(version)
        full, full_s = timed_link(vblob, OMOptions(), False)
        inc, inc_s = timed_link(vblob, wpo_options, True)
        identical = dump_executable(inc.executable) == dump_executable(
            full.executable
        )
        expected = sorted(
            index
            for index, members in enumerate(inc.wpo.members)
            if any(f"s{m}.o" in members for m in edited)
        )
        contained = set(inc.wpo.missed_shards) <= set(expected)
        ok = ok and identical and contained and bool(inc.wpo.missed_shards)
        print(
            f"wpo: edit touched={len(edited)} edited={edited} "
            f"missed_shards={inc.wpo.missed_shards} expected={expected} "
            f"misses={inc.wpo.misses} "
            f"identical={'OK' if identical else 'FAIL'} "
            f"contained={'OK' if contained else 'FAIL'} "
            f"relink={inc_s:.3f}s full={full_s:.3f}s"
        )
        points.append(
            {
                "touched_modules": len(edited),
                "edited": edited,
                "missed_shards": list(inc.wpo.missed_shards),
                "shards": inc.wpo.shards,
                "misses": inc.wpo.misses,
                "hits": inc.wpo.hits,
                "relink_seconds": round(inc_s, 6),
                "full_link_seconds": round(full_s, 6),
            }
        )

    if args.figure_out:
        figure = {
            "figure": "wpo-relink",
            "modules": args.modules,
            "partitions": args.partitions,
            "seed": args.seed,
            "monolithic_seconds": round(mono_s, 6),
            "cold_seconds": round(cold_s, 6),
            "warm_seconds": round(warm_s, 6),
            "points": points,
        }
        Path(args.figure_out).write_text(json.dumps(figure, indent=2) + "\n")
        print(f"wpo: figure written to {args.figure_out}")

    print(f"wpo invariants: {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


def _fuzz(argv) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments fuzz")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed for the campaign planner")
    parser.add_argument("--iterations", "-n", type=int, default=50,
                        help="programs to evaluate")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="stop at the first wave boundary past this "
                             "many seconds")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes (requires the disk cache)")
    parser.add_argument("--corpus-dir", type=str, default="corpus",
                        help="where minimized repros and coverage seeds go")
    parser.add_argument("--cache-dir", type=str, default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--no-minimize", action="store_true",
                        help="skip the ddmin reducer on divergences")
    parser.add_argument("--max-instructions", type=int, default=None,
                        help="per-cell simulator budget")
    parser.add_argument("--trace", type=str, default=None,
                        help="write a Chrome-trace timeline of the campaign")
    parser.add_argument("--languages", type=str, default="minic",
                        help="comma-separated frontend palette for fresh "
                             "programs: minic, decaf, mixed")
    args = parser.parse_args(argv)

    languages = tuple(
        part.strip() for part in args.languages.split(",") if part.strip()
    )
    known = {"minic", "decaf", "mixed"}
    if not languages or not set(languages) <= known:
        parser.error(
            f"--languages must name a subset of {sorted(known)}"
        )

    from repro.fuzz import run_campaign
    from repro.fuzz.oracle import DEFAULT_MAX_INSTRUCTIONS
    from repro.obs.trace import TraceLog

    cache = _resolve_cache(args.cache_dir, args.no_cache)
    trace = TraceLog() if args.trace else None
    stats = run_campaign(
        args.seed,
        args.iterations,
        time_budget=args.time_budget,
        jobs=args.jobs,
        corpus_dir=args.corpus_dir,
        cache=cache,
        trace=trace,
        max_instructions=args.max_instructions or DEFAULT_MAX_INSTRUCTIONS,
        minimize=not args.no_minimize,
        languages=languages,
        log=print,
    )
    print(stats.format())
    if trace is not None:
        trace.save_chrome_trace(args.trace)
        print(f"fuzz trace written to {args.trace}")
    return 0 if stats.ok else 1


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "explain":
        return _explain(argv[1:])
    if argv and argv[0] == "profile":
        return _profile(argv[1:])
    if argv and argv[0] == "fuzz":
        return _fuzz(argv[1:])
    if argv and argv[0] == "layout":
        return _layout(argv[1:])
    if argv and argv[0] == "wpo":
        return _wpo(argv[1:])
    if argv and argv[0] == "serve-bench":
        from repro.serve.loadgen import main as serve_bench_main

        return serve_bench_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.experiments.bench import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "regress":
        from repro.experiments.regress import regress_main

        return regress_main(argv[1:])

    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument(
        "figure",
        choices=sorted(_FIGURES)
        + ["all", "summary", "explain", "profile", "fuzz", "layout",
           "wpo", "serve-bench", "bench", "regress"],
    )
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--programs", type=str, default=None)
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the build/link/run pipeline",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk artifact cache (forces --jobs 1)",
    )
    parser.add_argument(
        "--trace", type=str, default=None,
        help="write a Chrome-trace timeline of the pipeline to this path",
    )
    args = parser.parse_args(argv)

    configure_cache(_resolve_cache(args.cache_dir, args.no_cache))

    programs = args.programs.split(",") if args.programs else None
    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]

    trace = None
    if args.trace:
        from repro.obs.trace import TraceLog

        trace = TraceLog()

    metrics = pipeline.prewarm(
        names if args.figure != "summary" else ["summary"],
        programs=programs,
        scale=args.scale,
        jobs=args.jobs,
        trace=trace,
    )
    print(metrics.format())
    print()

    if trace is not None:
        trace.save_chrome_trace(args.trace)
        print(f"pipeline trace written to {args.trace} "
              f"(load at https://ui.perfetto.dev)\n")

    if args.figure == "summary":
        from repro.experiments.summary import compute_summary, print_summary

        print_summary(compute_summary(programs=programs, scale=args.scale))
        return 0
    for name in names:
        generate, percent = _FIGURES[name]
        if name == "fig7":
            keys, rows = generate(
                programs=programs,
                scale=args.scale,
                link_timings=metrics.link_seconds,
            )
        else:
            keys, rows = generate(programs=programs, scale=args.scale)
        print_figure(name, keys, rows, percent=percent)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
