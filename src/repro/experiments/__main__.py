"""Command-line entry point: ``python -m repro.experiments <figure>``.

Figures: fig3 fig4 fig5 fig6 fig7 gat all.  ``--scale N`` shrinks the
workloads (useful for smoke runs); ``--programs a,b,c`` restricts the
program set.

``--jobs N`` fans the build/link/run matrix across N worker processes
before the tables are printed; artifacts flow between workers (and
between invocations) through the content-addressed disk cache at
``--cache-dir`` (default: ``$REPRO_CACHE_DIR`` or ``.repro-cache``).
``--no-cache`` disables the disk cache, which also forces inline
execution.  Each run prints the pipeline's per-stage metrics table —
on a warm cache every stage shows hits and zero misses.
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path

from repro.cache import ArtifactCache
from repro.experiments import figures, pipeline
from repro.experiments.build import configure_cache
from repro.experiments.report import print_figure

_FIGURES = {
    "fig3": (figures.fig3_rows, True),
    "fig4": (figures.fig4_rows, True),
    "fig5": (figures.fig5_rows, True),
    "fig6": (figures.fig6_rows, False),
    "fig7": (figures.fig7_rows, False),
    "gat": (figures.gat_rows, False),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("figure", choices=sorted(_FIGURES) + ["all", "summary"])
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--programs", type=str, default=None)
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the build/link/run pipeline",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk artifact cache (forces --jobs 1)",
    )
    args = parser.parse_args(argv)

    if args.no_cache:
        configure_cache(None)
    else:
        cache_dir = (
            args.cache_dir
            or os.environ.get("REPRO_CACHE_DIR")
            or ".repro-cache"
        )
        configure_cache(ArtifactCache(Path(cache_dir)))

    programs = args.programs.split(",") if args.programs else None
    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]

    metrics = pipeline.prewarm(
        names if args.figure != "summary" else ["summary"],
        programs=programs,
        scale=args.scale,
        jobs=args.jobs,
    )
    print(metrics.format())
    print()

    if args.figure == "summary":
        from repro.experiments.summary import compute_summary, print_summary

        print_summary(compute_summary(programs=programs, scale=args.scale))
        return 0
    for name in names:
        generate, percent = _FIGURES[name]
        if name == "fig7":
            keys, rows = generate(
                programs=programs,
                scale=args.scale,
                link_timings=metrics.link_seconds,
            )
        else:
            keys, rows = generate(programs=programs, scale=args.scale)
        print_figure(name, keys, rows, percent=percent)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
