"""Command-line entry point: ``python -m repro.experiments <figure>``.

Figures: fig3 fig4 fig5 fig6 fig7 gat all.  ``--scale N`` shrinks the
workloads (useful for smoke runs); ``--programs a,b,c`` restricts the
program set.
"""

from __future__ import annotations

import argparse

from repro.experiments import figures
from repro.experiments.report import print_figure

_FIGURES = {
    "fig3": (figures.fig3_rows, True),
    "fig4": (figures.fig4_rows, True),
    "fig5": (figures.fig5_rows, True),
    "fig6": (figures.fig6_rows, False),
    "fig7": (figures.fig7_rows, False),
    "gat": (figures.gat_rows, False),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("figure", choices=sorted(_FIGURES) + ["all", "summary"])
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--programs", type=str, default=None)
    args = parser.parse_args(argv)

    programs = args.programs.split(",") if args.programs else None
    if args.figure == "summary":
        from repro.experiments.summary import compute_summary, print_summary

        print_summary(compute_summary(programs=programs, scale=args.scale))
        return 0
    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        generate, percent = _FIGURES[name]
        keys, rows = generate(programs=programs, scale=args.scale)
        print_figure(name, keys, rows, percent=percent)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
