"""Dependency-aware parallel execution of the experiment matrix.

The paper's evaluation is a (program × version × link-variant) matrix:
compiles feed links, links feed simulator runs.  This module plans the
cells a figure needs and executes them in dependency order — compiles
fan out first, then the link variants of each finished build, then the
runs of each finished link — across a ``ProcessPoolExecutor`` when
``jobs > 1``.  Workers share artifacts through the content-addressed
disk cache (:mod:`repro.cache`), which is also what makes a second,
warm invocation perform zero compiles and links.

Parallel execution therefore *requires* a configured disk cache: with
in-process memoization only, worker results could never reach the
parent.  ``prewarm`` degrades to inline execution in that case.

Every task reports its stage, wall time, and cache hit/miss delta; the
aggregate :class:`PipelineMetrics` renders the per-stage metrics table
and exposes the cold link timings that feed Fig. 7's build-time rows.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.benchsuite import PROGRAMS
from repro.obs.trace import TraceLog

#: Cells each figure needs.  ``stats`` cells produce OMResults (Figs.
#: 3-5, GAT), ``runs`` produce simulator results (Fig. 6), ``links``
#: prewarm executables only (Fig. 7 times links itself from the cached
#: objects).
_FIGURE_PLANS: dict[str, dict] = {
    "fig3": {"modes": ("each", "all"), "stats": ("om-simple", "om-full")},
    "fig4": {
        "modes": ("each", "all"),
        "stats": ("om-none", "om-simple", "om-full"),
    },
    "fig5": {"modes": ("each", "all"), "stats": ("om-simple", "om-full")},
    "gat": {"modes": ("each",), "stats": ("om-full",)},
    "fig6": {
        "modes": ("each", "all"),
        "runs": ("ld", "om-simple", "om-full", "om-full-sched"),
    },
    "fig7": {
        "modes": ("each",),
        "links": ("ld", "om-none", "om-simple", "om-full", "om-full-sched"),
    },
    # Dynamic address-calculation overhead: profiled runs of the
    # standard link vs. OM-full.
    "overhead": {"modes": ("each",), "profiles": ("ld", "om-full")},
    # Closed PGO loop: the om-full profile feeds the om-full-layout
    # link; profiled runs of both sides measure the payoff.
    "pgo": {
        "modes": ("each",),
        "stats": ("om-full", "om-full-layout"),
        "profiles": ("om-full", "om-full-layout"),
    },
    # The summary needs Figs. 3-5 and GAT stats plus the no-sched
    # dynamic comparison of Fig. 6.
    "summary": {
        "modes": ("each", "all"),
        "stats": ("om-none", "om-simple", "om-full"),
        "runs": ("ld", "om-simple", "om-full"),
    },
}


@dataclass(frozen=True)
class Plan:
    """The de-duplicated work list for a set of figures."""

    builds: tuple[tuple[str, str], ...]  # (program, mode)
    links: tuple[tuple[str, str, str], ...]  # (program, mode, variant)
    runs: tuple[tuple[str, str, str], ...]
    profiles: tuple[tuple[str, str, str], ...] = ()


def plan_cells(figures, programs=None) -> Plan:
    """Expand figure names into the cells they require."""
    names = list(programs) if programs else list(PROGRAMS)
    wanted = set()
    for figure in figures:
        wanted.update(_FIGURE_PLANS if figure == "all" else (figure,))
    unknown = wanted - set(_FIGURE_PLANS)
    if unknown:
        raise ValueError(f"unknown figures: {sorted(unknown)}")

    builds: set[tuple[str, str]] = set()
    links: set[tuple[str, str, str]] = set()
    runs: set[tuple[str, str, str]] = set()
    profiles: set[tuple[str, str, str]] = set()
    for figure in wanted:
        spec = _FIGURE_PLANS[figure]
        for name in names:
            for mode in spec["modes"]:
                builds.add((name, mode))
                for variant in spec.get("stats", ()):
                    links.add((name, mode, variant))
                for variant in spec.get("links", ()):
                    links.add((name, mode, variant))
                for variant in spec.get("runs", ()):
                    runs.add((name, mode, variant))
                for variant in spec.get("profiles", ()):
                    profiles.add((name, mode, variant))
    # Every run and profile depends on its link.
    links.update(runs)
    links.update(profiles)
    # Feedback links additionally consume a profiled run of their base
    # variant; pull those cells (and the base links) into the plan.
    from repro.experiments.build import FEEDBACK_VARIANTS

    for name, mode, variant in list(links):
        base = FEEDBACK_VARIANTS.get(variant)
        if base:
            profiles.add((name, mode, base))
            links.add((name, mode, base))
    return Plan(
        tuple(sorted(builds)),
        tuple(sorted(links)),
        tuple(sorted(runs)),
        tuple(sorted(profiles)),
    )


class TaskReport(NamedTuple):
    stage: str  # "build" | "link" | "run" | "profile"
    program: str
    mode: str
    variant: str | None
    seconds: float
    hits: int
    misses: int
    #: Wall-clock epoch seconds — spans from every worker process share
    #: one clock, so a merged trace timeline lines up across pids.
    start: float = 0.0
    end: float = 0.0
    pid: int = 0

    @property
    def label(self) -> str:
        cell = f"{self.program}/{self.mode}"
        if self.variant:
            cell += f"/{self.variant}"
        return f"{self.stage} {cell}"


@dataclass
class StageMetrics:
    tasks: int = 0
    hits: int = 0
    misses: int = 0
    seconds: float = 0.0


@dataclass
class PipelineMetrics:
    """Aggregated per-stage wall time and cache hit/miss counters."""

    jobs: int
    wall: float = 0.0
    stages: dict[str, StageMetrics] = field(default_factory=dict)
    #: Cold (cache-miss) link wall times: (program, mode, variant) -> s.
    #: These feed Fig. 7's build-time rows.
    link_seconds: dict[tuple[str, str, str], float] = field(default_factory=dict)
    #: Every task report, in completion order (feeds trace export).
    reports: list[TaskReport] = field(default_factory=list)

    def record(self, report: TaskReport) -> None:
        self.reports.append(report)
        stage = self.stages.setdefault(report.stage, StageMetrics())
        stage.tasks += 1
        stage.hits += report.hits
        stage.misses += report.misses
        stage.seconds += report.seconds
        if report.stage == "link" and report.misses:
            cell = (report.program, report.mode, report.variant)
            self.link_seconds[cell] = report.seconds

    @property
    def total_hits(self) -> int:
        return sum(stage.hits for stage in self.stages.values())

    @property
    def total_misses(self) -> int:
        return sum(stage.misses for stage in self.stages.values())

    def format(self) -> str:
        """The metrics table (plus a greppable summary line)."""
        headers = ("stage", "tasks", "hits", "misses", "seconds")
        rows = [
            (
                name,
                str(stage.tasks),
                str(stage.hits),
                str(stage.misses),
                f"{stage.seconds:.2f}",
            )
            for name, stage in sorted(
                self.stages.items(),
                key=lambda kv: ("build", "link", "run", "profile").index(kv[0]),
            )
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        lines.append(
            f"pipeline: jobs={self.jobs} hits={self.total_hits} "
            f"misses={self.total_misses} wall={self.wall:.2f}s"
        )
        return "\n".join(lines)


# -- task execution ------------------------------------------------------------


def _execute_cell(
    stage: str, name: str, mode: str, variant: str | None, scale: int | None
) -> TaskReport:
    """Run one cell in the current process and report its cost."""
    from repro.experiments import build

    cache = build.active_cache()
    hits0, misses0 = cache.stats.snapshot() if cache else (0, 0)
    wall_start = time.time()
    start = time.perf_counter()
    if stage == "build":
        build.build_objects(name, mode, scale)
    elif stage == "link":
        if variant == "ld":
            build.link_variant(name, mode, variant, scale)
        else:
            build.variant_stats(name, mode, variant, scale)
    elif stage == "run":
        build.run_variant(name, mode, variant, scale)
    elif stage == "profile":
        build.profile_variant(name, mode, variant, scale)
    else:  # pragma: no cover
        raise ValueError(f"unknown stage {stage!r}")
    seconds = time.perf_counter() - start
    hits1, misses1 = cache.stats.snapshot() if cache else (0, 0)
    return TaskReport(
        stage,
        name,
        mode,
        variant,
        seconds,
        hits1 - hits0,
        misses1 - misses0,
        start=wall_start,
        end=wall_start + seconds,
        pid=os.getpid(),
    )


def _worker_init(cache_root: str, stamp: str) -> None:
    """Configure a pool worker's disk cache (runs once per worker)."""
    from repro.cache import ArtifactCache
    from repro.experiments import build

    build.configure_cache(ArtifactCache(cache_root, stamp=stamp))


def _run_inline(plan: Plan, scale, metrics: PipelineMetrics) -> None:
    from repro.experiments.build import FEEDBACK_VARIANTS

    feedback = [c for c in plan.links if c[2] in FEEDBACK_VARIANTS]
    base_profiles = {
        (name, mode, FEEDBACK_VARIANTS[variant])
        for name, mode, variant in feedback
    }
    for name, mode in plan.builds:
        metrics.record(_execute_cell("build", name, mode, None, scale))
    for cell in plan.links:
        if cell not in feedback:
            metrics.record(_execute_cell("link", *cell, scale))
    # Base profiles before the feedback links that consume them.
    for cell in plan.profiles:
        if cell in base_profiles:
            metrics.record(_execute_cell("profile", *cell, scale))
    for cell in feedback:
        metrics.record(_execute_cell("link", *cell, scale))
    for cell in plan.runs:
        metrics.record(_execute_cell("run", *cell, scale))
    for cell in plan.profiles:
        if cell not in base_profiles:
            metrics.record(_execute_cell("profile", *cell, scale))


def _run_parallel(plan: Plan, scale, jobs: int, metrics: PipelineMetrics) -> None:
    from repro.experiments import build

    cache = build.active_cache()
    links_by_build: dict[tuple[str, str], list] = {}
    feedback_by_profile: dict[tuple[str, str, str], list] = {}
    for cell in plan.links:
        base = build.FEEDBACK_VARIANTS.get(cell[2])
        base_profile = (cell[0], cell[1], base) if base else None
        if base_profile is not None and base_profile in plan.profiles:
            # Feedback links wait for their base variant's profile.
            feedback_by_profile.setdefault(base_profile, []).append(cell)
        else:
            links_by_build.setdefault(cell[:2], []).append(cell)
    runs_by_link: dict[tuple[str, str, str], list] = {}
    for cell in plan.runs:
        runs_by_link.setdefault(cell, []).append(("run", cell))
    for cell in plan.profiles:
        runs_by_link.setdefault(cell, []).append(("profile", cell))

    with concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_worker_init,
        initargs=(str(cache.root), cache.stamp),
    ) as pool:
        pending: dict[concurrent.futures.Future, tuple] = {}
        for name, mode in plan.builds:
            future = pool.submit(_execute_cell, "build", name, mode, None, scale)
            pending[future] = ("build", name, mode, None)
        while pending:
            done, _ = concurrent.futures.wait(
                pending, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in done:
                stage, name, mode, variant = pending.pop(future)
                metrics.record(future.result())
                if stage == "build":
                    for cell in links_by_build.get((name, mode), ()):
                        sub = pool.submit(
                            _execute_cell, "link", cell[0], cell[1], cell[2], scale
                        )
                        pending[sub] = ("link", *cell)
                elif stage == "link":
                    for substage, cell in runs_by_link.get(
                        (name, mode, variant), ()
                    ):
                        sub = pool.submit(
                            _execute_cell, substage, cell[0], cell[1], cell[2], scale
                        )
                        pending[sub] = (substage, *cell)
                if stage == "profile":
                    for cell in feedback_by_profile.get(
                        (name, mode, variant), ()
                    ):
                        sub = pool.submit(
                            _execute_cell, "link", cell[0], cell[1], cell[2], scale
                        )
                        pending[sub] = ("link", *cell)


def prewarm(
    figures,
    programs=None,
    scale: int | None = None,
    jobs: int = 1,
    trace: TraceLog | None = None,
) -> PipelineMetrics:
    """Execute every cell the given figures need; returns the metrics.

    With ``jobs > 1`` and a disk cache installed, cells execute across
    a process pool in dependency order; otherwise they run inline (the
    pool would be useless without a cache to share artifacts through).

    With a ``trace`` attached, every executed cell becomes a span on
    its worker's pid lane (see :func:`record_trace`), so the whole
    matrix renders as a parallel timeline in Perfetto.
    """
    from repro.experiments import build

    plan = plan_cells(figures, programs)
    effective_jobs = jobs if (jobs > 1 and build.active_cache() is not None) else 1
    metrics = PipelineMetrics(jobs=effective_jobs)
    start = time.perf_counter()
    if effective_jobs == 1:
        _run_inline(plan, scale, metrics)
    else:
        _run_parallel(plan, scale, effective_jobs, metrics)
    metrics.wall = time.perf_counter() - start
    if trace is not None:
        record_trace(metrics, trace)
    return metrics


def record_trace(metrics: PipelineMetrics, trace: TraceLog) -> None:
    """Turn every TaskReport into a pipeline span on its pid lane.

    Workers measure wall-clock start/end epoch times, so spans from all
    processes land on one shared timeline; cache hit/miss deltas ride
    along as span args.
    """
    for report in metrics.reports:
        trace.add_span(
            report.label,
            report.start * 1e6,
            report.end * 1e6,
            cat=f"pipeline.{report.stage}",
            pid=report.pid or None,
            tid=0,
            stage=report.stage,
            program=report.program,
            mode=report.mode,
            variant=report.variant,
            cache_hits=report.hits,
            cache_misses=report.misses,
            cache=("hit" if report.hits and not report.misses else "miss"),
        )
    trace.counter(
        "pipeline.cache",
        cat="pipeline",
        hits=metrics.total_hits,
        misses=metrics.total_misses,
    )
