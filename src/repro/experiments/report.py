"""Rendering experiment results as aligned text tables, with the
paper's reference values alongside for comparison."""

from __future__ import annotations

#: What the paper reports (for EXPERIMENTS.md and the printed footers).
PAPER_REFERENCE = {
    "fig3": (
        "OM-simple converts essentially all convertible loads and "
        "nullifies about as many (~half of all address loads removed); "
        "OM-full eliminates nearly all address loads."
    ),
    "fig4": (
        "Without OM ~85-95% of calls need full bookkeeping even with "
        "compile-time interprocedural optimization.  OM-simple "
        "nullifies most GP-resets but few PV-loads (compile-time "
        "scheduling moved the GP-setup it would retarget around); "
        "OM-full removes all but the procedure-variable calls."
    ),
    "fig5": (
        "OM-simple nullifies ~6% of instructions; OM-full deletes ~11% "
        "on average; compile-all benefits nearly as much as "
        "compile-each."
    ),
    "fig6": (
        "Average improvement: OM-simple 1.5% (compile-each) / 1.35% "
        "(compile-all); OM-full 3.8% / 3.4%; median 2.8%; rescheduling "
        "adds only ~0.4%/0.2% and can regress individual programs."
    ),
    "fig7": (
        "OM's processing time is a small multiple of a standard link "
        "(seconds); a full interprocedural build from source is one to "
        "two orders of magnitude slower; link-time scheduling is the "
        "expensive step."
    ),
    "gat": "OM-full reduces the GAT to 3-15% of its original size.",
    "overhead": (
        "The cycles Fig. 6 recovers come from executed address "
        "calculation: OM-full removes essentially every PV load and "
        "GP-setup pair and a large share of GAT address loads."
    ),
    "pgo": (
        "Extension beyond the paper: a profiled run feeds procedure "
        "reordering (Pettis-Hansen), hot COMMON placement inside the "
        "16-bit GP window, and exact jsr->bsr relaxation.  Invariants "
        "(checked, not just reported): identical output, jsr->bsr "
        "never decreases, executed GAT loads never increase."
    ),
}


def format_table(keys: list[str], rows: list[dict], *, percent: bool = False) -> str:
    """Render rows as a fixed-width table."""
    headers = ["program"] + keys
    table = []
    for row in rows:
        cells = [str(row["program"])]
        for key in keys:
            value = row[key]
            if isinstance(value, float):
                cells.append(f"{100 * value:.1f}%" if percent else f"{value:.3f}")
            else:
                cells.append(str(value))
        table.append(cells)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in table)) for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for cells in table:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def print_figure(figure: str, keys: list[str], rows: list[dict], *, percent: bool) -> None:
    print(f"=== {figure} ===")
    print(format_table(keys, rows, percent=percent))
    reference = PAPER_REFERENCE.get(figure)
    if reference:
        print(f"\npaper: {reference}\n")
