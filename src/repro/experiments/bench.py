"""The pinned perf-benchmark suite: ``python -m repro.experiments bench``.

One command runs a fixed, seeded workload across the three performance
surfaces of the toolchain and writes a schema-versioned report:

* **build** — compile/link/run a pinned program set under ``ld`` and
  ``om-full``: simulated cycles/instructions and OM's address-load and
  GAT-size deltas (all deterministic — the simulator's timing model is
  pure), plus wall-clock link seconds;
* **serve** — the load generator's cold/warm phases against an
  embedded daemon: throughput, latency percentiles, and the serving
  counters (``completed`` is deterministic; the coalesced/cached split
  is timing-dependent and reported but not gated);
* **serve.fleet** — a 2-daemon consistent-hash fleet: a short
  multi-tenant soak (latency percentiles, zero-failure and
  counter-identity checks at zero tolerance) and the warm
  router-vs-single-daemon throughput ratio;
* **wpo** — the incremental-relink loop: warm-relink shard misses
  (deterministically zero), misses after a one-module edit, and
  relink-vs-full-link wall seconds;
* **decaf** — the OO benchsuite programs (second frontend) under
  ``ld``, ``om-full``, and ``om-full-wpo``: simulated cycles and
  instructions per variant plus OM's address-load delta, with
  cross-variant and interp-vs-JIT output identity enforced (any
  divergence is a correctness failure, not a perf blip);
* **machine** — interpreter-vs-JIT wall-clock on the plain-run
  (functional) path for every benchsuite program: min-of-N seconds per
  backend, per-program speedup, and the geomean (executed-instruction
  counts ride along at zero tolerance, so a JIT divergence trips the
  gate as a correctness failure, not a perf blip).

The report is a *flat* ``{"metric.name": value}`` map under a schema
tag, which is what ``regress`` diffs against the committed baselines
in ``benchmarks/baselines/`` — deterministic metrics at zero
tolerance, wall-clock metrics at generous direction-aware tolerances.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

#: Bump when metric names or semantics change; ``regress`` refuses to
#: compare reports and baselines of different schemas.
BENCH_SCHEMA = "repro-bench/1"

#: Pinned build-matrix programs (small enough for CI, varied enough to
#: exercise escaped-pointer and switch-table paths).
BUILD_PROGRAMS = ("eqntott", "compress")
BUILD_VARIANTS = ("ld", "om-full")
BUILD_SCALE = 1

#: The Decaf (OO frontend) programs additionally run under the
#: whole-program-partitioned linker, since vtable-rooted GC and
#: cross-partition dispatch are exactly what that path must preserve.
DECAF_VARIANTS = ("ld", "om-full", "om-full-wpo")

#: Pinned serve workload (mirrors the serve-bench smoke defaults).
SERVE_REQUESTS = 12
SERVE_CONCURRENCY = 4
SERVE_WORKERS = 2

#: Pinned fleet shape for the serve.fleet component: a short soak and
#: a warm router-vs-single-daemon throughput probe.
FLEET_SIZE = 2
FLEET_SOAK_SECONDS = 6.0
FLEET_TENANTS = 3

#: Pinned WPO incremental-relink shape.
WPO_MODULES = 12
WPO_PARTITIONS = 4
WPO_SEED = 0

#: Wall-clock repetitions per (program, backend) in the machine
#: component; the minimum is recorded (robust against CI noise).
MACHINE_REPS = 3


def bench_build() -> dict:
    """Simulated-cost and link-time metrics for the pinned matrix."""
    from repro.experiments import build

    build.configure_cache(None)
    build.clear_caches()
    metrics: dict[str, float] = {}
    for program in BUILD_PROGRAMS:
        for variant in BUILD_VARIANTS:
            started = time.perf_counter()
            build.link_variant(program, "each", variant, BUILD_SCALE)
            metrics[f"build.{program}.{variant}.link_seconds"] = (
                time.perf_counter() - started
            )
            run = build.run_variant(program, "each", variant, BUILD_SCALE)
            metrics[f"build.{program}.{variant}.cycles"] = run.cycles
            metrics[f"build.{program}.{variant}.instructions"] = (
                run.instructions
            )
        om = build.variant_stats(program, "each", "om-full", BUILD_SCALE)
        metrics[f"build.{program}.addr_loads_before"] = (
            om.stats.before.addr_loads
        )
        metrics[f"build.{program}.addr_loads_after"] = (
            om.stats.after.addr_loads
        )
        metrics[f"build.{program}.gat_bytes_before"] = (
            om.stats.gat_bytes_before
        )
        metrics[f"build.{program}.gat_bytes_after"] = om.stats.gat_bytes_after
    return metrics


def bench_serve() -> dict:
    """Cold/warm load-generator phases against an embedded daemon."""
    from repro.cache import ArtifactCache
    from repro.serve.client import ServeClient
    from repro.serve.loadgen import DEFAULT_PROGRAMS, build_workload, run_phase
    from repro.serve.server import ServeConfig, ServerThread

    programs = DEFAULT_PROGRAMS.split(",")
    workload = build_workload(
        programs, SERVE_REQUESTS,
        seed=0, scale=1, concurrency=SERVE_CONCURRENCY,
    )
    metrics: dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        with ServerThread(
            ArtifactCache(tmp),
            ServeConfig(workers=SERVE_WORKERS, queue_limit=32),
        ) as st:
            phases = {}
            for name in ("cold", "warm"):
                phases[name] = run_phase(
                    st.address, workload, SERVE_CONCURRENCY,
                    timeout=300.0, retries=8,
                )
            probe = ServeClient(st.address, timeout=300.0)
            counters = probe.status()["counters"]
            probe.close()
    for name, phase in phases.items():
        metrics[f"serve.{name}.throughput_rps"] = phase["throughput_rps"]
        metrics[f"serve.{name}.p50_ms"] = phase["latency_ms"]["p50"]
        metrics[f"serve.{name}.p95_ms"] = phase["latency_ms"]["p95"]
        metrics[f"serve.{name}.failed"] = phase["failed"]
    metrics["serve.completed"] = counters["completed"]
    metrics["serve.identity_residual"] = counters["completed"] - (
        counters["coalesced"] + counters["cache_hits"] + counters["computed"]
    )
    metrics["serve.warm_speedup"] = (
        phases["warm"]["throughput_rps"]
        / max(phases["cold"]["throughput_rps"], 1e-9)
    )
    return metrics


def bench_serve_fleet() -> dict:
    """Short multi-tenant soak plus warm throughput for a 2-daemon
    fleet behind the consistent-hash router."""
    from repro.serve.client import ServeClient
    from repro.serve.fleet import FleetConfig, FleetThread
    from repro.serve.loadgen import (
        DEFAULT_PROGRAMS,
        measure_warm_speedup,
        run_soak,
    )

    programs = DEFAULT_PROGRAMS.split(",")
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as tmp:
        config = FleetConfig(
            size=FLEET_SIZE, workers=SERVE_WORKERS, queue_limit=32,
            cache_dir=str(Path(tmp) / "cache"),
        )
        with FleetThread(config) as fleet:
            soak = run_soak(
                fleet.address, programs,
                duration=FLEET_SOAK_SECONDS, tenants=FLEET_TENANTS,
                concurrency=SERVE_CONCURRENCY, scale=1, seed=0,
                timeout=300.0, retries=8,
            )
            probe = ServeClient(fleet.address, timeout=300.0)
            final = probe.status()
            probe.close()
            healthy = final["router"]["ring"]["healthy"]
            single = tuple(final["daemons"][healthy[0]]["address"])
            speedup = measure_warm_speedup(
                fleet.address, single, programs,
                scale=1, seed=0, concurrency=SERVE_CONCURRENCY,
                timeout=300.0, retries=8,
            )
    counters = final["counters"]
    return {
        # Deterministic: the fleet never fails or drops a request...
        "serve.fleet.failed": soak["failed"] + counters["failed"],
        "serve.fleet.identity_residual": counters["completed"] - (
            counters["coalesced"] + counters["cache_hits"]
            + counters["computed"]
        ),
        # ...while latency/throughput are wall-clock, gated loosely.
        "serve.fleet.soak_p99_ms": soak["latency_ms"]["p99"],
        "serve.fleet.warm_p99_ms": soak["warm_latency_ms"]["p99"],
        "serve.fleet.warm_rps": speedup["fleet_warm_rps"],
        "serve.fleet.warm_speedup": speedup["speedup"],
    }


def bench_wpo() -> dict:
    """Incremental-relink metrics on the pinned chain program."""
    from repro.benchsuite import build_stdlib
    from repro.cache import ArtifactCache
    from repro.fuzz.generate import generate_scale_program
    from repro.linker import make_crt0
    from repro.frontend import compile_sources
    from repro.objfile.archive import Archive
    from repro.objfile.serialize import dump_archive, load_archive
    from repro.om import OMLevel, OMOptions, om_link

    crt0 = make_crt0()
    lib = build_stdlib()

    def compiled(program) -> bytes:
        return dump_archive(
            [crt0] + compile_sources(list(program.modules), "each")
        )

    def timed_link(blob: bytes, options: OMOptions, cache):
        objects = load_archive(blob)
        libmc = Archive(lib.name, load_archive(dump_archive(lib.members)))
        started = time.perf_counter()
        result = om_link(
            objects, [libmc], level=OMLevel.FULL, options=options, cache=cache
        )
        return result, time.perf_counter() - started

    wpo_options = OMOptions(partitions=WPO_PARTITIONS)
    program = generate_scale_program(WPO_SEED, WPO_MODULES)
    blob = compiled(program)
    metrics: dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-wpo-") as tmp:
        cache = ArtifactCache(tmp)
        full, full_s = timed_link(blob, OMOptions(), None)
        cold, cold_s = timed_link(blob, wpo_options, cache)
        warm, warm_s = timed_link(blob, wpo_options, cache)
        edited = generate_scale_program(WPO_SEED, WPO_MODULES, salts={1: 1})
        inc, inc_s = timed_link(compiled(edited), wpo_options, cache)
    metrics["wpo.full_link_seconds"] = full_s
    metrics["wpo.cold_link_seconds"] = cold_s
    metrics["wpo.warm_link_seconds"] = warm_s
    metrics["wpo.edit_relink_seconds"] = inc_s
    metrics["wpo.cold_misses"] = cold.wpo.misses
    metrics["wpo.warm_misses"] = warm.wpo.misses
    metrics["wpo.edit_misses"] = inc.wpo.misses
    metrics["wpo.shards"] = cold.wpo.shards
    return metrics


def bench_decaf() -> dict:
    """Decaf-frontend matrix: cost and OM metrics for the OO programs.

    Every program runs under all three linkers and both machine
    backends; outputs must be bit-identical across the whole cell
    block, so a vtable miscompile trips the gate directly.
    """
    from repro.benchsuite.suite import DECAF_PROGRAMS
    from repro.experiments import build
    from repro.machine import machine_for
    from repro.machine.jit import clear_jit_cache

    build.configure_cache(None)
    build.clear_caches()
    metrics: dict[str, float] = {}
    for program in DECAF_PROGRAMS:
        outputs = set()
        for variant in DECAF_VARIANTS:
            exe = build.link_variant(program, "each", variant, BUILD_SCALE)
            run = build.run_variant(program, "each", variant, BUILD_SCALE)
            metrics[f"decaf.{program}.{variant}.cycles"] = run.cycles
            metrics[f"decaf.{program}.{variant}.instructions"] = (
                run.instructions
            )
            outputs.add(run.output)
            clear_jit_cache()
            jit = machine_for(exe, backend="jit").run(timed=False)
            if jit.output != run.output:
                raise AssertionError(
                    f"{program}/{variant}: jit output diverges from interp"
                )
        if len(outputs) != 1:
            raise AssertionError(
                f"{program}: outputs diverge across {DECAF_VARIANTS}"
            )
        om = build.variant_stats(program, "each", "om-full", BUILD_SCALE)
        metrics[f"decaf.{program}.addr_loads_before"] = (
            om.stats.before.addr_loads
        )
        metrics[f"decaf.{program}.addr_loads_after"] = (
            om.stats.after.addr_loads
        )
    return metrics


def bench_machine() -> dict:
    """Interpreter-vs-JIT plain-run wall-clock across the benchsuite.

    Each program is linked with the standard linker and executed on
    both machine backends; the JIT is warmed (translated) before
    timing, so the metric isolates steady-state execution — the
    regime the fuzz campaign, PGO loop, and serve daemon live in.
    """
    import math

    from repro.benchsuite.suite import PROGRAMS
    from repro.experiments import build
    from repro.machine import machine_for
    from repro.machine.jit import clear_jit_cache

    metrics: dict[str, float] = {}
    speedups: list[float] = []
    for program in PROGRAMS:
        exe = build.link_variant(program, "each", "ld", BUILD_SCALE)
        clear_jit_cache()
        reference = machine_for(exe, backend="jit").run(timed=False)
        best = {"interp": float("inf"), "jit": float("inf")}
        for _ in range(MACHINE_REPS):
            for backend in ("interp", "jit"):
                machine = machine_for(exe, backend=backend)
                started = time.perf_counter()
                result = machine.run(timed=False)
                best[backend] = min(
                    best[backend], time.perf_counter() - started
                )
                if result.instructions != reference.instructions:
                    raise AssertionError(
                        f"{program}: {backend} executed "
                        f"{result.instructions} != jit warmup "
                        f"{reference.instructions}"
                    )
        speedup = best["interp"] / best["jit"]
        metrics[f"machine.{program}.instructions"] = reference.instructions
        metrics[f"machine.{program}.interp_seconds"] = best["interp"]
        metrics[f"machine.{program}.jit_seconds"] = best["jit"]
        metrics[f"machine.{program}.jit_speedup"] = speedup
        speedups.append(speedup)
    metrics["machine.jit_speedup_geomean"] = math.exp(
        sum(math.log(s) for s in speedups) / len(speedups)
    )
    return metrics


_COMPONENTS = {
    "build": bench_build,
    "serve": bench_serve,
    "serve.fleet": bench_serve_fleet,
    "wpo": bench_wpo,
    "decaf": bench_decaf,
    "machine": bench_machine,
}


def run_suite(components=None, *, log=print) -> dict:
    """Run the pinned suite and return the schema-versioned report."""
    names = list(components or _COMPONENTS)
    metrics: dict[str, float] = {}
    timings: dict[str, float] = {}
    for name in names:
        started = time.perf_counter()
        log(f"bench: running {name}...")
        metrics.update(_COMPONENTS[name]())
        timings[name] = time.perf_counter() - started
        log(f"bench: {name} done in {timings[name]:.1f}s")
    return {
        "schema": BENCH_SCHEMA,
        "components": names,
        "component_seconds": timings,
        "config": {
            "build_programs": list(BUILD_PROGRAMS),
            "build_scale": BUILD_SCALE,
            "decaf_variants": list(DECAF_VARIANTS),
            "serve_requests": SERVE_REQUESTS,
            "serve_concurrency": SERVE_CONCURRENCY,
            "fleet_size": FLEET_SIZE,
            "fleet_soak_seconds": FLEET_SOAK_SECONDS,
            "wpo_modules": WPO_MODULES,
            "wpo_partitions": WPO_PARTITIONS,
            "machine_reps": MACHINE_REPS,
        },
        "metrics": metrics,
    }


def bench_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments bench",
        description="run the pinned perf suite, write a BENCH report",
    )
    parser.add_argument("--out", default="BENCH_pinned.json",
                        help="report path")
    parser.add_argument("--components", default=None,
                        help="comma-separated subset of "
                             f"{','.join(_COMPONENTS)} (default: all)")
    args = parser.parse_args(argv)

    components = None
    if args.components:
        components = [c for c in args.components.split(",") if c]
        unknown = [c for c in components if c not in _COMPONENTS]
        if unknown:
            parser.error(f"unknown components: {unknown}")
    report = run_suite(components)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"bench: {len(report['metrics'])} metrics -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(bench_main())
