"""Figure and table generators.

Every function returns ``(header, rows)`` where rows are per-program
dicts; the final row is the unweighted arithmetic mean over the 19
programs, exactly the statistic the paper's bar-chart keys display.
"""

from __future__ import annotations

import time

from repro.benchsuite import PROGRAMS
from repro.benchsuite.suite import program_sources
from repro.experiments.build import (
    copies_for,
    profile_variant,
    run_variant,
    variant_stats,
)
from repro.linker import link
from repro.minicc import compile_all


def _selected(programs) -> list[str]:
    return list(programs) if programs else list(PROGRAMS)


def _with_mean(rows: list[dict], keys: list[str]) -> list[dict]:
    if not rows:
        return rows
    mean = {"program": "mean"}
    for key in keys:
        mean[key] = sum(row[key] for row in rows) / len(rows)
    return rows + [mean]


def fig3_rows(programs=None, scale: int | None = None):
    """Figure 3: static fraction of address loads removed.

    Per program and version: the converted (dark) and nullified (light)
    fractions for OM-simple and OM-full.
    """
    keys = []
    for mode in ("each", "all"):
        for level in ("simple", "full"):
            keys += [f"{mode}_{level}_conv", f"{mode}_{level}_null"]
    rows = []
    for name in _selected(programs):
        row = {"program": name}
        for mode in ("each", "all"):
            for level in ("simple", "full"):
                stats = variant_stats(name, mode, f"om-{level}", scale).stats
                row[f"{mode}_{level}_conv"] = stats.frac_loads_converted
                row[f"{mode}_{level}_null"] = stats.frac_loads_nullified
        rows.append(row)
    return keys, _with_mean(rows, keys)


def fig4_rows(programs=None, scale: int | None = None):
    """Figure 4: static fraction of calls requiring PV-loads (top) and
    GP-reset code (bottom), including the no-OM bars."""
    keys = []
    for mode in ("each", "all"):
        for level in ("none", "simple", "full"):
            keys += [f"{mode}_{level}_pv", f"{mode}_{level}_reset"]
    rows = []
    for name in _selected(programs):
        row = {"program": name}
        for mode in ("each", "all"):
            for level in ("none", "simple", "full"):
                stats = variant_stats(name, mode, f"om-{level}", scale).stats
                row[f"{mode}_{level}_pv"] = stats.frac_calls_with_pv_load
                row[f"{mode}_{level}_reset"] = stats.frac_calls_with_gp_reset
        rows.append(row)
    return keys, _with_mean(rows, keys)


def fig5_rows(programs=None, scale: int | None = None):
    """Figure 5: static fraction of instructions nullified/deleted."""
    keys = [f"{mode}_{level}" for mode in ("each", "all") for level in ("simple", "full")]
    rows = []
    for name in _selected(programs):
        row = {"program": name}
        for mode in ("each", "all"):
            for level in ("simple", "full"):
                stats = variant_stats(name, mode, f"om-{level}", scale).stats
                row[f"{mode}_{level}"] = stats.frac_instructions_nullified
        rows.append(row)
    return keys, _with_mean(rows, keys)


def fig6_rows(programs=None, scale: int | None = None, include_sched: bool = True):
    """Figure 6: dynamic performance improvement over the no-LTO link
    of the same program version (percent cycles saved)."""
    levels = ["om-simple", "om-full"] + (["om-full-sched"] if include_sched else [])
    keys = [
        f"{mode}_{level.removeprefix('om-')}"
        for mode in ("each", "all")
        for level in levels
    ]
    rows = []
    for name in _selected(programs):
        row = {"program": name}
        for mode in ("each", "all"):
            base = run_variant(name, mode, "ld", scale)
            for level in levels:
                result = run_variant(name, mode, level, scale)
                if result.output != base.output:
                    raise AssertionError(
                        f"{name}/{mode}/{level}: output diverges from baseline"
                    )
                improvement = 100.0 * (base.cycles - result.cycles) / base.cycles
                row[f"{mode}_{level.removeprefix('om-')}"] = improvement
        rows.append(row)
    return keys, _with_mean(rows, keys)


def gat_rows(programs=None, scale: int | None = None):
    """§5.1: GAT size before and after OM-full (compile-each)."""
    keys = ["gat_before", "gat_after", "ratio"]
    rows = []
    for name in _selected(programs):
        stats = variant_stats(name, "each", "om-full", scale).stats
        rows.append(
            {
                "program": name,
                "gat_before": stats.gat_bytes_before,
                "gat_after": stats.gat_bytes_after,
                "ratio": stats.gat_shrink_ratio,
            }
        )
    return keys, _with_mean(rows, keys)


def overhead_rows(programs=None, scale: int | None = None):
    """Dynamic address-calculation overhead, executed counts.

    For the standard link and OM-full (compile-each): executed GAT
    address loads, PV loads, GP-setup pairs, and the fraction of all
    executed instructions that is address-calculation overhead.  This
    is the measured counterpart of Fig. 6 — *why* the cycles moved.
    """
    keys = []
    for variant in ("ld", "full"):
        keys += [
            f"{variant}_gat_loads",
            f"{variant}_pv_loads",
            f"{variant}_gp_setups",
            f"{variant}_overhead_frac",
        ]
    rows = []
    for name in _selected(programs):
        row = {"program": name}
        for variant, key in (("ld", "ld"), ("om-full", "full")):
            result = profile_variant(name, "each", variant, scale)
            counts = result.overhead
            row[f"{key}_gat_loads"] = counts.gat_loads
            row[f"{key}_pv_loads"] = counts.pv_loads
            row[f"{key}_gp_setups"] = counts.gp_setup_pairs
            row[f"{key}_overhead_frac"] = (
                counts.instructions / result.run.instructions
                if result.run.instructions
                else 0.0
            )
        rows.append(row)
    return keys, _with_mean(rows, keys)


def pgo_rows(programs=None, scale: int | None = None):
    """The closed PGO loop: om-full vs. profile-fed om-full-layout.

    Per program (compile-each): cycles on both sides and the percent
    saved, direct-call bsr conversions and the conversion rate, executed
    GAT address loads, and the layout subsystem's own telemetry
    (procedures moved, relaxation iterations/demotions).

    Invariants are asserted, not just reported: the layout build must
    produce byte-identical output, must convert at least as many call
    sites to bsr, and must not execute more GAT loads.
    """
    keys = [
        "full_cycles",
        "layout_cycles",
        "cycles_delta_pct",
        "full_bsr",
        "layout_bsr",
        "layout_bsr_rate",
        "full_gat_exec",
        "layout_gat_exec",
        "procs_moved",
        "relax_iters",
    ]
    rows = []
    for name in _selected(programs):
        base = variant_stats(name, "each", "om-full", scale)
        layout = variant_stats(name, "each", "om-full-layout", scale)
        base_prof = profile_variant(name, "each", "om-full", scale)
        layout_prof = profile_variant(name, "each", "om-full-layout", scale)
        if layout_prof.run.output != base_prof.run.output:
            raise AssertionError(
                f"{name}: om-full-layout output diverges from om-full"
            )
        if layout.counters.jsr_to_bsr < base.counters.jsr_to_bsr:
            raise AssertionError(
                f"{name}: layout converted fewer jsr->bsr "
                f"({layout.counters.jsr_to_bsr} < {base.counters.jsr_to_bsr})"
            )
        if layout_prof.overhead.gat_loads > base_prof.overhead.gat_loads:
            raise AssertionError(
                f"{name}: layout executed more GAT loads "
                f"({layout_prof.overhead.gat_loads} > "
                f"{base_prof.overhead.gat_loads})"
            )
        direct_calls = max(
            layout.stats.before.calls - layout.stats.before.indirect_calls, 1
        )
        rows.append(
            {
                "program": name,
                "full_cycles": base_prof.run.cycles,
                "layout_cycles": layout_prof.run.cycles,
                "cycles_delta_pct": 100.0
                * (base_prof.run.cycles - layout_prof.run.cycles)
                / max(base_prof.run.cycles, 1),
                "full_bsr": base.counters.jsr_to_bsr,
                "layout_bsr": layout.counters.jsr_to_bsr,
                "layout_bsr_rate": layout.counters.jsr_to_bsr / direct_calls,
                "full_gat_exec": base_prof.overhead.gat_loads,
                "layout_gat_exec": layout_prof.overhead.gat_loads,
                "procs_moved": layout.stats.procs_moved,
                "relax_iters": layout.stats.relax_iterations,
            }
        )
    return keys, _with_mean(rows, keys)


def profile_rows(
    name: str,
    mode: str = "each",
    variant: str = "om-full",
    scale: int | None = None,
    top: int = 10,
):
    """Per-procedure profile of one build: instruction and cycle
    attribution plus the executed overhead inside each procedure.

    The name key is ``program`` so the rows render with the standard
    table formatter, but each row is one *procedure* of the build.
    """
    keys = [
        "instructions",
        "fraction",
        "cycles",
        "cycle_fraction",
        "gat_loads",
        "pv_loads",
        "gp_setups",
    ]
    result = profile_variant(name, mode, variant, scale)
    rows = []
    for proc in result.procs[:top]:
        rows.append(
            {
                "program": proc.name,
                "instructions": proc.instructions,
                "fraction": proc.fraction,
                "cycles": proc.cycles,
                "cycle_fraction": proc.cycle_fraction,
                "gat_loads": proc.gat_loads,
                "pv_loads": proc.pv_loads,
                "gp_setups": proc.gp_setup_pairs,
            }
        )
    return keys, rows


#: Pipeline link-variant -> Fig. 7 column.
_FIG7_VARIANT_KEYS = {
    "ld": "ld",
    "om-none": "om_none",
    "om-simple": "om_simple",
    "om-full": "om_full",
    "om-full-sched": "om_sched",
}


def fig7_rows(programs=None, scale: int | None = None, *, link_timings=None):
    """Figure 7: build times in seconds.

    Columns: standard link from objects; full build from source with
    interprocedural optimization (compile-all + link); OM from objects
    at no-opt / simple / full / full+sched.

    ``link_timings`` maps (program, mode, variant) to the cold wall time
    the parallel pipeline already measured for that cell
    (``PipelineMetrics.link_seconds``); cells present there are reused
    instead of being re-linked, the rest are measured inline.  The
    interprocedural build-from-source column is always measured inline —
    the pipeline never recompiles what it can serve from cache.
    """
    keys = ["ld", "interproc_build", "om_none", "om_simple", "om_full", "om_sched"]
    link_timings = link_timings or {}
    rows = []
    for name in _selected(programs):
        objects, lib = copies_for(name, "each", scale)
        row = {"program": name}

        seconds = link_timings.get((name, "each", "ld"))
        if seconds is None:
            start = time.perf_counter()
            link(objects, [lib])
            seconds = time.perf_counter() - start
        row["ld"] = seconds

        start = time.perf_counter()
        sources = [(f, t) for f, t in program_sources(name)]
        unit = compile_all(sources, f"{name}_all.o")
        link([objects[0], unit], [lib])
        row["interproc_build"] = time.perf_counter() - start

        from repro.om import OMLevel, OMOptions, om_link

        for variant, (key, level, sched) in {
            "om-none": ("om_none", OMLevel.NONE, False),
            "om-simple": ("om_simple", OMLevel.SIMPLE, False),
            "om-full": ("om_full", OMLevel.FULL, False),
            "om-full-sched": ("om_sched", OMLevel.FULL, True),
        }.items():
            seconds = link_timings.get((name, "each", variant))
            if seconds is None:
                start = time.perf_counter()
                om_link(objects, [lib], level=level, options=OMOptions(schedule=sched))
                seconds = time.perf_counter() - start
            row[key] = seconds
        rows.append(row)
    return keys, _with_mean(rows, keys)
