"""Build plumbing for the experiments: compile, link, cache.

Variants mirror the paper's build matrix:

* program versions: ``each`` (compile-each) and ``all`` (compile-all);
* link variants: ``ld`` (standard link), ``om-none`` (OM translate and
  regenerate only), ``om-simple``, ``om-full``, ``om-full-sched``,
  ``om-full-layout`` (the closed PGO loop), and ``om-full-wpo`` (the
  partitioned whole-program optimizer — byte-identical to ``om-full``
  and incrementally cached per shard).

Caching is two-tier.  The in-process tier is the ``lru_cache``
memoization every caller has always relied on.  Beneath it sits an
optional process-wide content-addressed disk cache
(:func:`configure_cache`): artifact keys are SHA-256 digests of the
source texts, the ``Options``/``OMOptions`` fields, and the toolchain
version stamp, so a warm cache serves bit-identical objects,
executables, and simulator results across processes with zero compiles
or links.  ``link``/``om_link`` always receive *private copies* of the
memoized inputs, so in-place mutation inside a linker can never corrupt
the shared cached objects across variants.
"""

from __future__ import annotations

import functools
import json
from dataclasses import asdict

from repro.benchsuite import build_program, build_stdlib
from repro.benchsuite.suite import scaled_sources, stdlib_sources
from repro.cache import ArtifactCache
from repro.linker import link, make_crt0
from repro.linker.executable import Executable, dump_executable, load_executable
from repro.machine import RunResult, run
from repro.machine.profile import ProfileResult, profile
from repro.minicc import Options
from repro.objfile.archive import Archive
from repro.objfile.serialize import dump_archive, load_archive
from repro.om import OMLevel, OMOptions, OMResult, om_link
from repro.om.stats import CodeCounts, OMStats
from repro.om.transform import PassCounters

VARIANTS = (
    "ld",
    "om-none",
    "om-simple",
    "om-full",
    "om-full-sched",
    "om-full-layout",
    "om-full-wpo",
)

#: Variants whose link consumes a profile of another variant's run
#: (the closed PGO loop).  Each feeds on the named base variant.
FEEDBACK_VARIANTS = {"om-full-layout": "om-full"}

_LEVELS = {
    "om-none": (OMLevel.NONE, OMOptions()),
    "om-simple": (OMLevel.SIMPLE, OMOptions()),
    "om-full": (OMLevel.FULL, OMOptions()),
    "om-full-sched": (OMLevel.FULL, OMOptions(schedule=True)),
    "om-full-layout": (OMLevel.FULL, OMOptions(layout=True, relax=True)),
    # Partitioned WPO: byte-identical to om-full, but the transform
    # rounds shard and content-address through the installed cache.
    "om-full-wpo": (OMLevel.FULL, OMOptions(partitions=4)),
}

#: The process-wide disk cache; None means in-process memoization only.
_cache: ArtifactCache | None = None


def configure_cache(cache: ArtifactCache | None) -> ArtifactCache | None:
    """Install (or remove) the process-wide artifact cache.

    Clears the in-process memoization so stale entries built under a
    different cache configuration cannot leak through; returns the
    previously installed cache.
    """
    global _cache
    previous = _cache
    _cache = cache
    clear_caches()
    return previous


def active_cache() -> ArtifactCache | None:
    """The currently installed disk cache, if any."""
    return _cache


# -- content keys --------------------------------------------------------------


def _om_payload(variant: str) -> dict:
    level, options = _LEVELS[variant]
    payload = {"level": level.value, **asdict(options)}
    if variant in FEEDBACK_VARIANTS:
        # The feedback link depends on the base variant's profiled run;
        # naming it in the key keeps the cells content-addressed.
        payload["feedback"] = FEEDBACK_VARIANTS[variant]
    return payload


def _build_payload(name: str, mode: str, scale: int | None) -> dict:
    return {
        "artifact": "objects",
        "program": name,
        "mode": mode,
        "sources": [list(pair) for pair in scaled_sources(name, scale)],
        "options": asdict(Options()),
    }


def _stdlib_payload() -> dict:
    return {
        "artifact": "stdlib",
        "sources": [[fname, text] for fname, text in stdlib_sources()],
        "options": asdict(Options()),
    }


def _cell_payload(
    stage: str, name: str, mode: str, variant: str, scale: int | None
) -> dict:
    payload = _build_payload(name, mode, scale)
    payload["artifact"] = stage
    payload["variant"] = variant
    payload["om"] = _om_payload(variant) if variant != "ld" else None
    return payload


# -- OMResult serialization ----------------------------------------------------


def _dump_om_result(result: OMResult) -> bytes:
    meta = json.dumps(
        {"stats": asdict(result.stats), "counters": asdict(result.counters)}
    ).encode()
    exe = dump_executable(result.executable)
    return len(meta).to_bytes(4, "little") + meta + exe


def _load_om_result(data: bytes) -> OMResult:
    meta_len = int.from_bytes(data[:4], "little")
    meta = json.loads(data[4 : 4 + meta_len])
    stats_fields = dict(meta["stats"])
    stats_fields["before"] = CodeCounts(**stats_fields["before"])
    stats_fields["after"] = CodeCounts(**stats_fields["after"])
    return OMResult(
        executable=load_executable(data[4 + meta_len :]),
        stats=OMStats(**stats_fields),
        counters=PassCounters(**meta["counters"]),
    )


# -- ProfileResult serialization -----------------------------------------------


def _dump_profile_result(result: ProfileResult) -> bytes:
    return result.to_json()


def _load_profile_result(data: bytes) -> ProfileResult:
    return ProfileResult.from_json(data)


# -- build stages --------------------------------------------------------------


@functools.lru_cache(maxsize=4)
def _stdlib_archive() -> Archive:
    """The ``libmc`` archive, via the disk cache when one is installed."""
    if _cache is None:
        return build_stdlib()
    key = _cache.key(_stdlib_payload())
    data = _cache.get("stdlib", key)
    if data is not None:
        return Archive("libmc", load_archive(data))
    lib = build_stdlib()
    _cache.put("stdlib", key, dump_archive(lib.members))
    return lib


@functools.lru_cache(maxsize=256)
def build_objects(name: str, mode: str, scale: int | None = None):
    """Compile one benchmark version; returns (objects, stdlib archive)."""
    lib = _stdlib_archive()
    if _cache is None:
        return [make_crt0()] + build_program(name, mode, scale=scale), lib
    key = _cache.key(_build_payload(name, mode, scale))
    data = _cache.get("objects", key)
    if data is not None:
        return load_archive(data), lib
    objects = [make_crt0()] + build_program(name, mode, scale=scale)
    _cache.put("objects", key, dump_archive(objects))
    return objects, lib


def copies_for(name: str, mode: str, scale: int | None = None):
    """Private copies of the memoized (objects, stdlib) pair.

    This is the cache boundary: linkers get copies so any in-place
    mutation they might perform cannot corrupt the shared memoized
    objects that later variants will link from.
    """
    objects, lib = build_objects(name, mode, scale)
    fresh_objects = load_archive(dump_archive(objects))
    fresh_lib = Archive(lib.name, load_archive(dump_archive(lib.members)))
    return fresh_objects, fresh_lib


@functools.lru_cache(maxsize=1024)
def link_variant(
    name: str, mode: str, variant: str, scale: int | None = None
) -> Executable:
    """Link one benchmark version with one link variant."""
    if variant != "ld":
        # One OM link serves both the executable and the stats callers.
        return variant_stats(name, mode, variant, scale).executable
    if _cache is not None:
        key = _cache.key(_cell_payload("exe", name, mode, variant, scale))
        data = _cache.get("exe", key)
        if data is not None:
            return load_executable(data)
    objects, lib = copies_for(name, mode, scale)
    executable = link(objects, [lib])
    if _cache is not None:
        _cache.put("exe", key, dump_executable(executable))
    return executable


@functools.lru_cache(maxsize=1024)
def variant_stats(
    name: str, mode: str, variant: str, scale: int | None = None
) -> OMResult:
    """Full OM result (stats included) for a non-ld variant."""
    if _cache is not None:
        key = _cache.key(_cell_payload("omresult", name, mode, variant, scale))
        data = _cache.get("omresult", key)
        if data is not None:
            return _load_om_result(data)
    objects, lib = copies_for(name, mode, scale)
    level, options = _LEVELS[variant]
    profile_in = None
    if variant in FEEDBACK_VARIANTS:
        profile_in = profile_variant(name, mode, FEEDBACK_VARIANTS[variant], scale)
    result = om_link(
        objects,
        [lib],
        level=level,
        options=options,
        profile=profile_in,
        cache=_cache,
    )
    if _cache is not None:
        _cache.put("omresult", key, _dump_om_result(result))
    return result


@functools.lru_cache(maxsize=1024)
def run_variant(
    name: str, mode: str, variant: str, scale: int | None = None
) -> RunResult:
    """Execute one build on the timing simulator."""
    if _cache is not None:
        key = _cache.key(_cell_payload("run", name, mode, variant, scale))
        data = _cache.get("run", key)
        if data is not None:
            return RunResult(**json.loads(data))
    result = run(link_variant(name, mode, variant, scale))
    if _cache is not None:
        _cache.put("run", key, json.dumps(asdict(result)).encode())
    return result


@functools.lru_cache(maxsize=1024)
def profile_variant(
    name: str, mode: str, variant: str, scale: int | None = None
) -> ProfileResult:
    """Execute one build on the profiling simulator (timed model).

    The profiled run shares the timing model with :func:`run_variant`,
    so ``profile_variant(...).run.cycles == run_variant(...).cycles``.
    """
    if _cache is not None:
        key = _cache.key(_cell_payload("profile", name, mode, variant, scale))
        data = _cache.get("profile", key)
        if data is not None:
            return _load_profile_result(data)
    result = profile(link_variant(name, mode, variant, scale))
    if _cache is not None:
        _cache.put("profile", key, _dump_profile_result(result))
    return result


def clear_caches() -> None:
    """Drop all in-process memoized builds (tests use this between
    scales).  The on-disk artifact cache, if any, is left intact —
    dropping memoization must never force a recompile the disk cache
    could serve."""
    build_objects.cache_clear()
    link_variant.cache_clear()
    variant_stats.cache_clear()
    run_variant.cache_clear()
    profile_variant.cache_clear()
    _stdlib_archive.cache_clear()
    build_stdlib.cache_clear()
