"""Build plumbing for the experiments: compile, link, cache.

Variants mirror the paper's build matrix:

* program versions: ``each`` (compile-each) and ``all`` (compile-all);
* link variants: ``ld`` (standard link), ``om-none`` (OM translate and
  regenerate only), ``om-simple``, ``om-full``, ``om-full-sched``.
"""

from __future__ import annotations

import functools

from repro.benchsuite import build_program, build_stdlib
from repro.linker import link, make_crt0
from repro.linker.executable import Executable
from repro.machine import RunResult, run
from repro.om import OMLevel, OMOptions, OMResult, om_link

VARIANTS = ("ld", "om-none", "om-simple", "om-full", "om-full-sched")

_LEVELS = {
    "om-none": (OMLevel.NONE, False),
    "om-simple": (OMLevel.SIMPLE, False),
    "om-full": (OMLevel.FULL, False),
    "om-full-sched": (OMLevel.FULL, True),
}


@functools.lru_cache(maxsize=256)
def build_objects(name: str, mode: str, scale: int | None = None):
    """Compile one benchmark version; returns (objects, stdlib archive)."""
    objects = [make_crt0()] + build_program(name, mode, scale=scale)
    return objects, build_stdlib()


@functools.lru_cache(maxsize=1024)
def link_variant(
    name: str, mode: str, variant: str, scale: int | None = None
) -> Executable:
    """Link one benchmark version with one link variant."""
    objects, lib = build_objects(name, mode, scale)
    if variant == "ld":
        return link(objects, [lib])
    level, schedule = _LEVELS[variant]
    result = om_link(
        objects, [lib], level=level, options=OMOptions(schedule=schedule)
    )
    return result.executable


@functools.lru_cache(maxsize=1024)
def variant_stats(
    name: str, mode: str, variant: str, scale: int | None = None
) -> OMResult:
    """Full OM result (stats included) for a non-ld variant."""
    objects, lib = build_objects(name, mode, scale)
    level, schedule = _LEVELS[variant]
    return om_link(objects, [lib], level=level, options=OMOptions(schedule=schedule))


@functools.lru_cache(maxsize=1024)
def run_variant(
    name: str, mode: str, variant: str, scale: int | None = None
) -> RunResult:
    """Execute one build on the timing simulator."""
    return run(link_variant(name, mode, variant, scale))


def clear_caches() -> None:
    """Drop all memoized builds (tests use this between scales)."""
    build_objects.cache_clear()
    link_variant.cache_clear()
    variant_stats.cache_clear()
    run_variant.cache_clear()
