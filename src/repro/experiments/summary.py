"""The one-screen paper-vs-measured summary.

``python -m repro.experiments summary`` computes the headline means the
paper reports and prints them next to the paper's numbers, with a
shape verdict per line.  This is the quantitative core of
EXPERIMENTS.md, regenerated on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import figures


@dataclass
class Claim:
    label: str
    paper: str
    measure: float
    lo: float
    hi: float

    @property
    def verdict(self) -> str:
        return "ok" if self.lo <= self.measure <= self.hi else "OUT OF BAND"


def compute_summary(
    programs=None, scale=None, include_dynamic: bool = True, *, jobs: int = 1
):
    """Compute the headline claims; returns a list of :class:`Claim`.

    ``jobs > 1`` prewarms every cell the summary touches through the
    parallel build/run pipeline first (requires a configured artifact
    cache; see :func:`repro.experiments.build.configure_cache`).
    """
    if jobs > 1:
        from repro.experiments.pipeline import prewarm

        prewarm(["summary"], programs=programs, scale=scale, jobs=jobs)
    claims: list[Claim] = []

    __, fig3 = figures.fig3_rows(programs=programs, scale=scale)
    mean3 = fig3[-1]
    claims.append(
        Claim(
            "fig3: OM-simple address loads removed (compile-each)",
            "~50%",
            100 * (mean3["each_simple_conv"] + mean3["each_simple_null"]),
            25, 75,
        )
    )
    claims.append(
        Claim(
            "fig3: OM-full address loads removed (compile-each)",
            "nearly all",
            100 * (mean3["each_full_conv"] + mean3["each_full_null"]),
            80, 100,
        )
    )

    __, fig4 = figures.fig4_rows(programs=programs, scale=scale)
    mean4 = fig4[-1]
    claims.append(
        Claim(
            "fig4: calls w/ PV-load, no OM (compile-each)",
            "~95%", 100 * mean4["each_none_pv"], 85, 100,
        )
    )
    claims.append(
        Claim(
            "fig4: calls w/ PV-load after OM-simple",
            "most remain", 100 * mean4["each_simple_pv"], 50, 100,
        )
    )
    claims.append(
        Claim(
            "fig4: calls w/ PV-load after OM-full",
            "only proc-variable calls", 100 * mean4["each_full_pv"], 0, 15,
        )
    )
    claims.append(
        Claim(
            "fig4: calls w/ GP-reset after OM-simple",
            "mostly removed", 100 * mean4["each_simple_reset"], 0, 20,
        )
    )

    __, fig5 = figures.fig5_rows(programs=programs, scale=scale)
    mean5 = fig5[-1]
    claims.append(
        Claim("fig5: instructions nullified, OM-simple", "~6%",
              100 * mean5["each_simple"], 2, 15)
    )
    claims.append(
        Claim("fig5: instructions deleted, OM-full", "~11%",
              100 * mean5["each_full"], 8, 25)
    )

    __, gat = figures.gat_rows(programs=programs, scale=scale)
    claims.append(
        Claim("gat: size after OM-full", "3-15% of original",
              100 * gat[-1]["ratio"], 0, 25)
    )

    if include_dynamic:
        __, fig6 = figures.fig6_rows(programs=programs, scale=scale, include_sched=False)
        mean6 = fig6[-1]
        claims.append(
            Claim("fig6: dynamic improvement, OM-simple (each)", "1.5%",
                  mean6["each_simple"], 0.3, 6)
        )
        claims.append(
            Claim("fig6: dynamic improvement, OM-full (each)", "3.8%",
                  mean6["each_full"], 1, 9)
        )
        claims.append(
            Claim("fig6: dynamic improvement, OM-full (all)", "3.4%",
                  mean6["all_full"], 0.8, 9)
        )
    return claims


def print_summary(claims: list[Claim]) -> None:
    width = max(len(c.label) for c in claims)
    print(f"{'claim'.ljust(width)}  {'paper':>24}  {'measured':>9}  verdict")
    print("-" * (width + 48))
    for claim in claims:
        print(
            f"{claim.label.ljust(width)}  {claim.paper:>24}  "
            f"{claim.measure:8.1f}%  {claim.verdict}"
        )
