"""Perf-regression gate: ``python -m repro.experiments regress``.

Compares a ``BENCH_*.json`` report from :mod:`.bench` against the
committed baselines in ``benchmarks/baselines/`` and renders a
machine-readable verdict.  Every baseline entry pins one metric:

.. code-block:: json

    {"value": 123.0, "direction": "lower", "tolerance": 0.05}

``direction`` says which way is *better* — ``lower`` fails when the
new value exceeds ``value * (1 + tolerance)``, ``higher`` fails below
``value * (1 - tolerance)``, and ``either`` fails when the relative
deviation exceeds the tolerance in both directions (a zero-valued
baseline falls back to an absolute comparison).  Deterministic metrics
(simulated cycles, shard-miss counts, counter identities) carry zero
tolerance: any drift is a real behavior change.  Wall-clock metrics
carry deliberately generous tolerances so CI machine noise passes but
an order-of-magnitude slowdown does not.

``--update-baselines`` regenerates the baseline file from a report
(assigning each metric its default direction/tolerance) — the refresh
procedure after an *intentional* perf change.  ``--inject name=value``
overrides one metric of the report before comparison; CI uses it to
prove the gate actually trips on a synthetic regression.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.experiments.bench import BENCH_SCHEMA

BASELINE_SCHEMA = "repro-bench-baseline/1"

#: Default baseline path, relative to the repo root.
DEFAULT_BASELINES = "benchmarks/baselines/bench.json"

#: (suffix-match rules, first hit wins) -> (direction, tolerance).
#: Deterministic metrics get zero tolerance; wall-clock metrics get
#: generous, direction-aware slack.
_SPEC_RULES = (
    (".link_seconds", ("lower", 3.0)),
    ("_link_seconds", ("lower", 3.0)),
    ("_relink_seconds", ("lower", 3.0)),
    (".throughput_rps", ("higher", 0.85)),
    ("_rps", ("higher", 0.85)),
    # Per-program wall seconds on a loaded CI box swing wildly in both
    # directions; the speedup ratios (and especially the geomean) are
    # the stable signal, so they carry the tight direction-aware floor.
    (".interp_seconds", ("lower", 3.0)),
    (".jit_seconds", ("lower", 3.0)),
    ("_speedup_geomean", ("higher", 0.5)),
    ("_speedup", ("higher", 0.95)),
    (".p50_ms", ("lower", 5.0)),
    (".p95_ms", ("lower", 5.0)),
    ("_p99_ms", ("lower", 5.0)),
    (".failed", ("either", 0.0)),
    (".cycles", ("either", 0.0)),
    (".instructions", ("either", 0.0)),
    ("_misses", ("either", 0.0)),
    (".shards", ("either", 0.0)),
    (".completed", ("either", 0.0)),
    ("_residual", ("either", 0.0)),
    ("addr_loads_before", ("either", 0.0)),
    ("addr_loads_after", ("either", 0.0)),
    ("gat_bytes_before", ("either", 0.0)),
    ("gat_bytes_after", ("either", 0.0)),
)

#: Fallback for metrics no rule matches: any direction, 50% slack.
_DEFAULT_SPEC = ("either", 0.5)


def spec_for(name: str) -> tuple[str, float]:
    """The default (direction, tolerance) for a metric name."""
    for suffix, spec in _SPEC_RULES:
        if name.endswith(suffix):
            return spec
    return _DEFAULT_SPEC


def make_baselines(report: dict) -> dict:
    """A baseline file body pinning every metric of a bench report."""
    entries = {}
    for name, value in sorted(report["metrics"].items()):
        direction, tolerance = spec_for(name)
        entries[name] = {
            "value": value, "direction": direction, "tolerance": tolerance,
        }
    return {
        "schema": BASELINE_SCHEMA,
        "bench_schema": report["schema"],
        "metrics": entries,
    }


def _check(name: str, entry: dict, value: float) -> dict:
    base = float(entry["value"])
    direction = entry.get("direction", "either")
    tolerance = float(entry.get("tolerance", 0.0))
    if base == 0.0:
        # Relative tolerance is meaningless at zero: compare absolutely
        # (a zero baseline with zero tolerance demands an exact zero).
        deviation = abs(value)
        ok = deviation <= tolerance
    else:
        deviation = (value - base) / abs(base)
        if direction == "lower":
            ok = deviation <= tolerance
        elif direction == "higher":
            ok = deviation >= -tolerance
        else:
            ok = abs(deviation) <= tolerance
    return {
        "metric": name,
        "ok": ok,
        "baseline": base,
        "value": value,
        "deviation": deviation,
        "direction": direction,
        "tolerance": tolerance,
    }


def compare(baselines: dict, report: dict) -> dict:
    """The verdict object: per-metric checks plus missing/new series."""
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"report schema {report.get('schema')!r} != {BENCH_SCHEMA!r}"
        )
    if baselines.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline schema {baselines.get('schema')!r} != "
            f"{BASELINE_SCHEMA!r}"
        )
    metrics = report["metrics"]
    checks = []
    missing = []
    for name, entry in sorted(baselines["metrics"].items()):
        if name not in metrics:
            missing.append(name)
            continue
        checks.append(_check(name, entry, float(metrics[name])))
    new = sorted(set(metrics) - set(baselines["metrics"]))
    failures = [check for check in checks if not check["ok"]]
    return {
        "ok": not failures and not missing,
        "checked": len(checks),
        "failures": failures,
        "missing_metrics": missing,
        "new_metrics": new,
    }


def _parse_injections(items) -> dict[str, float]:
    out = {}
    for item in items or ():
        name, _, value = item.partition("=")
        if not name or not value:
            raise ValueError(f"--inject wants name=value, got {item!r}")
        out[name] = float(value)
    return out


def regress_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments regress",
        description="compare a bench report against committed baselines",
    )
    parser.add_argument("--report", default="BENCH_pinned.json",
                        help="bench report to judge")
    parser.add_argument("--baselines", default=DEFAULT_BASELINES,
                        help="baseline file (committed)")
    parser.add_argument("--out", default=None,
                        help="also write the verdict JSON here")
    parser.add_argument("--update-baselines", action="store_true",
                        help="regenerate the baseline file from the report "
                             "(after an intentional perf change)")
    parser.add_argument("--inject", action="append", metavar="NAME=VALUE",
                        help="override one report metric before comparing "
                             "(CI uses this to prove the gate trips)")
    args = parser.parse_args(argv)

    report = json.loads(Path(args.report).read_text())
    if args.update_baselines:
        baselines = make_baselines(report)
        path = Path(args.baselines)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(baselines, indent=2) + "\n")
        print(f"regress: baselines for {len(baselines['metrics'])} metrics "
              f"-> {path}")
        return 0

    for name, value in _parse_injections(args.inject).items():
        if name not in report["metrics"]:
            parser.error(f"--inject names unknown metric {name!r}")
        report["metrics"][name] = value

    baselines = json.loads(Path(args.baselines).read_text())
    verdict = compare(baselines, report)
    if args.out:
        Path(args.out).write_text(json.dumps(verdict, indent=2) + "\n")

    for check in verdict["failures"]:
        print(
            f"  FAIL  {check['metric']}  baseline={check['baseline']:g} "
            f"value={check['value']:g} deviation={check['deviation']:+.1%} "
            f"(direction={check['direction']}, "
            f"tolerance={check['tolerance']:g})"
        )
    for name in verdict["missing_metrics"]:
        print(f"  FAIL  {name}  missing from the report")
    for name in verdict["new_metrics"]:
        print(f"  note  {name}  not in baselines (run --update-baselines)")
    print(
        f"regress: {verdict['checked']} checked, "
        f"{len(verdict['failures'])} failed, "
        f"{len(verdict['missing_metrics'])} missing -> "
        f"{'OK' if verdict['ok'] else 'FAIL'}"
    )
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(regress_main())
