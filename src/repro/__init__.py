"""repro — a reproduction of Srivastava & Wall, "Link-Time Optimization
of Address Calculation on a 64-bit Architecture" (PLDI 1994).

The package contains the paper's system (the OM optimizing linker) and
every substrate it needs, built from scratch in Python:

* :mod:`repro.isa` — the Alpha AXP-subset instruction set;
* :mod:`repro.objfile` — the ECOFF-like relocatable object format;
* :mod:`repro.minicc` — the MiniC compiler emitting the conservative
  64-bit address-calculation model;
* :mod:`repro.linker` — the standard linker baseline;
* :mod:`repro.om` — **the paper's contribution**: link-time address-
  calculation optimization over a symbolic program form;
* :mod:`repro.machine` — the dual-issue AXP timing simulator;
* :mod:`repro.benchsuite` — the 19-program SPEC92-named workload suite;
* :mod:`repro.experiments` — regeneration of every evaluation figure.

Typical use::

    from repro import compile_module, link, make_crt0, om_link, run
    from repro import OMLevel, build_stdlib

    objs = [make_crt0(), compile_module(source, "prog.o")]
    lib = build_stdlib()
    baseline = run(link(objs, [lib]))
    optimized = run(om_link(objs, [lib], level=OMLevel.FULL).executable)
"""

from repro.benchsuite import PROGRAMS, build_program, build_stdlib
from repro.linker import link, make_crt0
from repro.machine import Machine, RunResult, run
from repro.minicc import Options, compile_all, compile_module
from repro.objfile import Archive, ObjectFile
from repro.om import OMLevel, OMOptions, OMResult, OMStats, om_link

__version__ = "1.0.0"

__all__ = [
    "PROGRAMS",
    "build_program",
    "build_stdlib",
    "link",
    "make_crt0",
    "Machine",
    "RunResult",
    "run",
    "Options",
    "compile_all",
    "compile_module",
    "Archive",
    "ObjectFile",
    "OMLevel",
    "OMOptions",
    "OMResult",
    "OMStats",
    "om_link",
    "__version__",
]
