"""Functional and timing simulation of the AXP subset.

The executable's text is pre-decoded once into flat operation tuples;
the interpreter loop dispatches on a small integer kind.  Two loops are
provided: a plain functional one (used by correctness tests) and a timed
one that additionally models the paper's performance terms:

* in-order dual issue (one integer op may pair with one memory/control
  op — see :mod:`repro.isa.timing`);
* load-use and multiply latencies via per-register ready times;
* direct-mapped split 8KB I/D caches with a fixed miss penalty;
* a one-cycle bubble for taken branches.

The timed loop is also the source of the ``getticks`` PAL call's value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import PalFunc
from repro.isa.timing import (
    CACHE_LINE,
    CACHE_MISS_PENALTY,
    DCACHE_BYTES,
    ICACHE_BYTES,
    LOAD_LATENCY,
    MUL_LATENCY,
    TAKEN_BRANCH_PENALTY,
)
from repro.linker.executable import Executable, STACK_BYTES, STACK_TOP

_MASK = (1 << 64) - 1

# Operation kind codes for the pre-decoded stream.
(
    K_LDA, K_LDAH, K_LDQ, K_STQ, K_LDL, K_STL, K_LDBU, K_STB, K_LDQ_U,
    K_OP_RR, K_OP_RL, K_BR, K_BSR, K_CBR, K_JSR, K_RET, K_JMP, K_PAL,
) = range(18)

# Operate-function codes for K_OP_*: index into _OPERATE handlers.
_OPERATE_NAMES = [
    "addq", "subq", "mulq", "s4addq", "s8addq", "addl", "subl", "mull",
    "umulh", "cmpeq", "cmplt", "cmple", "cmpult", "cmpule", "and", "bic",
    "bis", "ornot", "xor", "eqv", "sll", "srl", "sra", "cmoveq", "cmovne",
    "cmovlt", "cmovge", "cmovle", "cmovgt", "cmovlbs", "cmovlbc",
]
_OPERATE_CODE = {name: i for i, name in enumerate(_OPERATE_NAMES)}

_COND_BRANCH_NAMES = {
    "beq": 0, "bne": 1, "blt": 2, "ble": 3, "bge": 4, "bgt": 5,
    "blbc": 6, "blbs": 7,
}


class MachineError(Exception):
    """Bad memory access, undecodable instruction, or runaway program."""


class ExecutionBudgetExceeded(MachineError):
    """The run overran its ``max_instructions`` step budget.

    A :class:`MachineError` subclass (existing handlers keep working),
    but distinguishable so a caller that *bounded* a run on purpose —
    the toolchain daemon capping a ``run`` request, the fuzz oracle's
    termination check — can tell "looping program" apart from "broken
    program".
    """

    def __init__(self, limit: int):
        super().__init__(f"instruction limit {limit} exceeded")
        self.limit = limit


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    output: str
    instructions: int
    cycles: int
    icache_misses: int = 0
    dcache_misses: int = 0
    dual_issues: int = 0
    halted: bool = True

    @property
    def cpi(self) -> float:
        return self.cycles / max(self.instructions, 1)


@dataclass
class Machine:
    """A loaded program instance ready to run."""

    executable: Executable
    max_instructions: int = 200_000_000

    _decoded: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        exe = self.executable
        self.text_base = exe.segments[0].vaddr
        self.text = bytes(exe.segments[0].data)
        data_seg = exe.segments[1]
        self.data_base = data_seg.vaddr
        data_end = data_seg.end
        for vaddr, size in exe.zeroed:
            data_end = max(data_end, vaddr + size)
        self.data = bytearray(data_end - self.data_base)
        self.data[: len(data_seg.data)] = data_seg.data
        self.data_limit = self.data_base + len(self.data)
        self.stack_base = STACK_TOP - STACK_BYTES
        self.stack = bytearray(STACK_BYTES)
        self._decoded = _predecode(self.text, self.text_base)

    # -- memory helpers (shared by both loops) ---------------------------------

    def _load_q(self, addr: int) -> int:
        if addr & 7:
            raise MachineError(f"unaligned load at {addr:#x}")
        if self.data_base <= addr < self.data_limit:
            off = addr - self.data_base
            return int.from_bytes(self.data[off : off + 8], "little")
        if self.stack_base <= addr < STACK_TOP:
            off = addr - self.stack_base
            return int.from_bytes(self.stack[off : off + 8], "little")
        if self.text_base <= addr < self.text_base + len(self.text):
            off = addr - self.text_base
            return int.from_bytes(self.text[off : off + 8], "little")
        raise MachineError(f"load from unmapped address {addr:#x}")

    def _store_q(self, addr: int, value: int) -> None:
        if addr & 7:
            raise MachineError(f"unaligned store at {addr:#x}")
        value &= _MASK
        if self.data_base <= addr < self.data_limit:
            off = addr - self.data_base
            self.data[off : off + 8] = value.to_bytes(8, "little")
            return
        if self.stack_base <= addr < STACK_TOP:
            off = addr - self.stack_base
            self.stack[off : off + 8] = value.to_bytes(8, "little")
            return
        raise MachineError(f"store to unmapped address {addr:#x}")

    def _load_byte(self, addr: int) -> int:
        quad = self._load_q(addr & ~7)
        return (quad >> ((addr & 7) * 8)) & 0xFF

    def _store_byte(self, addr: int, value: int) -> None:
        shift = (addr & 7) * 8
        quad = self._load_q(addr & ~7)
        quad = (quad & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self._store_q(addr & ~7, quad)

    def _store_long(self, addr: int, value: int) -> None:
        if addr & 3:
            raise MachineError(f"unaligned longword store at {addr:#x}")
        shift = (addr & 4) * 8
        quad = self._load_q(addr & ~7)
        quad = (quad & ~(0xFFFFFFFF << shift)) | ((value & 0xFFFFFFFF) << shift)
        self._store_q(addr & ~7, quad)

    # -- running ----------------------------------------------------------------

    def run(self, timed: bool = True) -> RunResult:
        if timed:
            return self._run_timed()
        return self._run_functional()

    # Both loops optionally take per-text-word attribution arrays (one
    # slot per instruction word, index-aligned with ``self._decoded``):
    # ``counts`` accumulates executed-instruction counts; the timed loop
    # additionally fills ``cycle_counts`` so that the per-word cycle
    # deltas sum exactly to the run's total cycles.  The profiler layers
    # on these hooks instead of duplicating the interpreter — profiled
    # runs and plain runs are the same loop and must agree exactly.

    def _initial_state(self) -> tuple[list[int], int]:
        regs = [0] * 32
        regs[27] = self.executable.entry  # PV
        regs[26] = self.executable.entry  # RA (returning to entry halts anyway)
        regs[30] = STACK_TOP - 512  # SP, with a red zone
        return regs, (self.executable.entry - self.text_base) >> 2

    def _run_functional(self, counts: list[int] | None = None) -> RunResult:
        regs, index = self._initial_state()
        decoded = self._decoded
        output: list[str] = []
        text_base = self.text_base
        load_q = self._load_q
        store_q = self._store_q
        count = 0
        limit = self.max_instructions
        halted = False
        counting = counts is not None

        while True:
            op = decoded[index]
            kind = op[0]
            count += 1
            if counting:
                counts[index] += 1
            if count > limit:
                raise ExecutionBudgetExceeded(limit)
            if kind == K_LDQ:
                __, ra, rb, disp = op
                regs[ra] = load_q((regs[rb] + disp) & _MASK)
            elif kind == K_OP_RR or kind == K_OP_RL:
                __, fn, ra, rb, rc = op
                b = rb if kind == K_OP_RL else regs[rb]
                regs[rc] = _operate(fn, regs[ra], b, regs[rc])
            elif kind == K_LDA:
                __, ra, rb, disp = op
                regs[ra] = (regs[rb] + disp) & _MASK
            elif kind == K_LDAH:
                __, ra, rb, disp = op
                regs[ra] = (regs[rb] + (disp << 16)) & _MASK
            elif kind == K_STQ:
                __, ra, rb, disp = op
                store_q((regs[rb] + disp) & _MASK, regs[ra])
            elif kind == K_CBR:
                __, cond, ra, target = op
                if _branch_taken(cond, regs[ra]):
                    regs[31] = 0
                    index = target
                    continue
            elif kind == K_BR or kind == K_BSR:
                __, ra, target = op
                regs[ra] = text_base + 4 * (index + 1)
                regs[31] = 0
                index = target
                continue
            elif kind == K_JSR or kind == K_JMP or kind == K_RET:
                __, ra, rb = op
                dest = regs[rb] & ~3
                regs[ra] = text_base + 4 * (index + 1)
                regs[31] = 0
                index = (dest - text_base) >> 2
                if not 0 <= index < len(decoded):
                    raise MachineError(f"jump to unmapped address {dest:#x}")
                continue
            elif kind == K_PAL:
                func = op[1]
                if func == PalFunc.HALT:
                    halted = True
                    break
                if func == PalFunc.PUTINT:
                    value = regs[16]
                    output.append(str(value - (1 << 64) if value >> 63 else value))
                    output.append("\n")
                elif func == PalFunc.PUTCHAR:
                    output.append(chr(regs[16] & 0xFF))
                elif func == PalFunc.GETTICKS:
                    regs[0] = count
                else:
                    raise MachineError(f"unknown PAL function {func:#x}")
            elif kind == K_LDL:
                __, ra, rb, disp = op
                value = load_q((regs[rb] + disp) & ~7 & _MASK)
                shift = ((regs[rb] + disp) & 4) * 8
                word = (value >> shift) & 0xFFFFFFFF
                regs[ra] = word | (~0xFFFFFFFF & _MASK if word >> 31 else 0)
            elif kind == K_LDQ_U:
                __, ra, rb, disp = op
                regs[ra] = load_q((regs[rb] + disp) & ~7 & _MASK)
            elif kind == K_LDBU:
                __, ra, rb, disp = op
                regs[ra] = self._load_byte((regs[rb] + disp) & _MASK)
            elif kind == K_STB:
                __, ra, rb, disp = op
                self._store_byte((regs[rb] + disp) & _MASK, regs[ra])
            elif kind == K_STL:
                __, ra, rb, disp = op
                self._store_long((regs[rb] + disp) & _MASK, regs[ra])
            else:
                raise MachineError(f"unhandled op kind {kind}")
            regs[31] = 0
            index += 1

        return RunResult("".join(output), count, cycles=count, halted=halted)

    def _run_timed(
        self,
        counts: list[int] | None = None,
        cycle_counts: list[int] | None = None,
    ) -> RunResult:
        regs, index = self._initial_state()
        decoded = self._decoded
        output: list[str] = []
        text_base = self.text_base
        load_q = self._load_q
        store_q = self._store_q
        count = 0
        limit = self.max_instructions
        halted = False
        counting = counts is not None
        cycle_counting = cycle_counts is not None
        prev_cycle = 0

        # Timing state.
        cycle = 0
        ready = [0] * 32  # per-register result-ready cycle
        slot_open = False  # second issue slot of `cycle` available
        slot_class = 0  # class of the instruction in the first slot
        iline_shift = CACHE_LINE.bit_length() - 1
        in_lines = ICACHE_BYTES // CACHE_LINE
        dn_lines = DCACHE_BYTES // CACHE_LINE
        itags = [-1] * in_lines
        dtags = [-1] * dn_lines
        imisses = 0
        dmisses = 0
        duals = 0
        miss_penalty = CACHE_MISS_PENALTY

        while True:
            op = decoded[index]
            kind = op[0]
            count += 1
            if counting:
                counts[index] += 1
            if count > limit:
                raise ExecutionBudgetExceeded(limit)

            # Instruction fetch / I-cache.
            iaddr = text_base + 4 * index
            line = iaddr >> iline_shift
            islot = line & (in_lines - 1)
            if itags[islot] != line:
                itags[islot] = line
                imisses += 1
                cycle += miss_penalty
                slot_open = False

            # Issue-cycle computation: operand readiness.
            if kind == K_OP_RR:
                __, fn, ra, rb, rc = op
                klass = 2  # integer
                operand_ready = ready[ra] if ready[ra] > ready[rb] else ready[rb]
            elif kind == K_OP_RL:
                __, fn, ra, rb, rc = op
                klass = 2
                operand_ready = ready[ra]
            elif kind in (K_LDQ, K_LDA, K_LDAH, K_LDL, K_LDQ_U, K_LDBU):
                __, ra, rb, disp = op
                klass = 1  # memory
                operand_ready = ready[rb]
            elif kind in (K_STQ, K_STL, K_STB):
                __, ra, rb, disp = op
                klass = 1
                operand_ready = ready[ra] if ready[ra] > ready[rb] else ready[rb]
            elif kind == K_CBR:
                __, cond, ra, target = op
                klass = 3  # control
                operand_ready = ready[ra]
            elif kind in (K_JSR, K_JMP, K_RET):
                __, ra, rb = op
                klass = 3
                operand_ready = ready[rb]
            else:  # BR/BSR/PAL
                klass = 3
                operand_ready = 0

            if slot_open and operand_ready <= cycle and klass != slot_class:
                # Pairs into the open second slot of the current cycle.
                slot_open = False
                duals += 1
                issue = cycle
            else:
                issue = cycle + 1
                if operand_ready > issue:
                    issue = operand_ready
                cycle = issue
                slot_open = True
                slot_class = klass

            # Execute.
            taken = False
            if kind == K_LDQ:
                addr = (regs[rb] + disp) & _MASK
                regs[ra] = load_q(addr)
                latency = LOAD_LATENCY
                dline = addr >> iline_shift
                dslot = dline & (dn_lines - 1)
                if dtags[dslot] != dline:
                    dtags[dslot] = dline
                    dmisses += 1
                    latency += miss_penalty
                ready[ra] = issue + latency
            elif kind == K_OP_RR or kind == K_OP_RL:
                b = rb if kind == K_OP_RL else regs[rb]
                regs[rc] = _operate(fn, regs[ra], b, regs[rc])
                ready[rc] = issue + (MUL_LATENCY if fn in (2, 7, 8) else 1)
            elif kind == K_LDA:
                regs[ra] = (regs[rb] + disp) & _MASK
                ready[ra] = issue + 1
            elif kind == K_LDAH:
                regs[ra] = (regs[rb] + (disp << 16)) & _MASK
                ready[ra] = issue + 1
            elif kind == K_STQ:
                addr = (regs[rb] + disp) & _MASK
                store_q(addr, regs[ra])
                dline = addr >> iline_shift
                dslot = dline & (dn_lines - 1)
                if dtags[dslot] != dline:
                    dtags[dslot] = dline
                    dmisses += 1
                    cycle += miss_penalty
                    slot_open = False
            elif kind == K_CBR:
                if _branch_taken(cond, regs[ra]):
                    taken = True
                    next_index = target
            elif kind == K_BR or kind == K_BSR:
                __, ra2, target = op
                regs[ra2] = text_base + 4 * (index + 1)
                ready[ra2] = issue + 1
                taken = True
                next_index = target
            elif kind in (K_JSR, K_JMP, K_RET):
                dest = regs[rb] & ~3
                regs[ra] = text_base + 4 * (index + 1)
                ready[ra] = issue + 1
                taken = True
                next_index = (dest - text_base) >> 2
                if not 0 <= next_index < len(decoded):
                    raise MachineError(f"jump to unmapped address {dest:#x}")
            elif kind == K_PAL:
                func = op[1]
                if func == PalFunc.HALT:
                    halted = True
                    break
                if func == PalFunc.PUTINT:
                    value = regs[16]
                    output.append(str(value - (1 << 64) if value >> 63 else value))
                    output.append("\n")
                elif func == PalFunc.PUTCHAR:
                    output.append(chr(regs[16] & 0xFF))
                elif func == PalFunc.GETTICKS:
                    regs[0] = cycle
                    ready[0] = issue + 1
                else:
                    raise MachineError(f"unknown PAL function {func:#x}")
            elif kind == K_LDL:
                addr = (regs[rb] + disp) & _MASK
                value = load_q(addr & ~7)
                shift = (addr & 4) * 8
                word = (value >> shift) & 0xFFFFFFFF
                regs[ra] = word | (~0xFFFFFFFF & _MASK if word >> 31 else 0)
                ready[ra] = issue + LOAD_LATENCY
            elif kind == K_LDQ_U:
                regs[ra] = load_q((regs[rb] + disp) & ~7 & _MASK)
                ready[ra] = issue + LOAD_LATENCY
            elif kind == K_LDBU:
                regs[ra] = self._load_byte((regs[rb] + disp) & _MASK)
                ready[ra] = issue + LOAD_LATENCY
            elif kind == K_STB:
                self._store_byte((regs[rb] + disp) & _MASK, regs[ra])
            elif kind == K_STL:
                self._store_long((regs[rb] + disp) & _MASK, regs[ra])
            else:
                raise MachineError(f"unhandled op kind {kind}")

            regs[31] = 0
            ready[31] = 0
            if taken:
                cycle = issue + TAKEN_BRANCH_PENALTY
                slot_open = False
            if cycle_counting:
                cycle_counts[index] += cycle - prev_cycle
                prev_cycle = cycle
            if taken:
                index = next_index
            else:
                index += 1

        # The halting instruction breaks out before the bottom-of-loop
        # attribution; charge its issue cost so the per-word cycle
        # deltas sum exactly to the reported total.
        if cycle_counting:
            cycle_counts[index] += cycle - prev_cycle

        return RunResult(
            "".join(output),
            count,
            cycles=cycle,
            icache_misses=imisses,
            dcache_misses=dmisses,
            dual_issues=duals,
            halted=halted,
        )


def run(
    executable: Executable, *, timed: bool = True, max_instructions: int = 200_000_000
) -> RunResult:
    """Load and run an executable to completion."""
    return Machine(executable, max_instructions=max_instructions).run(timed=timed)


# -- decode ---------------------------------------------------------------------


def _predecode(text: bytes, text_base: int) -> list:
    """Translate the text segment into flat operation tuples."""
    from repro.isa.encoding import decode
    from repro.isa.opcodes import Format

    decoded = []
    nwords = len(text) // 4
    for i in range(nwords):
        word = int.from_bytes(text[4 * i : 4 * i + 4], "little")
        try:
            instr = decode(word)
        except Exception as exc:
            decoded.append((K_PAL, -1, f"undecodable word {word:#010x}: {exc}"))
            continue
        name = instr.op.name
        fmt = instr.op.format
        if fmt is Format.MEMORY:
            kind = {
                "lda": K_LDA, "ldah": K_LDAH, "ldq": K_LDQ, "stq": K_STQ,
                "ldl": K_LDL, "stl": K_STL, "ldbu": K_LDBU, "stb": K_STB,
                "ldq_u": K_LDQ_U,
            }[name]
            decoded.append((kind, instr.ra, instr.rb, instr.disp))
        elif fmt is Format.OPERATE:
            fn = _OPERATE_CODE[name]
            if instr.lit is not None:
                decoded.append((K_OP_RL, fn, instr.ra, instr.lit, instr.rc))
            else:
                decoded.append((K_OP_RR, fn, instr.ra, instr.rb, instr.rc))
        elif fmt is Format.BRANCH:
            target = i + 1 + instr.disp
            if name == "br":
                decoded.append((K_BR, instr.ra, target))
            elif name == "bsr":
                decoded.append((K_BSR, instr.ra, target))
            else:
                decoded.append((K_CBR, _COND_BRANCH_NAMES[name], instr.ra, target))
        elif fmt is Format.MEMORY_JUMP:
            kind = {"jsr": K_JSR, "jmp": K_JMP, "ret": K_RET,
                    "jsr_coroutine": K_JSR}[name]
            decoded.append((kind, instr.ra, instr.rb))
        else:  # PAL
            decoded.append((K_PAL, instr.disp))
    return decoded


def _to_signed(value: int) -> int:
    return value - (1 << 64) if value >> 63 else value


def _operate(fn: int, a: int, b: int, old_c: int) -> int:
    """Evaluate an operate instruction; operands/result are u64."""
    if fn == 0:  # addq
        return (a + b) & _MASK
    if fn == 1:  # subq
        return (a - b) & _MASK
    if fn == 16:  # bis
        return a | b
    if fn == 9:  # cmpeq
        return 1 if a == b else 0
    if fn == 10:  # cmplt
        return 1 if _to_signed(a) < _to_signed(b) else 0
    if fn == 11:  # cmple
        return 1 if _to_signed(a) <= _to_signed(b) else 0
    if fn == 12:  # cmpult
        return 1 if a < b else 0
    if fn == 13:  # cmpule
        return 1 if a <= b else 0
    if fn == 2:  # mulq
        return (a * b) & _MASK
    if fn == 4:  # s8addq
        return (a * 8 + b) & _MASK
    if fn == 3:  # s4addq
        return (a * 4 + b) & _MASK
    if fn == 20:  # sll
        return (a << (b & 63)) & _MASK
    if fn == 21:  # srl
        return a >> (b & 63)
    if fn == 22:  # sra
        return (_to_signed(a) >> (b & 63)) & _MASK
    if fn == 14:  # and
        return a & b
    if fn == 15:  # bic
        return a & ~b & _MASK
    if fn == 17:  # ornot
        return (a | (~b & _MASK)) & _MASK
    if fn == 18:  # xor
        return a ^ b
    if fn == 19:  # eqv
        return (a ^ (~b & _MASK)) & _MASK
    if fn == 5:  # addl
        return _sext32((a + b) & 0xFFFFFFFF)
    if fn == 6:  # subl
        return _sext32((a - b) & 0xFFFFFFFF)
    if fn == 7:  # mull
        return _sext32((a * b) & 0xFFFFFFFF)
    if fn == 8:  # umulh
        return ((a * b) >> 64) & _MASK
    if fn == 23:  # cmoveq
        return b if a == 0 else old_c
    if fn == 24:  # cmovne
        return b if a != 0 else old_c
    if fn == 25:  # cmovlt
        return b if _to_signed(a) < 0 else old_c
    if fn == 26:  # cmovge
        return b if _to_signed(a) >= 0 else old_c
    if fn == 27:  # cmovle
        return b if _to_signed(a) <= 0 else old_c
    if fn == 28:  # cmovgt
        return b if _to_signed(a) > 0 else old_c
    if fn == 29:  # cmovlbs
        return b if a & 1 else old_c
    if fn == 30:  # cmovlbc
        return b if not a & 1 else old_c
    raise MachineError(f"unhandled operate function {fn}")


def _sext32(value: int) -> int:
    return value | (~0xFFFFFFFF & _MASK) if value >> 31 else value


def _branch_taken(cond: int, value: int) -> bool:
    if cond == 0:  # beq
        return value == 0
    if cond == 1:  # bne
        return value != 0
    signed = _to_signed(value)
    if cond == 2:  # blt
        return signed < 0
    if cond == 3:  # ble
        return signed <= 0
    if cond == 4:  # bge
        return signed >= 0
    if cond == 5:  # bgt
        return signed > 0
    if cond == 6:  # blbc
        return not value & 1
    return bool(value & 1)  # blbs
