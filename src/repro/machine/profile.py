"""Per-procedure execution and overhead profiling.

Attributes executed instructions *and* timing-model cycles to the
procedure containing them, using the executable's retained procedure
table (the loader-format metadata the paper relies on).  Profiling
layers per-word counters onto the interpreter's own loops
(:meth:`~repro.machine.cpu.Machine._run_timed`), so a profiled run and
a plain ``Machine.run`` report identical instruction and cycle totals
by construction.

Beyond time attribution, the profiler classifies each executed text
word to measure the paper's dynamic address-calculation overhead — the
quantities behind Figure 6:

* **GAT address loads** — executed ``ldq rX, d(gp)``;
* **PV loads** — the subset loading the procedure value (``ra = pv``);
* **GP-setup pairs** — executed ``ldah gp, ...`` halves of GPDISP
  pairs (each pair contributes two overhead instructions).

Executed words not covered by the procedure table are attributed to a
:data:`UNATTRIBUTED` bucket rather than silently dropped, so per-run
fractions always sum to 1.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.isa.registers import Reg
from repro.linker.executable import Executable
from repro.machine.cpu import K_LDAH, K_LDQ, Machine, RunResult

#: Name of the bucket holding executed words outside the proc table.
UNATTRIBUTED = "<unattributed>"


@dataclass
class ProcProfile:
    """Executed work attributed to one procedure."""

    name: str
    instructions: int
    fraction: float
    cycles: int = 0
    cycle_fraction: float = 0.0
    gat_loads: int = 0
    pv_loads: int = 0
    gp_setup_pairs: int = 0


@dataclass
class OverheadCounts:
    """Executed address-calculation overhead, whole-program totals."""

    gat_loads: int = 0
    pv_loads: int = 0
    gp_setup_pairs: int = 0

    @property
    def instructions(self) -> int:
        """Total overhead instructions (each setup pair is ldah+lda)."""
        return self.gat_loads + 2 * self.gp_setup_pairs


@dataclass
class ProfileResult:
    run: RunResult
    procs: list[ProcProfile] = field(default_factory=list)
    overhead: OverheadCounts = field(default_factory=OverheadCounts)

    def named(self, name: str) -> ProcProfile:
        for proc in self.procs:
            if proc.name == name:
                return proc
        raise KeyError(name)

    # -- serialization (artifact cache, --profile-out/--profile-in) ----

    def to_json_dict(self) -> dict:
        """A plain-data image with deterministic proc ordering."""
        procs = sorted(self.procs, key=lambda p: (-p.instructions, p.name))
        return {
            "run": asdict(self.run),
            "procs": [asdict(p) for p in procs],
            "overhead": asdict(self.overhead),
        }

    def to_json(self) -> bytes:
        """Canonical bytes: sorted keys, compact separators, UTF-8."""
        return json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ProfileResult":
        return cls(
            run=RunResult(**payload["run"]),
            procs=[ProcProfile(**p) for p in payload["procs"]],
            overhead=OverheadCounts(**payload["overhead"]),
        )

    @classmethod
    def from_json(cls, data: bytes | str) -> "ProfileResult":
        if isinstance(data, bytes):
            data = data.decode("utf-8")
        return cls.from_json_dict(json.loads(data))


class ProfilingMachine(Machine):
    """A machine that attributes executed work per text word.

    The counting is layered onto the shared interpreter loops: a timed
    profiled run *is* a timed run (identical cycle totals, identical
    ``getticks`` values), plus per-word counters.
    """

    def run_profiled(self, timed: bool = True) -> ProfileResult:
        nwords = len(self.text) // 4
        self.counts = [0] * nwords
        if timed:
            self.cycle_counts = [0] * nwords
            result = self._run_timed(
                counts=self.counts, cycle_counts=self.cycle_counts
            )
        else:
            self.cycle_counts = None
            result = self._run_functional(counts=self.counts)
        return ProfileResult(result, self._aggregate(), self._overhead())

    # -- classification ----------------------------------------------------

    def _word_classes(self) -> tuple[set[int], set[int], set[int]]:
        """Static classification of text words by overhead category."""
        gat_words: set[int] = set()
        pv_words: set[int] = set()
        setup_words: set[int] = set()
        gp = int(Reg.GP)
        pv = int(Reg.PV)
        for index, op in enumerate(self._decoded):
            kind = op[0]
            if kind == K_LDQ and op[2] == gp:
                gat_words.add(index)
                if op[1] == pv:
                    pv_words.add(index)
            elif kind == K_LDAH and op[1] == gp:
                setup_words.add(index)
        return gat_words, pv_words, setup_words

    def _overhead(self) -> OverheadCounts:
        gat_words, pv_words, setup_words = self._word_classes()
        counts = self.counts
        return OverheadCounts(
            gat_loads=sum(counts[i] for i in gat_words),
            pv_loads=sum(counts[i] for i in pv_words),
            gp_setup_pairs=sum(counts[i] for i in setup_words),
        )

    # -- aggregation -------------------------------------------------------

    def _aggregate(self) -> list[ProcProfile]:
        counts = self.counts
        cycle_counts = self.cycle_counts
        nwords = len(counts)
        total = sum(counts) or 1
        total_cycles = sum(cycle_counts) if cycle_counts else 0
        cycle_norm = total_cycles or 1
        gat_words, pv_words, setup_words = self._word_classes()

        covered = bytearray(nwords)
        out = []
        for proc in self.executable.procs:
            start = (proc.addr - self.text_base) >> 2
            end = min(start + (proc.size >> 2), nwords)
            start = max(start, 0)
            span = range(start, end)
            for index in span:
                covered[index] = 1
            executed = sum(counts[index] for index in span)
            if not executed:
                continue
            cycles = (
                sum(cycle_counts[index] for index in span) if cycle_counts else 0
            )
            out.append(
                ProcProfile(
                    proc.name,
                    executed,
                    executed / total,
                    cycles=cycles,
                    cycle_fraction=cycles / cycle_norm,
                    gat_loads=sum(counts[i] for i in span if i in gat_words),
                    pv_loads=sum(counts[i] for i in span if i in pv_words),
                    gp_setup_pairs=sum(
                        counts[i] for i in span if i in setup_words
                    ),
                )
            )

        # Executed text the procedure table does not cover: attribute it
        # explicitly so the fractions sum to 1 instead of quietly leaking.
        stray = [i for i in range(nwords) if not covered[i] and counts[i]]
        if stray:
            executed = sum(counts[i] for i in stray)
            cycles = sum(cycle_counts[i] for i in stray) if cycle_counts else 0
            out.append(
                ProcProfile(
                    UNATTRIBUTED,
                    executed,
                    executed / total,
                    cycles=cycles,
                    cycle_fraction=cycles / cycle_norm,
                    gat_loads=sum(counts[i] for i in stray if i in gat_words),
                    pv_loads=sum(counts[i] for i in stray if i in pv_words),
                    gp_setup_pairs=sum(
                        counts[i] for i in stray if i in setup_words
                    ),
                )
            )
        out.sort(key=lambda p: -p.instructions)
        return out


def profile(
    executable: Executable,
    max_instructions: int = 200_000_000,
    *,
    timed: bool = True,
    backend: str | None = None,
) -> ProfileResult:
    """Run an executable and attribute work to procedures.

    ``timed=True`` (default) runs the full timing model, so
    ``result.run.cycles`` equals a plain ``Machine.run`` and the
    per-procedure ``cycles`` sum to it exactly.  ``backend`` selects
    the execution engine (see :data:`repro.machine.BACKENDS`); both
    backends must produce identical attribution.
    """
    from repro.machine import resolve_backend

    if resolve_backend(backend) == "jit":
        from repro.machine.jit import JitProfilingMachine

        machine: ProfilingMachine = JitProfilingMachine(
            executable, max_instructions=max_instructions
        )
    else:
        machine = ProfilingMachine(
            executable, max_instructions=max_instructions
        )
    return machine.run_profiled(timed=timed)
