"""Per-procedure execution profiling.

Attributes executed instructions to the procedure containing them using
the executable's retained procedure table (the loader-format metadata
the paper relies on).  Used by examples and tests to show where a
workload spends its time — e.g. how much of a division-heavy benchmark
sits in ``__divq``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.linker.executable import Executable
from repro.machine.cpu import Machine, RunResult


@dataclass
class ProcProfile:
    name: str
    instructions: int
    fraction: float


@dataclass
class ProfileResult:
    run: RunResult
    procs: list[ProcProfile] = field(default_factory=list)

    def named(self, name: str) -> ProcProfile:
        for proc in self.procs:
            if proc.name == name:
                return proc
        raise KeyError(name)


class ProfilingMachine(Machine):
    """A machine that counts executed instructions per text word."""

    def run_profiled(self) -> ProfileResult:
        self.counts = [0] * (len(self.text) // 4)
        result = self._run_counted()
        return ProfileResult(result, self._aggregate())

    def _run_counted(self) -> RunResult:
        # A functional run that also bumps a per-word counter.  Kept as
        # a thin wrapper: pre-decode indexes match self.counts.
        decoded = self._decoded
        counting = []
        counts = self.counts

        # Wrap by interposing on the decoded stream is not possible for
        # a flat loop, so run the functional loop manually here.
        regs, index = self._initial_state()
        output: list[str] = []
        from repro.machine.cpu import (
            K_BR, K_BSR, K_CBR, K_JMP, K_JSR, K_LDA, K_LDAH, K_LDL, K_LDQ,
            K_LDQ_U, K_OP_RL, K_OP_RR, K_PAL, K_RET, K_STQ, _MASK, _branch_taken,
            _operate, MachineError,
        )
        from repro.isa.opcodes import PalFunc

        text_base = self.text_base
        load_q = self._load_q
        store_q = self._store_q
        count = 0
        limit = self.max_instructions
        halted = False
        while True:
            op = decoded[index]
            kind = op[0]
            count += 1
            counts[index] += 1
            if count > limit:
                raise MachineError(f"instruction limit {limit} exceeded")
            if kind == K_LDQ:
                __, ra, rb, disp = op
                regs[ra] = load_q((regs[rb] + disp) & _MASK)
            elif kind == K_OP_RR or kind == K_OP_RL:
                __, fn, ra, rb, rc = op
                b = rb if kind == K_OP_RL else regs[rb]
                regs[rc] = _operate(fn, regs[ra], b, regs[rc])
            elif kind == K_LDA:
                __, ra, rb, disp = op
                regs[ra] = (regs[rb] + disp) & _MASK
            elif kind == K_LDAH:
                __, ra, rb, disp = op
                regs[ra] = (regs[rb] + (disp << 16)) & _MASK
            elif kind == K_STQ:
                __, ra, rb, disp = op
                store_q((regs[rb] + disp) & _MASK, regs[ra])
            elif kind == K_CBR:
                __, cond, ra, target = op
                if _branch_taken(cond, regs[ra]):
                    regs[31] = 0
                    index = target
                    continue
            elif kind == K_BR or kind == K_BSR:
                __, ra, target = op
                regs[ra] = text_base + 4 * (index + 1)
                regs[31] = 0
                index = target
                continue
            elif kind in (K_JSR, K_JMP, K_RET):
                __, ra, rb = op
                dest = regs[rb] & ~3
                regs[ra] = text_base + 4 * (index + 1)
                regs[31] = 0
                index = (dest - text_base) >> 2
                if not 0 <= index < len(decoded):
                    raise MachineError(f"jump to unmapped address {dest:#x}")
                continue
            elif kind == K_PAL:
                func = op[1]
                if func == PalFunc.HALT:
                    halted = True
                    break
                if func == PalFunc.PUTINT:
                    value = regs[16]
                    output.append(str(value - (1 << 64) if value >> 63 else value))
                    output.append("\n")
                elif func == PalFunc.PUTCHAR:
                    output.append(chr(regs[16] & 0xFF))
                elif func == PalFunc.GETTICKS:
                    regs[0] = count
                else:
                    raise MachineError(f"unknown PAL function {func:#x}")
            elif kind == K_LDL:
                __, ra, rb, disp = op
                value = load_q((regs[rb] + disp) & ~7 & _MASK)
                shift = ((regs[rb] + disp) & 4) * 8
                word = (value >> shift) & 0xFFFFFFFF
                regs[ra] = word | (~0xFFFFFFFF & _MASK if word >> 31 else 0)
            elif kind == K_LDQ_U:
                __, ra, rb, disp = op
                regs[ra] = load_q((regs[rb] + disp) & ~7 & _MASK)
            else:
                raise MachineError(f"unhandled op kind {kind}")
            regs[31] = 0
            index += 1
        del counting
        return RunResult("".join(output), count, cycles=count, halted=halted)

    def _aggregate(self) -> list[ProcProfile]:
        total = sum(self.counts) or 1
        out = []
        for proc in self.executable.procs:
            start = (proc.addr - self.text_base) >> 2
            end = start + (proc.size >> 2)
            executed = sum(self.counts[start:end])
            if executed:
                out.append(ProcProfile(proc.name, executed, executed / total))
        out.sort(key=lambda p: -p.instructions)
        return out


def profile(executable: Executable, max_instructions: int = 200_000_000) -> ProfileResult:
    """Run an executable and attribute instructions to procedures."""
    return ProfilingMachine(executable, max_instructions=max_instructions).run_profiled()
