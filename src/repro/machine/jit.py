"""Template-JIT backend for the simulated machine.

Translates the pre-decoded text into generated Python, region by
region, and runs those regions instead of the interpreter's dispatch
loop.  The interpreter in :mod:`repro.machine.cpu` stays the ground
truth: the JIT must reproduce it bit-for-bit on all three observables
(program output, :class:`~repro.machine.cpu.RunResult` counters under
the timed model, and the profiler's per-word attribution arrays), and
the fuzz oracle cross-checks the two backends on every campaign wave.

Structure:

* the text is segmented once at *global* split points — branch/jump
  targets, instruction-after-control (jsr return sites), procedure
  starts, and the entry point — so any two regions that overlap agree
  on segment boundaries;
* a *region* is a BFS closure of segments over intra-region control
  flow (conditional branches and direct ``br``); calls, returns and
  indirect jumps leave the region through the driver loop;
* each region compiles to one Python function with registers in local
  variables and every opcode specialized at translation time
  (register numbers, displacements, I-cache line/slot constants,
  return addresses and branch conditions are folded into the source);
  there is no per-instruction dispatch inside a region;
* regions come in *flavors* keyed by ``(timed, counting,
  cycle_counting, guarded)``.  Fast flavors check the instruction
  budget once per segment and bail back to the driver when a segment
  might not fit; the guarded flavor replicates the interpreter's
  per-instruction check exactly, so ``ExecutionBudgetExceeded`` trips
  at the same instruction index as the interpreter;
* any word the translator does not cover falls back to a
  single-instruction interpreter step (a transcription of the cpu
  loop bodies), keeping behavior identical for odd PAL functions and
  undecodable words.

Compiled programs are cached across runs in a small module-level LRU
keyed by the text bytes and load layout; ``clear_jit_cache`` and
``CompiledProgram.invalidate`` expose the cache semantics for tests.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.isa.opcodes import PalFunc
from repro.isa.timing import (
    CACHE_LINE,
    CACHE_MISS_PENALTY,
    DCACHE_BYTES,
    ICACHE_BYTES,
    LOAD_LATENCY,
    MUL_LATENCY,
    TAKEN_BRANCH_PENALTY,
)
from repro.machine.cpu import (
    ExecutionBudgetExceeded,
    K_BR,
    K_BSR,
    K_CBR,
    K_JMP,
    K_JSR,
    K_LDA,
    K_LDAH,
    K_LDBU,
    K_LDL,
    K_LDQ,
    K_LDQ_U,
    K_OP_RL,
    K_OP_RR,
    K_PAL,
    K_RET,
    K_STB,
    K_STL,
    K_STQ,
    Machine,
    MachineError,
    RunResult,
    _branch_taken,
    _MASK,
    _operate,
)
from repro.machine.profile import ProfilingMachine

_ILINE_SHIFT = CACHE_LINE.bit_length() - 1
_IN_LINES = ICACHE_BYTES // CACHE_LINE
_DN_LINES = DCACHE_BYTES // CACHE_LINE

#: Sentinel index returned by regions/steps when the program halts.
#: Far below any reachable branch target (branch displacements are
#: 21-bit), so it cannot collide with the interpreter's negative-index
#: wraparound semantics.
_HALT = -(1 << 40)

#: Marker for "this start is untranslatable; single-step it".
_FALLBACK = object()

#: Upper bound on segments per region (a runaway-CFG backstop; loops
#: that matter are far smaller).
_REGION_SEGMENT_CAP = 48

#: Maximum nesting of inlined branch-taken arms in one emission tree.
_INLINE_DEPTH_CAP = 16

_CONTROL_KINDS = frozenset((K_BR, K_BSR, K_CBR, K_JSR, K_JMP, K_RET))

#: Kinds the translator covers.  Tests shrink this set (and clear the
#: cache) to force interpreter fallback on selected opcodes.
_TRANSLATABLE = frozenset((
    K_LDA, K_LDAH, K_LDQ, K_STQ, K_LDL, K_STL, K_LDBU, K_STB, K_LDQ_U,
    K_OP_RR, K_OP_RL, K_BR, K_BSR, K_CBR, K_JSR, K_RET, K_JMP, K_PAL,
))
_PAL_TRANSLATABLE = frozenset(
    (PalFunc.HALT, PalFunc.PUTCHAR, PalFunc.PUTINT, PalFunc.GETTICKS)
)

_M = str(_MASK)  # 18446744073709551615
_T64 = str(1 << 64)
_SGN_BOUND = str(1 << 63)  # first 64-bit pattern that is signed-negative
_SEXT_HI = str(~0xFFFFFFFF & _MASK)  # 18446744069414584320

# State-vector slots shared between driver, regions and step fallback.
# [count, limit, cycle, slot_open, slot_class, imisses, dmisses,
#  duals, prev_cycle]


def _can_translate(op) -> bool:
    kind = op[0]
    if kind == K_PAL:
        return kind in _TRANSLATABLE and op[1] in _PAL_TRANSLATABLE
    return kind in _TRANSLATABLE


def _reg_refs(op, reads: set, writes: set) -> None:
    """Accumulate architectural registers an op reads/writes (r31 excluded)."""
    kind = op[0]
    if kind in (K_LDA, K_LDAH, K_LDQ, K_LDL, K_LDBU, K_LDQ_U):
        reads.add(op[2])
        writes.add(op[1])
    elif kind in (K_STQ, K_STL, K_STB):
        reads.add(op[1])
        reads.add(op[2])
    elif kind == K_OP_RR or kind == K_OP_RL:
        __, fn, ra, rb, rc = op
        reads.add(ra)
        if kind == K_OP_RR:
            reads.add(rb)
        if 23 <= fn <= 30:  # cmov keeps the old value
            reads.add(rc)
        writes.add(rc)
    elif kind == K_CBR:
        reads.add(op[2])
    elif kind in (K_BR, K_BSR):
        writes.add(op[1])
    elif kind in (K_JSR, K_JMP, K_RET):
        reads.add(op[2])
        writes.add(op[1])
    elif kind == K_PAL:
        if op[1] in (PalFunc.PUTINT, PalFunc.PUTCHAR):
            reads.add(16)
        elif op[1] == PalFunc.GETTICKS:
            writes.add(0)
    reads.discard(31)
    writes.discard(31)


def _reads_list(op) -> list[int]:
    """Registers an op reads, with multiplicity (r31 excluded).

    Unlike :func:`_reg_refs` this keeps duplicates: an op that reads
    the same register twice needs two substitution sites, so a
    forwarded expression (consumed on first use) cannot cover it.
    """
    kind = op[0]
    if kind in (K_LDA, K_LDAH, K_LDQ, K_LDL, K_LDBU, K_LDQ_U):
        rs = [op[2]]
    elif kind in (K_STQ, K_STL, K_STB):
        rs = [op[1], op[2]]
    elif kind == K_OP_RR or kind == K_OP_RL:
        __, fn, ra, rb, rc = op
        rs = [ra]
        if kind == K_OP_RR:
            rs.append(rb)
        if 23 <= fn <= 30:  # cmov keeps the old value
            rs.append(rc)
    elif kind == K_CBR:
        rs = [op[2]]
    elif kind in (K_JSR, K_JMP, K_RET):
        rs = [op[2]]
    elif kind == K_PAL and op[1] in (PalFunc.PUTINT, PalFunc.PUTCHAR):
        rs = [16]
    else:
        rs = []
    return [r for r in rs if r != 31]


def _sgn(expr: str) -> str:
    """Source for the signed view of a u64 expression.

    Branchless two's-complement fold: flipping the sign bit then
    subtracting its weight maps [0, 2^64) onto [-2^63, 2^63) exactly,
    and evaluates ``expr`` once — important when a forwarded compound
    expression lands here.
    """
    if expr.isdigit():
        # Constant operand (r31 or a propagated value): fold the sign
        # conversion at translation time.
        value = int(expr)
        return str(value - (1 << 64) if value >> 63 else value)
    return f"(({expr} ^ {1 << 63}) - {1 << 63})"


_CMOV_CONDS = {
    23: "not {a}", 24: "{a}", 25: "{a} >> 63", 26: "not {a} >> 63",
    27: "{a} == 0 or {a} >> 63", 28: "{a} != 0 and not {a} >> 63",
    29: "{a} & 1", 30: "not {a} & 1",
}

_CBR_CONDS = {
    0: "not {v}", 1: "{v}", 2: "{v} >> 63",
    3: "{v} == 0 or {v} >> 63", 4: "not {v} >> 63",
    5: "{v} != 0 and not {v} >> 63", 6: "not {v} & 1", 7: "{v} & 1",
}


def _op_expr(fn: int, a: str, b: str) -> str:
    """Value expression for a non-cmov, non-longword operate.

    Identity operands fold away: register values are invariantly
    masked, so ``x | x``, ``x + 0`` and friends are just ``x`` — this
    strips the mask from the ``bis ra, ra`` move idiom the compiler
    emits everywhere.
    """
    if fn == 0:
        if b == "0":
            return a
        if a == "0":
            return b
        return f"({a} + {b}) & {_M}"
    if fn == 1:
        if b == "0":
            return a
        return f"({a} - {b}) & {_M}"
    if fn == 14 and (a == b or a == "0" or b == "0"):
        return a if a == b else "0"
    if fn == 16 and (a == b or b == "0"):
        return a
    if fn == 16 and a == "0":
        return b
    if fn == 18 and a == b:
        return "0"
    if fn == 18 and (a == "0" or b == "0"):
        return b if a == "0" else a
    if fn == 2:
        return f"({a} * {b}) & {_M}"
    if fn == 3:
        return f"({a} * 4 + {b}) & {_M}"
    if fn == 4:
        return f"({a} * 8 + {b}) & {_M}"
    if fn == 8:
        return f"(({a} * {b}) >> 64) & {_M}"
    if fn == 9:
        return f"1 if {a} == {b} else 0"
    if fn == 10:
        # Signed comparison against zero never needs the sign fixup:
        # x < 0 is just the sign bit, 0 < x is the open unsigned range
        # below the sign boundary.
        if b == "0":
            return f"{a} >> 63"
        if a == "0":
            return f"1 if 0 < {b} < {_SGN_BOUND} else 0"
        return f"1 if {_sgn(a)} < {_sgn(b)} else 0"
    if fn == 11:
        if b == "0":
            return f"1 if {a} == 0 or {a} >> 63 else 0"
        if a == "0":
            return f"1 if {b} < {_SGN_BOUND} else 0"
        return f"1 if {_sgn(a)} <= {_sgn(b)} else 0"
    if fn == 12:
        return f"1 if {a} < {b} else 0"
    if fn == 13:
        return f"1 if {a} <= {b} else 0"
    if fn == 14:
        return f"{a} & {b}"
    if fn == 15:
        return f"{a} & ~{b} & {_M}"
    if fn == 16:
        return f"{a} | {b}"
    if fn == 17:
        return f"({a} | (~{b} & {_M})) & {_M}"
    if fn == 18:
        return f"{a} ^ {b}"
    if fn == 19:
        return f"({a} ^ (~{b} & {_M})) & {_M}"
    amt = str(int(b) & 63) if b.isdigit() else f"({b} & 63)"
    if fn == 20:
        return f"({a} << {amt}) & {_M}"
    if fn == 21:
        return f"{a} >> {amt}"
    if fn == 22:
        return f"({_sgn(a)} >> {amt}) & {_M}"
    raise MachineError(f"unhandled operate function {fn}")


def _cmp_cond(fn: int, a: str, b: str):
    """Boolean-context condition equivalent to a 0/1 compare result.

    When a compare's only consumer is a conditional branch on its
    truthiness, substituting this form skips materializing the 0/1
    value entirely.  Mirrors the folds of :func:`_op_expr`.
    """
    if fn == 9:
        return f"{a} == {b}"
    if fn == 10:
        if b == "0":
            return f"{a} >> 63"
        if a == "0":
            return f"0 < {b} < {_SGN_BOUND}"
        return f"{_sgn(a)} < {_sgn(b)}"
    if fn == 11:
        if b == "0":
            return f"{a} == 0 or {a} >> 63"
        if a == "0":
            return f"{b} < {_SGN_BOUND}"
        return f"{_sgn(a)} <= {_sgn(b)}"
    if fn == 12:
        return f"{a} < {b}"
    if fn == 13:
        return f"{a} <= {b}"
    return None


def _wto(nodes, succ, entries):
    """Bourdoncle-style weak topological order of the chain graph.

    Returns a nested item list — an item is either a plain node or a
    ``(head, subitems)`` loop.  Every cycle of the graph is contained
    in some loop item, so a back edge only ever rescans the arms of
    its own loop instead of the whole region cascade.
    """
    nodes_set = set(nodes)
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    onstack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [0]

    def connect(v0):
        index[v0] = low[v0] = counter[0]
        counter[0] += 1
        stack.append(v0)
        onstack.add(v0)
        work = [(v0, iter(succ.get(v0, ())))]
        while work:
            v, it = work[-1]
            pushed = False
            for w in it:
                if w not in nodes_set:
                    continue
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    onstack.add(w)
                    work.append((w, iter(succ.get(w, ()))))
                    pushed = True
                    break
                if w in onstack and index[w] < low[v]:
                    low[v] = index[w]
            if pushed:
                continue
            work.pop()
            if work and low[v] < low[work[-1][0]]:
                low[work[-1][0]] = low[v]
            if low[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    onstack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(scc)

    for e in entries:
        if e in nodes_set and e not in index:
            connect(e)

    items: list = []
    for scc in reversed(sccs):  # Tarjan pops in reverse topo order
        if len(scc) == 1 and scc[0] not in succ.get(scc[0], ()):
            items.append(scc[0])
            continue
        scc_set = set(scc)
        head = min(scc, key=index.__getitem__)
        sub_nodes = [v for v in scc if v != head]
        sub_succ = {
            v: [w for w in succ.get(v, ()) if w in scc_set and w != head]
            for v in scc
        }
        sub_entries = [
            w for w in succ.get(head, ()) if w in scc_set and w != head
        ]
        items.append((head, _wto(sub_nodes, sub_succ, sub_entries)))
    for v in nodes:  # defensive: unreachable nodes become plain arms
        if v not in index:
            items.append(v)
    return items


def _wto_flatten(items, acc) -> None:
    for item in items:
        if isinstance(item, tuple):
            acc.append(item[0])
            _wto_flatten(item[1], acc)
        else:
            acc.append(item)


class _Emitter:
    """Generates the Python source for one region in one flavor."""

    def __init__(self, prog: "CompiledProgram", flavor, start, segs, order):
        self.prog = prog
        self.timed, self.counting, self.cyc, self.guarded = flavor
        self.start = start
        self.segs = segs
        self.order = order
        self.lines: list[str] = []
        #: Segment-local optimizer (constant propagation with deferred
        #: dead-store-eliminated assignments, resolved branches, grouped
        #: memory access).  Only on the plain-run fast path: the timed
        #: flavors model per-instruction issue state and the guarded
        #: flavor must replicate the interpreter instruction by
        #: instruction.
        self.opt = not self.timed and not self.guarded
        self.kval: dict[int, int] = {}
        self.defer: set[int] = set()
        #: Forwarded pure expressions: reg -> (expr, dep regs, bool
        #: condition form or None).  An entry is consumed (popped) by
        #: its single scheduled read, or materialized early when a
        #: dependency register is about to be overwritten.
        self.sym: dict = {}
        self.read_deps: set[int] = set()
        #: Known quad memory: (base reg, disp) -> value expr (a local
        #: register name or a constant).  A hit elides a reload — the
        #: earlier access to the same address already proved it mapped,
        #: so no fault is skipped.  Constant addresses key on r31.
        self.memtab: dict = {}
        if self.opt:
            self._compute_liveness()

        reads: set[int] = set()
        writes: set[int] = set()
        helpers: set[str] = set()
        for s in order:
            for i in range(s, segs[s]):
                op = prog.decoded[i]
                _reg_refs(op, reads, writes)
                kind = op[0]
                if kind in (K_LDQ, K_LDL, K_LDQ_U):
                    helpers.add("lq")
                elif kind == K_STQ:
                    helpers.add("sq")
                elif kind == K_LDBU:
                    helpers.add("lb")
                elif kind == K_STB:
                    helpers.add("sb")
                elif kind == K_STL:
                    helpers.add("sl")
                if prog.fast_mem and kind in (K_LDQ, K_STQ):
                    helpers.add("qd")
                    helpers.add("qs")
        self.used = sorted(reads | writes)
        self.writes = sorted(writes)
        self.helpers = helpers

        # Splice single-entry segments into their unique predecessor's
        # emission tree: straight-line runs chain inline, and a branch
        # target with no other way in nests inside the branch arm (a
        # trace tree).  One budget check and one dispatch arm per
        # tree, and the constant environment survives every merged
        # edge.  A segment keeps its own arm when any other edge can
        # enter it, so every remaining branch target is a tree head.
        preds: dict[int, int] = {}
        for s in order:
            for t in prog.region_targets(s):
                if t in segs:
                    preds[t] = preds.get(t, 0) + 1
        self.merged = {
            t for t in order if t != start and preds.get(t) == 1
        }
        # Each inlined branch-taken edge adds one indentation level to
        # the generated source; demote targets that would nest past the
        # cap to their own arms (CPython's parser tops out at 100).
        changed = True
        while changed:
            changed = False
            for h in order:
                if h in self.merged:
                    continue
                stack = [(h, 0)]
                while stack:
                    s, depth = stack.pop()
                    # CBR-taken arms and guarded-jsr hint arms each add
                    # one indentation level around their first target.
                    taken = prog.decoded[segs[s] - 1][0] in (K_CBR, K_JSR)
                    for n, t in enumerate(prog.region_targets(s)):
                        if t not in self.merged:
                            continue
                        nd = depth + (1 if taken and n == 0 else 0)
                        if nd > _INLINE_DEPTH_CAP:
                            self.merged.discard(t)
                            changed = True
                        else:
                            stack.append((t, nd))
        # A continuation merged behind a callee that is *not* merged
        # (multi-site or external) is never reached by any splice —
        # control only comes back to it through the callee's ret.
        # Give it its own arm so the dynamic return dispatch can land
        # on it inside the region.
        for s in order:
            if prog.decoded[segs[s] - 1][0] not in (K_BSR, K_JSR):
                continue
            ts = prog.region_targets(s)
            if (len(ts) == 2 and ts[1] in self.merged
                    and ts[0] not in self.merged):
                self.merged.discard(ts[1])
        self.tree_members: dict[int, list[int]] = {}
        for h in order:
            if h in self.merged:
                continue
            members = []
            stack = [h]
            while stack:
                s = stack.pop()
                members.append(s)
                for t in prog.region_targets(s):
                    if t in self.merged:
                        stack.append(t)
            self.tree_members[h] = members
        self.tree_total = {
            h: sum(prog.seg_len[s] for s in members)
            for h, members in self.tree_members.items()
        }
        self.max_unit = max(self.tree_total.values())
        self.pending = 0
        self.in_branch = False
        self.cur_head = start
        self.self_loop = False
        self.loop_exits: set[int] = set()
        self.ret_spliced: set[int] = set()

        # Control edges between trees (inline-merged edges excluded;
        # every remaining internal target is itself a tree head).
        succ: dict[int, list[int]] = {}
        for h, members in self.tree_members.items():
            succ[h] = [
                t for s in members for t in prog.region_targets(s)
                if t in segs and t not in self.merged
            ]
        self.loop_form = any(succ.values())
        if self.loop_form:
            self.tree = _wto(list(self.tree_members), succ, [start])
            heads: list[int] = []
            _wto_flatten(self.tree, heads)
        else:
            self.tree = None
            heads = [start]
        self.pos = {h: n for n, h in enumerate(heads)}

    # -- dataflow ----------------------------------------------------------

    _ALL_LIVE = frozenset(range(31))

    def _compute_liveness(self) -> None:
        """Region-level backward liveness at segment granularity.

        ``live_out_map[s]`` is the set of registers some path from the
        end of segment ``s`` may read before writing.  Exits the region
        can't see into — calls, indirect jumps, undiscovered targets —
        count every register live; after a halt nothing is.  A register
        dead at a segment's end may keep a stale local across the exit:
        neither the next tree, the guarded budget replay, nor any other
        region reads it before overwriting, so no observable differs.
        """
        prog, segs, order = self.prog, self.segs, self.order
        gen: dict[int, set] = {}
        kill: dict[int, set] = {}
        for s in order:
            g: set[int] = set()
            k: set[int] = set()
            for i in range(s, segs[s]):
                r: set[int] = set()
                w: set[int] = set()
                _reg_refs(prog.decoded[i], r, w)
                g |= r - k
                k |= w
            gen[s], kill[s] = g, k
        live_in = {s: set(gen[s]) for s in order}
        self.live_out_map: dict[int, set] = {s: set() for s in order}
        changed = True
        while changed:
            changed = False
            for s in order:
                last = prog.decoded[segs[s] - 1]
                if last[0] == K_PAL and last[1] == PalFunc.HALT:
                    lo: set[int] = set()
                elif last[0] == K_JSR:
                    # The hint edge is a prediction: the dynamic arm can
                    # exit anywhere, so everything stays live.
                    lo = set(self._ALL_LIVE)
                else:
                    targets = prog.region_targets(s)
                    lo = set()
                    if not targets:
                        lo = set(self._ALL_LIVE)
                    else:
                        for t in targets:
                            if t in segs:
                                lo |= live_in[t]
                            else:
                                lo = set(self._ALL_LIVE)
                                break
                self.live_out_map[s] = lo
                ni = gen[s] | (lo - kill[s])
                if ni != live_in[s]:
                    live_in[s] = ni
                    changed = True

    def _uses_ahead(self, s: int, i: int, rc: int):
        """(reads, overwritten) for ``rc`` in its segment after ``i``.

        Stops at the first write to ``rc``; a second read reports
        ``(2, False)`` immediately since two substitution sites already
        rule forwarding out.
        """
        decoded = self.prog.decoded
        uses = 0
        for k in range(i + 1, self.segs[s]):
            op = decoded[k]
            uses += _reads_list(op).count(rc)
            if uses > 1:
                return uses, False
            r: set[int] = set()
            w: set[int] = set()
            _reg_refs(op, r, w)
            if rc in w:
                return uses, True
        return uses, False

    # -- small pieces ------------------------------------------------------

    def _r(self, r: int) -> str:
        if r == 31:
            return "0"
        if r in self.kval:
            return repr(self.kval[r])
        e = self.sym.pop(r, None)
        if e is not None:
            self.read_deps |= e[1]
            return e[0]
        self.read_deps.add(r)
        return f"r{r}"

    def _addr(self, rb: int, disp: int) -> str:
        if rb == 31:
            return repr(disp & _MASK)
        if rb in self.kval:
            return repr((self.kval[rb] + disp) & _MASK)
        e = self.sym.pop(rb, None)
        if e is not None:
            self.read_deps |= e[1]
            base = e[0]
        else:
            self.read_deps.add(rb)
            base = f"r{rb}"
        if disp == 0:
            return base
        return f"({base} + {disp}) & {_M}"

    # -- segment-local constant propagation --------------------------------
    #
    # Known register values live in ``kval``; a value whose assignment
    # has not been emitted yet sits in ``defer``.  Overwriting a
    # deferred register drops the dead store.  Deferred values
    # materialize at control joins (``_flush``) and substitute directly
    # into writebacks and operand positions everywhere else.  State
    # resets at every segment boundary, because arms of the region
    # cascade are entered from many predecessors.

    def _def(self, r: int, value: int) -> None:
        self.kval[r] = value
        self.defer.add(r)
        self.sym.pop(r, None)
        self._mem_forget(r)

    def _kill(self, r: int) -> None:
        self.kval.pop(r, None)
        self.defer.discard(r)
        self.sym.pop(r, None)
        self._mem_forget(r)

    def _mem_forget(self, r: int) -> None:
        """Drop memory facts tied to register ``r`` (as base or value)."""
        if self.memtab:
            name = f"r{r}"
            for k in [k for k, v in self.memtab.items()
                      if k[0] == r or v == name]:
                del self.memtab[k]

    def _mem_store(self, rb: int, disp: int, addr: str, val: str) -> None:
        """Record a quad store; invalidate whatever it may alias.

        Two accesses off the same base at displacements 8+ bytes apart
        are provably distinct; anything else (other base registers,
        helper-path addresses) may overlap and is forgotten.
        """
        if addr.isdigit():
            key = (31, int(addr))
        elif addr == f"r{rb}" or addr == f"(r{rb} + {disp}) & {_M}":
            key = (rb, disp)
        else:
            # Address built from a forwarded expression: its base local
            # is stale, so nothing relates it to the other entries.
            self.memtab.clear()
            return
        self.memtab = {
            k: v for k, v in self.memtab.items()
            if k[0] == key[0] and abs(k[1] - key[1]) >= 8
        }
        if val.isdigit() or val == "r%d" % 31 or (
                val.startswith("r") and val[1:].isdigit()):
            self.memtab[key] = val

    def _mem_load(self, rb: int, disp: int, addr: str):
        """(key, known value) for a quad load, either may be None."""
        if addr.isdigit():
            key = (31, int(addr))
        elif addr == f"r{rb}" or addr == f"(r{rb} + {disp}) & {_M}":
            key = (rb, disp)
        else:
            return None, None
        return key, self.memtab.get(key)

    def _reset_consts(self) -> None:
        self.kval.clear()
        self.defer.clear()
        self.sym.clear()
        self.memtab.clear()

    def _mat_deps(self, out, ind, rc: int) -> None:
        """Materialize forwarded expressions that read ``rc`` before a
        write to it lands (their text references the current value)."""
        if not self.sym:
            return
        for c in list(self.sym):
            e = self.sym[c]
            if rc in e[1] and c != rc:
                del self.sym[c]
                out.append(f"{ind}r{c} = {e[0]}")

    def _flush(self, out, ind) -> None:
        if not self.defer:
            return
        regs = sorted(self.defer)
        out.append(
            ind + ", ".join(f"r{r}" for r in regs) + " = "
            + ", ".join(repr(self.kval[r]) for r in regs)
        )
        self.defer.clear()

    def _cnt_done(self, s: int) -> str:
        """Count expression after fully executing segment ``s``.

        ``pending`` counts instructions of earlier chain elements whose
        ``cnt`` update was folded into this exit.
        """
        if self.guarded:
            return "cnt"
        return f"cnt + {self.pending + self.prog.seg_len[s]}"

    def _writeback(self, cnt_expr: str) -> list[str]:
        slots = [("st[0]", cnt_expr)]
        if self.timed:
            slots += [("st[2]", "cycle"), ("st[3]", "so"), ("st[4]", "sc"),
                      ("st[7]", "du")]
        if self.cyc:
            slots.append(("st[8]", "prev"))
        slots += [
            (f"regs[{r}]",
             repr(self.kval[r]) if r in self.defer else f"r{r}")
            for r in self.writes
        ]
        return [
            ", ".join(t for t, _ in slots) + " = "
            + ", ".join(v for _, v in slots)
        ]

    def _goto(self, out, ind, s, t) -> None:
        """Transfer control to word index ``t`` from the end of seg ``t``.

        A single-entry target splices its code right here (this call
        site is its only way in, so it owns no dispatch arm).  Other
        internal targets set ``pc``: forward edges fall through the arm
        cascade (no ``continue``), back edges and any jump taken from
        inside a conditional restart the innermost enclosing loop,
        whose membership tail routes control outward when the target
        lives in an outer loop.
        """
        if t in self.merged:
            self.pending += self.prog.seg_len[s]
            self._emit_seg(out, ind, t)
            return
        if t in self.segs:
            self._flush(out, ind)
            if not self.guarded:
                out.append(
                    f"{ind}cnt += {self.pending + self.prog.seg_len[s]}"
                )
            if t == self.cur_head:
                # Back edge into the arm being emitted: ``pc`` still
                # holds the head, so restarting the innermost loop
                # re-enters it (or, in a single-arm loop, IS it).
                out.append(f"{ind}continue")
            elif self.self_loop:
                self.loop_exits.add(t)
                out.append(f"{ind}pc = {t}")
                out.append(f"{ind}break")
            else:
                out.append(f"{ind}pc = {t}")
                if self.in_branch or self.pos[t] <= self.pos[self.cur_head]:
                    out.append(f"{ind}continue")
        else:
            for line in self._writeback(self._cnt_done(s)):
                out.append(ind + line)
            out.append(f"{ind}return {t}")

    def _attr(self, out, ind, i) -> None:
        if self.cyc:
            out.append(f"{ind}cyc[{i}] += cycle - prev")
            out.append(f"{ind}prev = cycle")

    def _emit_issue(self, out, ind, klass, opr_regs) -> None:
        """The dual-issue slotting computation (timed flavors only)."""
        rs = [r for r in opr_regs if r != 31]
        if len(rs) == 2 and rs[0] == rs[1]:
            rs = rs[:1]
        if not rs:
            # operand_ready is the constant 0: always <= cycle.
            out.append(f"{ind}if so and sc != {klass}:")
            out.append(f"{ind}    so = False")
            out.append(f"{ind}    du += 1")
            out.append(f"{ind}    issue = cycle")
            out.append(f"{ind}else:")
            out.append(f"{ind}    issue = cycle + 1")
            out.append(f"{ind}    cycle = issue")
            out.append(f"{ind}    so = True")
            out.append(f"{ind}    sc = {klass}")
            return
        if len(rs) == 1:
            out.append(f"{ind}opr = ready[{rs[0]}]")
        else:
            out.append(f"{ind}t0 = ready[{rs[0]}]")
            out.append(f"{ind}t1 = ready[{rs[1]}]")
            out.append(f"{ind}opr = t0 if t0 > t1 else t1")
        out.append(f"{ind}if so and opr <= cycle and sc != {klass}:")
        out.append(f"{ind}    so = False")
        out.append(f"{ind}    du += 1")
        out.append(f"{ind}    issue = cycle")
        out.append(f"{ind}else:")
        out.append(f"{ind}    issue = cycle + 1")
        out.append(f"{ind}    if opr > issue:")
        out.append(f"{ind}        issue = opr")
        out.append(f"{ind}    cycle = issue")
        out.append(f"{ind}    so = True")
        out.append(f"{ind}    sc = {klass}")

    def _emit_dcache_load(self, out, ind, ra) -> None:
        out.append(f"{ind}dl = addr >> {_ILINE_SHIFT}")
        out.append(f"{ind}ds = dl & {_DN_LINES - 1}")
        out.append(f"{ind}if dtags[ds] != dl:")
        out.append(f"{ind}    dtags[ds] = dl")
        out.append(f"{ind}    st[6] += 1")
        if ra != 31:
            out.append(
                f"{ind}    ready[{ra}] = issue + "
                f"{LOAD_LATENCY + CACHE_MISS_PENALTY}"
            )
            out.append(f"{ind}else:")
            out.append(f"{ind}    ready[{ra}] = issue + {LOAD_LATENCY}")

    # -- per-instruction emission ------------------------------------------

    def _emit_instr(self, out, ind, s, i, j) -> None:
        """One instruction: budget (guarded), fetch/issue (timed), body."""
        prog = self.prog
        op = prog.decoded[i]
        kind = op[0]
        seglen = prog.seg_len[s]
        last = j == seglen - 1

        if self.guarded:
            out.append(f"{ind}cnt += 1")
            if self.counting:
                out.append(f"{ind}cnts[{i}] += 1")
            out.append(f"{ind}if cnt > limit:")
            out.append(f"{ind}    raise ExecutionBudgetExceeded(limit)")

        if self.timed:
            # I-cache probe: line and slot fold to constants per word.
            line = (prog.text_base + 4 * i) >> _ILINE_SHIFT
            islot = line & (_IN_LINES - 1)
            out.append(f"{ind}if itags[{islot}] != {line}:")
            out.append(f"{ind}    itags[{islot}] = {line}")
            out.append(f"{ind}    st[5] += 1")
            out.append(f"{ind}    cycle += {CACHE_MISS_PENALTY}")
            out.append(f"{ind}    so = False")
            if kind == K_OP_RR:
                self._emit_issue(out, ind, 2, (op[2], op[3]))
            elif kind == K_OP_RL:
                self._emit_issue(out, ind, 2, (op[2],))
            elif kind in (K_LDQ, K_LDA, K_LDAH, K_LDL, K_LDQ_U, K_LDBU):
                self._emit_issue(out, ind, 1, (op[2],))
            elif kind in (K_STQ, K_STL, K_STB):
                self._emit_issue(out, ind, 1, (op[1], op[2]))
            elif kind == K_CBR:
                self._emit_issue(out, ind, 3, (op[2],))
            elif kind in (K_JSR, K_JMP, K_RET):
                self._emit_issue(out, ind, 3, (op[2],))
            else:  # BR/BSR/PAL
                self._emit_issue(out, ind, 3, ())

        self.read_deps = set()
        body = getattr(self, "_k%d" % kind)
        body(out, ind, s, i, op)

        if kind in _CONTROL_KINDS or (kind == K_PAL and op[1] == PalFunc.HALT):
            return  # those emitters ended the segment themselves
        if self.timed:
            self._attr(out, ind, i)
        if last:
            self._goto(out, ind, s, i + 1)

    # Non-control bodies.  ``_k<kind>`` naming mirrors the K_* codes.

    def _lda(self, out, ind, s, i, ra, rb, disp) -> None:
        if ra == 31:
            return
        expr = self._addr(rb, disp)
        if self.opt:
            if expr.isdigit():
                self._mat_deps(out, ind, ra)
                self._def(ra, int(expr))
                return
            if expr == f"r{ra}":
                return  # address of self with no displacement: no-op
            self._mat_deps(out, ind, ra)
            self._kill(ra)
            if self._forward(s, i, ra, expr, None):
                return
        out.append(f"{ind}r{ra} = {expr}")
        if self.timed:
            out.append(f"{ind}ready[{ra}] = issue + 1")

    def _forward(self, s: int, i: int, rc: int, expr: str, cond) -> bool:
        """Try to defer ``rc = expr`` into its single scheduled read.

        Legal when the segment overwrites ``rc`` afterwards, or when
        ``rc`` is dead at the segment's exits — either way the stale
        local never escapes to a consumer.  Expressions are pure, so
        evaluation moves to the read site (or vanishes when there is
        none) without observable effect; loads and stores are never
        forwarded, keeping fault order exact.
        """
        uses, over = self._uses_ahead(s, i, rc)
        if uses > 1 or len(expr) > 240:
            return False
        if not over and rc in self.live_out_map[s]:
            return False
        if uses:
            self.sym[rc] = (f"({expr})", frozenset(self.read_deps), cond)
        return True

    def _k0(self, out, ind, s, i, op):  # K_LDA
        __, ra, rb, disp = op
        self._lda(out, ind, s, i, ra, rb, disp)

    def _k1(self, out, ind, s, i, op):  # K_LDAH
        __, ra, rb, disp = op
        self._lda(out, ind, s, i, ra, rb, disp << 16)

    def _quad_regions(self, rb: int):
        """The two (view, base, length) fast-path regions, most likely
        hit first: stack-pointer-relative addresses probe the stack,
        anything else probes the data segment."""
        prog = self.prog
        stack = ("qs", prog.stack_base, prog.stack_len)
        data = ("qd", prog.data_base, prog.data_len & ~7)
        return (stack, data) if rb == 30 else (data, stack)

    @staticmethod
    def _quad_guard(length: int, span: int = 8) -> str:
        """Bounds+alignment test on offset ``o`` for a ``span``-byte
        access into a region of ``length`` bytes.

        Region bases are 8-aligned, so ``o`` and the address share
        alignment.  When the valid offsets are exactly the aligned
        values expressible within one bit mask (``limit + 8`` a power
        of two), a single AND covers bounds and alignment together —
        a negative or oversized ``o`` always has bits outside the
        mask, Python's negatives carrying infinite sign bits.
        """
        limit = length - span
        if limit >= 0 and (limit + 8) & (limit + 7) == 0:
            return f"not o & {~limit}"
        return f"0 <= o <= {limit} and not o & 7"

    def _const_quad(self, value: int):
        """(view, index) for a statically-resolved aligned quad."""
        prog = self.prog
        if value % 8:
            return None
        o = value - prog.stack_base
        if 0 <= o < prog.stack_len:
            return ("qs", o >> 3)
        o = value - prog.data_base
        if 0 <= o < prog.data_len & ~7:
            return ("qd", o >> 3)
        return None

    def _emit_quad_access(self, out, ind, rb, assign) -> None:
        """Inline data/stack fast paths for an 8-byte access at ``addr``.

        ``assign(view_expr)`` renders the access given a source/target
        expression; unmapped, unaligned, or partial-tail addresses fall
        back to the bounds-checked memory helper, which reproduces the
        interpreter's exception behavior exactly.
        """
        (v1, b1, l1), (v2, b2, l2) = self._quad_regions(rb)
        out.append(f"{ind}o = addr - {b1}")
        out.append(f"{ind}if {self._quad_guard(l1)}:")
        out.append(f"{ind}    {assign(f'{v1}[o >> 3]')}")
        out.append(f"{ind}else:")
        out.append(f"{ind}    o = addr - {b2}")
        out.append(f"{ind}    if {self._quad_guard(l2)}:")
        out.append(f"{ind}        {assign(f'{v2}[o >> 3]')}")
        out.append(f"{ind}    else:")
        out.append(f"{ind}        {assign(None)}")

    def _k2(self, out, ind, s, i, op):  # K_LDQ
        __, ra, rb, disp = op
        tgt = f"r{ra} = " if ra != 31 else ""
        addr = self._addr(rb, disp)
        if self.opt:
            key, known = self._mem_load(rb, disp, addr)
            if known is not None:
                # The slot's current value is in a local or constant:
                # the earlier access proved the address mapped, so the
                # reload (and any fault it could raise) is redundant.
                self._mat_deps(out, ind, ra)
                if ra != 31 and known != f"r{ra}":
                    if known.isdigit():
                        self._def(ra, int(known))
                    else:
                        self._kill(ra)
                        self.read_deps = {int(known[1:])}
                        if not self._forward(s, i, ra, known, None):
                            out.append(f"{ind}r{ra} = {known}")
                return
            self._mat_deps(out, ind, ra)
            self._kill(ra)
            if key is not None and ra != 31 and ra != rb:
                self.memtab[key] = f"r{ra}"
        if not self.prog.fast_mem:
            if self.timed:
                out.append(f"{ind}addr = {addr}")
                out.append(f"{ind}{tgt}lq(addr)")
                self._emit_dcache_load(out, ind, ra)
            else:
                out.append(f"{ind}{tgt}lq({addr})")
            return
        if not self.timed and addr.isdigit():
            hit = self._const_quad(int(addr))
            if hit:
                out.append(f"{ind}{tgt}{hit[0]}[{hit[1]}]")
            else:
                out.append(f"{ind}{tgt}lq({addr})")
            return
        out.append(f"{ind}addr = {addr}")
        self._emit_quad_access(
            out, ind, rb,
            lambda view: f"{tgt}{view}" if view else f"{tgt}lq(addr)",
        )
        if self.timed:
            self._emit_dcache_load(out, ind, ra)

    def _k3(self, out, ind, s, i, op):  # K_STQ
        __, ra, rb, disp = op
        val = self._r(ra)
        addr = self._addr(rb, disp)
        if self.opt:
            self._mem_store(rb, disp, addr, val)
        if not self.prog.fast_mem:
            if self.timed:
                out.append(f"{ind}addr = {addr}")
                out.append(f"{ind}sq(addr, {val})")
            else:
                out.append(f"{ind}sq({addr}, {val})")
        else:
            if not self.timed and addr.isdigit():
                hit = self._const_quad(int(addr))
                if hit:
                    out.append(f"{ind}{hit[0]}[{hit[1]}] = {val}")
                else:
                    out.append(f"{ind}sq({addr}, {val})")
                return
            out.append(f"{ind}addr = {addr}")
            self._emit_quad_access(
                out, ind, rb,
                lambda view: (
                    f"{view} = {val}" if view else f"sq(addr, {val})"
                ),
            )
        if self.timed:
            out.append(f"{ind}dl = addr >> {_ILINE_SHIFT}")
            out.append(f"{ind}ds = dl & {_DN_LINES - 1}")
            out.append(f"{ind}if dtags[ds] != dl:")
            out.append(f"{ind}    dtags[ds] = dl")
            out.append(f"{ind}    st[6] += 1")
            out.append(f"{ind}    cycle += {CACHE_MISS_PENALTY}")
            out.append(f"{ind}    so = False")

    def _k4(self, out, ind, s, i, op):  # K_LDL
        __, ra, rb, disp = op
        out.append(f"{ind}t = {self._addr(rb, disp)}")
        if self.opt:
            self._mat_deps(out, ind, ra)
            self._kill(ra)
        if ra == 31:
            out.append(f"{ind}lq(t & -8)")
        else:
            out.append(f"{ind}v = lq(t & -8)")
            out.append(f"{ind}w = (v >> ((t & 4) * 8)) & 4294967295")
            out.append(f"{ind}r{ra} = w | {_SEXT_HI} if w >> 31 else w")
        if self.timed and ra != 31:
            out.append(f"{ind}ready[{ra}] = issue + {LOAD_LATENCY}")

    def _k5(self, out, ind, s, i, op):  # K_STL
        __, ra, rb, disp = op
        # A sub-quad store may alias any tracked quad: drop all facts.
        self.memtab.clear()
        out.append(f"{ind}sl({self._addr(rb, disp)}, {self._r(ra)})")

    def _k6(self, out, ind, s, i, op):  # K_LDBU
        __, ra, rb, disp = op
        tgt = f"r{ra} = " if ra != 31 else ""
        addr = self._addr(rb, disp)
        if self.opt:
            self._mat_deps(out, ind, ra)
            self._kill(ra)
        out.append(f"{ind}{tgt}lb({addr})")
        if self.timed and ra != 31:
            out.append(f"{ind}ready[{ra}] = issue + {LOAD_LATENCY}")

    def _k7(self, out, ind, s, i, op):  # K_STB
        __, ra, rb, disp = op
        self.memtab.clear()
        out.append(f"{ind}sb({self._addr(rb, disp)}, {self._r(ra)})")

    def _k8(self, out, ind, s, i, op):  # K_LDQ_U
        __, ra, rb, disp = op
        tgt = f"r{ra} = " if ra != 31 else ""
        if rb == 31 or rb in self.kval:
            expr = repr((self.kval.get(rb, 0) + disp) & ~7 & _MASK)
        else:
            v = self._r(rb)
            base = f"({v} + {disp})" if disp else v
            expr = f"{base} & -8 & {_M}"
        if self.opt:
            self._mat_deps(out, ind, ra)
            self._kill(ra)
        out.append(f"{ind}{tgt}lq({expr})")
        if self.timed and ra != 31:
            out.append(f"{ind}ready[{ra}] = issue + {LOAD_LATENCY}")

    def _operate_body(self, out, ind, s, i, op, lit: bool):
        __, fn, ra, rb, rc = op
        a = self._r(ra)
        b = repr(rb) if lit else self._r(rb)
        if 23 <= fn <= 30:  # cmov
            if rc == 31:
                return
            if self.opt and a.isdigit():
                # Condition decided at translation time (the move
                # itself may still carry a runtime value).
                if _operate(fn, int(a), 1, 0):
                    self._mat_deps(out, ind, rc)
                    if b.isdigit():
                        self._def(rc, int(b))
                    else:
                        self._kill(rc)
                        out.append(f"{ind}r{rc} = {b}")
                return
            if self.opt:
                self._mat_deps(out, ind, rc)
                # The old value is conditionally kept: materialize a
                # deferred or forwarded one before the branch.
                e = self.sym.pop(rc, None)
                if e is not None:
                    out.append(f"{ind}r{rc} = {e[0]}")
                if rc in self.defer:
                    out.append(f"{ind}r{rc} = {self.kval[rc]}")
                    self.defer.discard(rc)
                self._kill(rc)
            out.append(f"{ind}if {_CMOV_CONDS[fn].format(a=a)}:")
            out.append(f"{ind}    r{rc} = {b}")
        elif rc != 31:
            if self.opt and a.isdigit() and b.isdigit():
                self._mat_deps(out, ind, rc)
                self._def(rc, _operate(fn, int(a), int(b), 0))
                return
            if fn in (5, 6, 7):  # addl/subl/mull: 32-bit, sign-extended
                if self.opt:
                    self._mat_deps(out, ind, rc)
                    self._kill(rc)
                opch = {5: "+", 6: "-", 7: "*"}[fn]
                out.append(f"{ind}w = ({a} {opch} {b}) & 4294967295")
                out.append(f"{ind}r{rc} = w | {_SEXT_HI} if w >> 31 else w")
            else:
                expr = _op_expr(fn, a, b)
                if self.opt:
                    if expr == f"r{rc}":
                        return  # move to itself: no-op
                    self._mat_deps(out, ind, rc)
                    self._kill(rc)
                    cond = _cmp_cond(fn, a, b) if 9 <= fn <= 13 else None
                    if self._forward(s, i, rc, expr, cond):
                        return
                out.append(f"{ind}r{rc} = {expr}")
        if self.timed and rc != 31:
            lat = MUL_LATENCY if fn in (2, 7, 8) else 1
            out.append(f"{ind}ready[{rc}] = issue + {lat}")

    def _k9(self, out, ind, s, i, op):  # K_OP_RR
        self._operate_body(out, ind, s, i, op, lit=False)

    def _k10(self, out, ind, s, i, op):  # K_OP_RL
        self._operate_body(out, ind, s, i, op, lit=True)

    # Control bodies: these end the segment (goto / return / raise).

    def _emit_taken(self, out, ind, s, i, target) -> None:
        if self.timed:
            out.append(f"{ind}cycle = issue + {TAKEN_BRANCH_PENALTY}")
            out.append(f"{ind}so = False")
            self._attr(out, ind, i)
        self._goto(out, ind, s, target)

    def _emit_not_taken(self, out, ind, s, i) -> None:
        if self.timed:
            self._attr(out, ind, i)
        self._goto(out, ind, s, i + 1)

    def _k13(self, out, ind, s, i, op):  # K_CBR
        __, cond, ra, target = op
        if not self.timed and target == i + 1:
            # Branch to its own fall-through successor: the condition
            # is pure and both paths agree (only the timed model can
            # tell them apart), so emit the sequential path alone.
            self._emit_not_taken(out, ind, s, i)
            return
        value = 0 if ra == 31 else self.kval.get(ra)
        if value is not None:
            # Branch decided at translation time (r31 or a propagated
            # constant): emit only the surviving path.
            if _branch_taken(cond, value):
                self._emit_taken(out, ind, s, i, target)
            else:
                self._emit_not_taken(out, ind, s, i)
            return
        # Both runtime paths leave the segment, so deferred constants
        # must materialize before the test (once, shared by each arm).
        # The taken arm may splice in whole single-entry segments, so
        # the optimizer state it mutates is snapshotted around it and
        # restored for the fall-through path.
        self._flush(out, ind)
        test = None
        if self.opt and cond in (0, 1):
            e = self.sym.get(ra)
            if e is not None and e[2] is not None:
                # The branch tests a forwarded compare's truthiness:
                # substitute the boolean condition itself and never
                # materialize the 0/1 value.
                del self.sym[ra]
                test = e[2] if cond == 1 else f"not ({e[2]})"
        if test is None:
            test = _CBR_CONDS[cond].format(v=self._r(ra))
        out.append(f"{ind}if {test}:")
        saved = (dict(self.kval), set(self.defer), dict(self.sym),
                 dict(self.memtab), self.pending, self.in_branch)
        self.in_branch = True
        self._emit_taken(out, ind + "    ", s, i, target)
        (self.kval, self.defer, self.sym, self.memtab, self.pending,
         self.in_branch) = saved
        self._emit_not_taken(out, ind, s, i)

    def _br_bsr(self, out, ind, s, i, op):
        __, ra, target = op
        if ra != 31:
            retaddr = self.prog.text_base + 4 * (i + 1)
            if self.opt:
                self._mat_deps(out, ind, ra)
                self._def(ra, retaddr)
            else:
                out.append(f"{ind}r{ra} = {retaddr}")
                if self.timed:
                    out.append(f"{ind}ready[{ra}] = issue + 1")
        self._emit_taken(out, ind, s, i, target)

    _k11 = _br_bsr  # K_BR
    _k12 = _br_bsr  # K_BSR

    def _jump(self, out, ind, s, i, op):
        __, ra, rb = op
        prog = self.prog
        if self.opt and rb in self.kval:
            # The jump register holds a translation-time constant (a
            # bsr-planted return address, possibly round-tripped through
            # the stack via store-to-load forwarding): resolve the
            # dispatch statically and keep control inside the region.
            dest = self.kval[rb] & -4
            ni = (dest - prog.text_base) >> 2
            if 0 <= ni < prog.nwords:
                if ra != 31:
                    retaddr = prog.text_base + 4 * (i + 1)
                    self._mat_deps(out, ind, ra)
                    self._def(ra, retaddr)
                if ni in self.merged and ni in self.ret_spliced:
                    # Already spliced at another return site: exit to
                    # the driver, which roots a fresh region there,
                    # rather than duplicating code per return path.
                    for line in self._writeback(self._cnt_done(s)):
                        out.append(ind + line)
                    out.append(f"{ind}return {ni}")
                else:
                    if ni in self.merged:
                        self.ret_spliced.add(ni)
                    self._goto(out, ind, s, ni)
                return
        hint = self.prog.jump_hint.get(i) if op[0] == K_JSR else None
        if hint is not None and hint not in self.segs:
            hint = None
        out.append(f"{ind}dest = {self._r(rb)} & -4")
        if ra != 31:
            retaddr = prog.text_base + 4 * (i + 1)
            if self.opt:
                self._mat_deps(out, ind, ra)
                self._def(ra, retaddr)
            else:
                out.append(f"{ind}r{ra} = {retaddr}")
                if self.timed:
                    out.append(f"{ind}ready[{ra}] = issue + 1")
        if hint is not None:
            # Guarded devirtualization: if the register agrees with the
            # linker's hint, control continues inside the region (the
            # callee often splices right here); otherwise fall back to
            # the driver dispatch.  Cycle effects precede the split so
            # both arms see identical timing state.
            if self.timed:
                out.append(f"{ind}cycle = issue + {TAKEN_BRANCH_PENALTY}")
                out.append(f"{ind}so = False")
                self._attr(out, ind, i)
            out.append(f"{ind}if dest == {prog.text_base + 4 * hint}:")
            saved = (dict(self.kval), set(self.defer), dict(self.sym),
                     dict(self.memtab), self.pending, self.in_branch)
            self.in_branch = True
            self._goto(out, ind + "    ", s, hint)
            (self.kval, self.defer, self.sym, self.memtab, self.pending,
             self.in_branch) = saved
            out.append(f"{ind}else:")
            ind = ind + "    "
        out.append(f"{ind}ni = (dest - {prog.text_base}) >> 2")
        out.append(f"{ind}if ni < 0 or ni >= {prog.nwords}:")
        out.append(
            f'{ind}    raise MachineError('
            f'"jump to unmapped address 0x%x" % dest)'
        )
        if self.timed:
            if hint is None:
                out.append(f"{ind}cycle = issue + {TAKEN_BRANCH_PENALTY}")
                out.append(f"{ind}so = False")
                self._attr(out, ind, i)
        if self.loop_form:
            # A computed target that is one of this region's own heads
            # (a ret bouncing back to a call continuation, usually)
            # re-enters the dispatch cascade instead of exiting to the
            # driver; the cascade's membership tail routes any head
            # from any nesting depth.
            heads = ", ".join(str(h) for h in sorted(self.pos))
            out.append(f"{ind}if ni in ({heads},):")
            saved = (dict(self.kval), set(self.defer))
            self._flush(out, ind + "    ")
            if not self.guarded:
                out.append(
                    f"{ind}    cnt += {self.pending + self.prog.seg_len[s]}"
                )
            out.append(f"{ind}    pc = ni")
            out.append(f"{ind}    {'break' if self.self_loop else 'continue'}")
            self.kval, self.defer = saved
        for line in self._writeback(self._cnt_done(s)):
            out.append(ind + line)
        out.append(f"{ind}return ni")

    _k14 = _jump  # K_JSR
    _k15 = _jump  # K_RET
    _k16 = _jump  # K_JMP

    def _k17(self, out, ind, s, i, op):  # K_PAL
        func = op[1]
        if func == PalFunc.HALT:
            if self.cyc:
                # The interpreter charges the halting word after its loop.
                out.append(f"{ind}cyc[{i}] += cycle - prev")
            for line in self._writeback(self._cnt_done(s)):
                out.append(ind + line)
            out.append(f"{ind}return {_HALT}")
        elif func == PalFunc.PUTINT:
            v = self._r(16)
            out.append(f"{ind}out.append(str({_sgn(v)}))")
            out.append(f'{ind}out.append("\\n")')
        elif func == PalFunc.PUTCHAR:
            v = self._r(16)
            if v.isdigit():
                out.append(f"{ind}out.append({chr(int(v) & 255)!r})")
            else:
                out.append(f"{ind}out.append(chr({v} & 255))")
        elif func == PalFunc.GETTICKS:
            if self.timed:
                out.append(f"{ind}r0 = cycle")
                out.append(f"{ind}ready[0] = issue + 1")
            else:
                if self.guarded:
                    expr = "cnt"
                else:
                    expr = f"cnt + {self.pending + (i - s) + 1}"
                if self.opt:
                    self._mat_deps(out, ind, 0)
                    self._kill(0)
                out.append(f"{ind}r0 = {expr}")

    # -- whole-region assembly ---------------------------------------------

    def _group_run(self, s: int, j: int) -> int:
        """Length of a groupable run of ldq/stq at segment offset ``j``.

        A run shares one base register (not redefined mid-run except by
        its last member), uses 8-aligned displacements, and fits inside
        either memory region, so a single bounds/alignment guard covers
        every member.
        """
        prog = self.prog
        seglen = prog.seg_len[s]
        first = prog.decoded[s + j]
        if first[0] not in (K_LDQ, K_STQ):
            return 1
        base = first[2]
        if base == 31 or base in self.kval or base in self.sym \
                or first[3] % 8:
            return 1
        if first[0] == K_LDQ and (base, first[3]) in self.memtab:
            # A tracked store already proved this slot's value: let the
            # scalar path elide the load (and the rest of the would-be
            # run retries here, member by member).
            return 1
        n = 1
        disps = [first[3]]
        if not (first[0] == K_LDQ and first[1] == base):
            while j + n < seglen:
                op = prog.decoded[s + j + n]
                if op[0] not in (K_LDQ, K_STQ) or op[2] != base or op[3] % 8:
                    break
                n += 1
                disps.append(op[3])
                if op[0] == K_LDQ and op[1] == base:
                    break  # base clobbered: this load ends the run
        span = max(disps) - min(disps) + 8
        if span > prog.stack_len or span > prog.data_len & ~7:
            return 1
        return n

    def _emit_group(self, out, ind, s, j, n) -> None:
        """One guard, ``n`` quad accesses off a common base register."""
        prog = self.prog
        ops = [prog.decoded[s + j + k] for k in range(n)]
        lo = min(op[3] for op in ops)
        span = max(op[3] for op in ops) - lo + 8
        base = f"r{ops[0][2]}"
        # Freeze operand renderings in program order: store values use
        # the constant environment as of their position; load targets
        # invalidate theirs.
        members = []
        for kind, ra, rb, disp in ops:
            addr = self._addr(rb, disp)
            val = self._r(ra) if kind == K_STQ else None
            members.append((kind, ra, (disp - lo) >> 3, addr, val))
            if kind == K_STQ:
                self._mem_store(rb, disp, addr, val)
            else:
                self._mat_deps(out, ind, ra)
                self._kill(ra)
                if ra != 31 and ra != rb:
                    self.memtab[(rb, disp)] = f"r{ra}"

        def fast(view, pad):
            out.append(f"{pad}bi = o >> 3")
            for kind, ra, delta, __, val in members:
                sub = f"bi + {delta}" if delta else "bi"
                if kind == K_STQ:
                    out.append(f"{pad}{view}[{sub}] = {val}")
                elif ra != 31:
                    out.append(f"{pad}r{ra} = {view}[{sub}]")

        def slow(pad):
            for kind, ra, __, addr, val in members:
                if kind == K_STQ:
                    out.append(f"{pad}sq({addr}, {val})")
                else:
                    tgt = f"r{ra} = " if ra != 31 else ""
                    out.append(f"{pad}{tgt}lq({addr})")

        # lo is 8-aligned and so are the region bases, so o shares the
        # base address's alignment and _quad_guard applies unchanged.
        (v1, b1, l1), (v2, b2, l2) = self._quad_regions(ops[0][2])
        out.append(f"{ind}o = {base} - {b1 - lo}")
        out.append(f"{ind}if {self._quad_guard(l1, span)}:")
        fast(v1, ind + "    ")
        out.append(f"{ind}else:")
        out.append(f"{ind}    o = {base} - {b2 - lo}")
        out.append(f"{ind}    if {self._quad_guard(l2, span)}:")
        fast(v2, ind + "        ")
        out.append(f"{ind}    else:")
        slow(ind + "        ")

    def _emit_tree(self, out, ind, head) -> None:
        """Emit one tree: its head segment plus every single-entry
        successor spliced inline at its unique entry edge.

        The tree pays a single budget bail (conservative: assumes the
        whole tree will run) and folds per-segment ``cnt`` updates into
        each exit via ``self.pending``.  Per-segment ``execs`` counters
        sit at each segment's inline position — inside the branch arm
        that reaches it — so count expansion remains exact on every
        path through the tree.
        """
        self.cur_head = head
        self._reset_consts()
        self.pending = 0
        if self.loop_form and not self.guarded:
            # Fast-flavor bail: if this tree might blow the budget,
            # hand back to the driver, which reruns it under the
            # guarded flavor for an interpreter-exact trip.
            out.append(f"{ind}if cnt + {self.tree_total[head]} > limit:")
            for line in self._writeback("cnt"):
                out.append(f"{ind}    {line}")
            out.append(f"{ind}    return {head}")
        self._emit_seg(out, ind, head)

    def _emit_seg(self, out, ind, s) -> None:
        prog = self.prog
        seglen = prog.seg_len[s]
        if self.counting and not self.guarded:
            out.append(f"{ind}execs[{s}] += 1")
        group_ok = self.opt and prog.fast_mem
        j = 0
        while j < seglen:
            n = self._group_run(s, j) if group_ok else 1
            if n >= 2:
                self._emit_group(out, ind, s, j, n)
                j += n
                if j == seglen:
                    self._goto(out, ind, s, s + seglen)
            else:
                self._emit_instr(out, ind, s, s + j, j)
                j += 1

    def _emit_items(self, out, arm, items) -> None:
        """Emit a level of the weak topological order.

        Plain items become ``if pc == s:`` arms; loop items nest a
        ``while True:`` whose membership tail re-dispatches back edges
        locally instead of rescanning the whole cascade.  A ``continue``
        from a deeper level restarts the innermost loop; its membership
        tail then either continues (target inside) or breaks outward
        until the loop owning the target is reached.
        """
        body = arm + "    "
        for it in items:
            if isinstance(it, tuple) and not it[1]:
                # Single-arm loop: the dispatch test runs once on entry
                # and every iteration is pure body — back edges are a
                # bare ``continue`` (``pc`` still holds the head), other
                # targets set ``pc`` and ``break`` out to the cascade.
                head = it[0]
                out.append(f"{arm}if pc == {head}:")
                out.append(f"{body}while True:")
                self.self_loop = True
                self.loop_exits = set()
                self._emit_tree(out, body + "    ", head)
                self.self_loop = False
                back = sorted(
                    t for t in self.loop_exits
                    if self.pos[t] < self.pos[head]
                )
                if back:
                    names = ", ".join(str(t) for t in back)
                    out.append(f"{body}if pc in ({names},):")
                    out.append(f"{body}    continue")
            elif isinstance(it, tuple):
                head, sub = it
                members: list[int] = []
                _wto_flatten([it], members)
                out.append(f"{arm}while True:")
                out.append(f"{body}if pc == {head}:")
                self._emit_tree(out, body + "    ", head)
                self._emit_items(out, body, sub)
                names = ", ".join(str(m) for m in sorted(members))
                out.append(f"{body}if pc in ({names},):")
                out.append(f"{body}    continue")
                out.append(f"{body}break")
            else:
                out.append(f"{arm}if pc == {it}:")
                self._emit_tree(out, body, it)

    def source(self) -> tuple[str, str]:
        name = f"_jit_region_{self.start}"
        out = [
            f"def {name}(regs, st, out, mem, ready, itags, dtags, "
            f"cnts, cyc, execs):"
        ]
        ind = "    "
        out.append(f"{ind}cnt = st[0]")
        out.append(f"{ind}limit = st[1]")
        if self.timed:
            out.append(f"{ind}cycle = st[2]")
            out.append(f"{ind}so = st[3]")
            out.append(f"{ind}sc = st[4]")
            out.append(f"{ind}du = st[7]")
        if self.cyc:
            out.append(f"{ind}prev = st[8]")
        names = ("lq", "sq", "lb", "sb", "sl", "qd", "qs", "bd", "bs")
        unpack = [
            (helper, idx) for idx, helper in enumerate(names)
            if helper in self.helpers
        ]
        if unpack:
            out.append(
                f"{ind}" + ", ".join(h for h, _ in unpack) + " = "
                + ", ".join(f"mem[{i}]" for _, i in unpack)
            )
        if self.used:
            out.append(
                f"{ind}" + ", ".join(f"r{r}" for r in self.used) + " = "
                + ", ".join(f"regs[{r}]" for r in self.used)
            )
        if self.loop_form:
            out.append(f"{ind}pc = {self.start}")
            out.append(f"{ind}while True:")
            arm = ind + "    "
            # Weak topological order: forward edges fall through the
            # arm cascade, loops nest as local ``while`` bodies so a
            # back edge only rescans its own loop's arms.
            self._emit_items(out, arm, self.tree)
            # Full-membership tail: a dynamically dispatched ``pc``
            # (an in-region ret target) that broke out of every nested
            # loop rescans the whole cascade instead of falling off.
            heads = ", ".join(str(h) for h in sorted(self.pos))
            out.append(f"{arm}if pc in ({heads},):")
            out.append(f"{arm}    continue")
            out.append(
                f'{arm}raise MachineError("jit dispatch lost: %d" % pc)'
            )
        else:
            self._emit_tree(out, ind, self.start)
        return "\n".join(out) + "\n", name


# -- compiled program, region discovery, cache ------------------------------


@dataclass
class JitStats:
    """Translation-cache counters for one compiled program."""

    regions: int = 0
    segments: int = 0
    words: int = 0
    fallback_steps: int = 0
    invalidations: int = 0


class CompiledProgram:
    """Per-executable translation state, shared across runs."""

    def __init__(self, decoded, text_base, entry_index, proc_indexes,
                 layout=(0, 0, 0, 0), text=b""):
        self.decoded = decoded
        self.text_base = text_base
        self.nwords = len(decoded)
        #: jsr word index -> linker-hinted target word index.  The
        #: 14-bit hint field predicts the low bits of ``target >> 2``;
        #: when the text spans at most 2**14 words the prediction is
        #: unambiguous.  It is advisory only (function pointers carry
        #: hint 0, which we treat as unset), so every use is guarded by
        #: a runtime compare against the actual jump register.
        self.jump_hint: dict[int, int] = {}
        if self.nwords <= 16384 and len(text) >= 4 * self.nwords:
            base2 = (text_base >> 2) & 0x3FFF
            for i, op in enumerate(decoded):
                if op[0] != K_JSR:
                    continue
                h = int.from_bytes(text[4 * i:4 * i + 4], "little") & 0x3FFF
                wi = (h - base2) % 16384
                if h and wi < self.nwords:
                    self.jump_hint[i] = wi
        self.data_base, self.data_len, self.stack_base, self.stack_len = (
            layout
        )
        # The inline data/stack fast paths assume 8-aligned region bases
        # (offset alignment then equals address alignment); anything
        # else routes every access through the memory helpers.
        self.fast_mem = (
            self.data_base % 8 == 0
            and self.stack_base % 8 == 0
            and self.stack_len % 8 == 0
            and self.stack_len > 0
        )
        self.splits = self._compute_splits(entry_index, proc_indexes)
        #: word index -> segment length (0 marks an untranslatable start).
        #: Purely a function of the global split points, so overlapping
        #: regions always agree on segment boundaries — which is what
        #: makes the per-segment execution counters expandable to exact
        #: per-word counts.
        self.seg_len: dict[int, int] = {}
        #: flavor -> {start: (fn, max_segment_len) | _FALLBACK}
        self.tables: dict[tuple, dict] = {}
        self.sources: dict[tuple, str] = {}
        self.stats = JitStats()
        self._lock = threading.Lock()

    def _compute_splits(self, entry_index, proc_indexes) -> frozenset:
        splits = {entry_index}
        splits.update(proc_indexes)
        for i, op in enumerate(self.decoded):
            kind = op[0]
            if kind == K_CBR:
                splits.add(op[3])
                splits.add(i + 1)
            elif kind == K_BR or kind == K_BSR:
                splits.add(op[2])
                splits.add(i + 1)
            elif kind in (K_JSR, K_JMP, K_RET):
                splits.add(i + 1)
            elif kind == K_PAL and op[1] == PalFunc.HALT:
                splits.add(i + 1)
        return frozenset(s for s in splits if 0 <= s < self.nwords)

    def segment_end(self, s: int):
        """End (exclusive) of the segment starting at ``s``, or None."""
        n = self.seg_len.get(s)
        if n is None:
            n = self._scan_segment(s)
            self.seg_len[s] = n
        return s + n if n else None

    def _scan_segment(self, s: int) -> int:
        decoded = self.decoded
        if not _can_translate(decoded[s]):
            return 0
        i = s
        while True:
            op = decoded[i]
            kind = op[0]
            i += 1
            if kind in _CONTROL_KINDS or (
                kind == K_PAL and op[1] == PalFunc.HALT
            ):
                break
            if (
                i >= self.nwords
                or i in self.splits
                or not _can_translate(decoded[i])
            ):
                break
        return i - s

    def region_targets(self, s: int):
        """Successor word indexes of the segment starting at ``s``."""
        op = self.decoded[s + self.seg_len[s] - 1]
        kind = op[0]
        if kind == K_CBR:
            return (op[3], s + self.seg_len[s])
        if kind == K_BR:
            return (op[2],)
        if kind == K_BSR:
            # A direct call: the callee entry is a real successor, and
            # the fall-through is where a constant-folded ret lands --
            # including both lets a single-site leaf call collapse into
            # its caller's tree with no driver transition either way.
            return (op[2], s + self.seg_len[s])
        if kind == K_JSR:
            # A hinted indirect call behaves like a direct one for
            # discovery and tree building; the emitted code still
            # guards the prediction against the live jump register.
            hint = self.jump_hint.get(s + self.seg_len[s] - 1)
            if hint is not None:
                return (hint, s + self.seg_len[s])
            return ()
        if kind in (K_JMP, K_RET):
            return ()
        if kind == K_PAL and op[1] == PalFunc.HALT:
            return ()
        return (s + self.seg_len[s],)

    def _discover(self, start: int):
        segs: dict[int, int] = {}
        order: list[int] = []
        queue = deque([start])
        while queue and len(order) < _REGION_SEGMENT_CAP:
            s = queue.popleft()
            if s in segs:
                continue
            end = self.segment_end(s)
            if end is None:
                continue
            segs[s] = end
            order.append(s)
            for t in self.region_targets(s):
                if 0 <= t < self.nwords and t not in segs:
                    queue.append(t)
        return segs, order

    def build(self, start: int, flavor: tuple):
        """Translate (or fetch) the region rooted at ``start``."""
        with self._lock:
            table = self.tables.setdefault(flavor, {})
            entry = table.get(start)
            if entry is not None:
                return entry
            if not _can_translate(self.decoded[start]):
                table[start] = _FALLBACK
                return _FALLBACK
            segs, order = self._discover(start)
            em = _Emitter(self, flavor, start, segs, order)
            src, name = em.source()
            namespace = {
                "MachineError": MachineError,
                "ExecutionBudgetExceeded": ExecutionBudgetExceeded,
                "str": str,
                "chr": chr,
                "__builtins__": {},
            }
            exec(compile(src, f"<jit:{start}>", "exec"), namespace)
            entry = (namespace[name], em.max_unit)
            table[start] = entry
            self.sources[(flavor, start)] = src
            self.stats.regions += 1
            self.stats.segments += len(order)
            self.stats.words += sum(segs[s] - s for s in order)
            return entry

    def invalidate(self) -> None:
        """Drop every translation; the next run recompiles lazily."""
        with self._lock:
            self.tables.clear()
            self.seg_len.clear()
            self.sources.clear()
            self.stats.invalidations += 1


_JIT_CACHE: "OrderedDict[str, CompiledProgram]" = OrderedDict()
_JIT_CACHE_CAP = 64
_JIT_CACHE_LOCK = threading.Lock()


def program_for(machine: Machine) -> CompiledProgram:
    """The shared compiled-program image for a loaded machine."""
    exe = machine.executable
    layout = (
        machine.data_base, len(machine.data),
        machine.stack_base, len(machine.stack),
    )
    h = hashlib.sha256(machine.text)
    h.update(machine.text_base.to_bytes(8, "little"))
    h.update(exe.entry.to_bytes(8, "little"))
    # Memory-layout constants are baked into the generated fast paths,
    # so they are part of the translation identity.
    for bound in layout:
        h.update(bound.to_bytes(8, "little"))
    for proc in exe.procs:
        h.update(proc.addr.to_bytes(8, "little", signed=True))
    key = h.hexdigest()
    with _JIT_CACHE_LOCK:
        prog = _JIT_CACHE.get(key)
        if prog is not None:
            _JIT_CACHE.move_to_end(key)
            return prog
    entry_index = (exe.entry - machine.text_base) >> 2
    proc_indexes = [
        (proc.addr - machine.text_base) >> 2 for proc in exe.procs
    ]
    prog = CompiledProgram(
        machine._decoded, machine.text_base, entry_index, proc_indexes,
        layout=layout, text=bytes(machine.text),
    )
    with _JIT_CACHE_LOCK:
        existing = _JIT_CACHE.get(key)
        if existing is not None:
            return existing
        _JIT_CACHE[key] = prog
        while len(_JIT_CACHE) > _JIT_CACHE_CAP:
            _JIT_CACHE.popitem(last=False)
    return prog


def clear_jit_cache() -> None:
    """Drop every cached translation (tests, memory pressure)."""
    with _JIT_CACHE_LOCK:
        _JIT_CACHE.clear()


def jit_cache_len() -> int:
    with _JIT_CACHE_LOCK:
        return len(_JIT_CACHE)


# -- single-step interpreter fallback ---------------------------------------
#
# Transcriptions of one iteration of the cpu.py loops, operating on the
# driver's shared state vector.  Used for words the translator does not
# cover; must stay bit-for-bit equivalent to the interpreter.


def _step_functional(m, regs, st, out, index, counts, cycle_counts,
                     ready, itags, dtags):
    decoded = m._decoded
    op = decoded[index]
    kind = op[0]
    st[0] += 1
    if counts is not None:
        counts[index] += 1
    if st[0] > st[1]:
        raise ExecutionBudgetExceeded(st[1])
    if kind == K_LDQ:
        __, ra, rb, disp = op
        regs[ra] = m._load_q((regs[rb] + disp) & _MASK)
    elif kind == K_OP_RR or kind == K_OP_RL:
        __, fn, ra, rb, rc = op
        b = rb if kind == K_OP_RL else regs[rb]
        regs[rc] = _operate(fn, regs[ra], b, regs[rc])
    elif kind == K_LDA:
        __, ra, rb, disp = op
        regs[ra] = (regs[rb] + disp) & _MASK
    elif kind == K_LDAH:
        __, ra, rb, disp = op
        regs[ra] = (regs[rb] + (disp << 16)) & _MASK
    elif kind == K_STQ:
        __, ra, rb, disp = op
        m._store_q((regs[rb] + disp) & _MASK, regs[ra])
    elif kind == K_CBR:
        __, cond, ra, target = op
        if _branch_taken(cond, regs[ra]):
            regs[31] = 0
            return target
    elif kind == K_BR or kind == K_BSR:
        __, ra, target = op
        regs[ra] = m.text_base + 4 * (index + 1)
        regs[31] = 0
        return target
    elif kind == K_JSR or kind == K_JMP or kind == K_RET:
        __, ra, rb = op
        dest = regs[rb] & ~3
        regs[ra] = m.text_base + 4 * (index + 1)
        regs[31] = 0
        nxt = (dest - m.text_base) >> 2
        if not 0 <= nxt < len(decoded):
            raise MachineError(f"jump to unmapped address {dest:#x}")
        return nxt
    elif kind == K_PAL:
        func = op[1]
        if func == PalFunc.HALT:
            return _HALT
        if func == PalFunc.PUTINT:
            value = regs[16]
            out.append(str(value - (1 << 64) if value >> 63 else value))
            out.append("\n")
        elif func == PalFunc.PUTCHAR:
            out.append(chr(regs[16] & 0xFF))
        elif func == PalFunc.GETTICKS:
            regs[0] = st[0]
        else:
            raise MachineError(f"unknown PAL function {func:#x}")
    elif kind == K_LDL:
        __, ra, rb, disp = op
        value = m._load_q((regs[rb] + disp) & ~7 & _MASK)
        shift = ((regs[rb] + disp) & 4) * 8
        word = (value >> shift) & 0xFFFFFFFF
        regs[ra] = word | (~0xFFFFFFFF & _MASK if word >> 31 else 0)
    elif kind == K_LDQ_U:
        __, ra, rb, disp = op
        regs[ra] = m._load_q((regs[rb] + disp) & ~7 & _MASK)
    elif kind == K_LDBU:
        __, ra, rb, disp = op
        regs[ra] = m._load_byte((regs[rb] + disp) & _MASK)
    elif kind == K_STB:
        __, ra, rb, disp = op
        m._store_byte((regs[rb] + disp) & _MASK, regs[ra])
    elif kind == K_STL:
        __, ra, rb, disp = op
        m._store_long((regs[rb] + disp) & _MASK, regs[ra])
    else:
        raise MachineError(f"unhandled op kind {kind}")
    regs[31] = 0
    return index + 1


def _step_timed(m, regs, st, out, index, counts, cycle_counts,
                ready, itags, dtags):
    decoded = m._decoded
    op = decoded[index]
    kind = op[0]
    st[0] += 1
    if counts is not None:
        counts[index] += 1
    if st[0] > st[1]:
        raise ExecutionBudgetExceeded(st[1])
    cycle = st[2]
    slot_open = st[3]
    slot_class = st[4]

    iaddr = m.text_base + 4 * index
    line = iaddr >> _ILINE_SHIFT
    islot = line & (_IN_LINES - 1)
    if itags[islot] != line:
        itags[islot] = line
        st[5] += 1
        cycle += CACHE_MISS_PENALTY
        slot_open = False

    if kind == K_OP_RR:
        __, fn, ra, rb, rc = op
        klass = 2
        operand_ready = ready[ra] if ready[ra] > ready[rb] else ready[rb]
    elif kind == K_OP_RL:
        __, fn, ra, rb, rc = op
        klass = 2
        operand_ready = ready[ra]
    elif kind in (K_LDQ, K_LDA, K_LDAH, K_LDL, K_LDQ_U, K_LDBU):
        __, ra, rb, disp = op
        klass = 1
        operand_ready = ready[rb]
    elif kind in (K_STQ, K_STL, K_STB):
        __, ra, rb, disp = op
        klass = 1
        operand_ready = ready[ra] if ready[ra] > ready[rb] else ready[rb]
    elif kind == K_CBR:
        __, cond, ra, target = op
        klass = 3
        operand_ready = ready[ra]
    elif kind in (K_JSR, K_JMP, K_RET):
        __, ra, rb = op
        klass = 3
        operand_ready = ready[rb]
    else:
        klass = 3
        operand_ready = 0

    if slot_open and operand_ready <= cycle and klass != slot_class:
        slot_open = False
        st[7] += 1
        issue = cycle
    else:
        issue = cycle + 1
        if operand_ready > issue:
            issue = operand_ready
        cycle = issue
        slot_open = True
        slot_class = klass

    taken = False
    next_index = index + 1
    if kind == K_LDQ:
        addr = (regs[rb] + disp) & _MASK
        regs[ra] = m._load_q(addr)
        latency = LOAD_LATENCY
        dline = addr >> _ILINE_SHIFT
        dslot = dline & (_DN_LINES - 1)
        if dtags[dslot] != dline:
            dtags[dslot] = dline
            st[6] += 1
            latency += CACHE_MISS_PENALTY
        ready[ra] = issue + latency
    elif kind == K_OP_RR or kind == K_OP_RL:
        b = rb if kind == K_OP_RL else regs[rb]
        regs[rc] = _operate(fn, regs[ra], b, regs[rc])
        ready[rc] = issue + (MUL_LATENCY if fn in (2, 7, 8) else 1)
    elif kind == K_LDA:
        regs[ra] = (regs[rb] + disp) & _MASK
        ready[ra] = issue + 1
    elif kind == K_LDAH:
        regs[ra] = (regs[rb] + (disp << 16)) & _MASK
        ready[ra] = issue + 1
    elif kind == K_STQ:
        addr = (regs[rb] + disp) & _MASK
        m._store_q(addr, regs[ra])
        dline = addr >> _ILINE_SHIFT
        dslot = dline & (_DN_LINES - 1)
        if dtags[dslot] != dline:
            dtags[dslot] = dline
            st[6] += 1
            cycle += CACHE_MISS_PENALTY
            slot_open = False
    elif kind == K_CBR:
        if _branch_taken(cond, regs[ra]):
            taken = True
            next_index = target
    elif kind == K_BR or kind == K_BSR:
        __, ra2, target = op
        regs[ra2] = m.text_base + 4 * (index + 1)
        ready[ra2] = issue + 1
        taken = True
        next_index = target
    elif kind in (K_JSR, K_JMP, K_RET):
        dest = regs[rb] & ~3
        regs[ra] = m.text_base + 4 * (index + 1)
        ready[ra] = issue + 1
        taken = True
        next_index = (dest - m.text_base) >> 2
        if not 0 <= next_index < len(decoded):
            raise MachineError(f"jump to unmapped address {dest:#x}")
    elif kind == K_PAL:
        func = op[1]
        if func == PalFunc.HALT:
            st[2] = cycle
            st[3] = slot_open
            st[4] = slot_class
            if cycle_counts is not None:
                # The halting word is charged after the interpreter's loop.
                cycle_counts[index] += cycle - st[8]
            return _HALT
        if func == PalFunc.PUTINT:
            value = regs[16]
            out.append(str(value - (1 << 64) if value >> 63 else value))
            out.append("\n")
        elif func == PalFunc.PUTCHAR:
            out.append(chr(regs[16] & 0xFF))
        elif func == PalFunc.GETTICKS:
            regs[0] = cycle
            ready[0] = issue + 1
        else:
            raise MachineError(f"unknown PAL function {func:#x}")
    elif kind == K_LDL:
        addr = (regs[rb] + disp) & _MASK
        value = m._load_q(addr & ~7)
        shift = (addr & 4) * 8
        word = (value >> shift) & 0xFFFFFFFF
        regs[ra] = word | (~0xFFFFFFFF & _MASK if word >> 31 else 0)
        ready[ra] = issue + LOAD_LATENCY
    elif kind == K_LDQ_U:
        regs[ra] = m._load_q((regs[rb] + disp) & ~7 & _MASK)
        ready[ra] = issue + LOAD_LATENCY
    elif kind == K_LDBU:
        regs[ra] = m._load_byte((regs[rb] + disp) & _MASK)
        ready[ra] = issue + LOAD_LATENCY
    elif kind == K_STB:
        m._store_byte((regs[rb] + disp) & _MASK, regs[ra])
    elif kind == K_STL:
        m._store_long((regs[rb] + disp) & _MASK, regs[ra])
    else:
        raise MachineError(f"unhandled op kind {kind}")

    regs[31] = 0
    ready[31] = 0
    if taken:
        cycle = issue + TAKEN_BRANCH_PENALTY
        slot_open = False
    st[2] = cycle
    st[3] = slot_open
    st[4] = slot_class
    if cycle_counts is not None:
        cycle_counts[index] += cycle - st[8]
        st[8] = cycle
    return next_index


# -- the driver --------------------------------------------------------------


class JitMachine(Machine):
    """A :class:`Machine` whose run loops execute translated regions."""

    def __post_init__(self) -> None:
        super().__post_init__()
        self._jit_prog = None

    def jit_program(self) -> CompiledProgram:
        if self._jit_prog is None:
            self._jit_prog = program_for(self)
        return self._jit_prog

    def _run_functional(self, counts=None) -> RunResult:
        return self._run_jit(False, counts, None)

    def _run_timed(self, counts=None, cycle_counts=None) -> RunResult:
        return self._run_jit(True, counts, cycle_counts)

    def _run_jit(self, timed, counts, cycle_counts) -> RunResult:
        program = self.jit_program()
        counting = counts is not None
        cyc_flag = timed and cycle_counts is not None
        fast = (timed, counting, cyc_flag, False)
        guarded = (timed, counting, cyc_flag, True)
        with program._lock:
            ftable = program.tables.setdefault(fast, {})
            gtable = program.tables.setdefault(guarded, {})

        regs, index = self._initial_state()
        limit = self.max_instructions
        st = [0, limit, 0, False, 0, 0, 0, 0, 0]
        out: list[str] = []
        if program.fast_mem:
            qd = memoryview(self.data)[: len(self.data) & ~7].cast("Q")
            qs = memoryview(self.stack).cast("Q")
        else:
            qd = qs = None
        mem = (self._load_q, self._store_q, self._load_byte,
               self._store_byte, self._store_long, qd, qs,
               self.data, self.stack)
        if timed:
            ready = [0] * 32
            itags = [-1] * _IN_LINES
            dtags = [-1] * _DN_LINES
            step = _step_timed
        else:
            ready = itags = dtags = None
            step = _step_functional
        execs = [0] * program.nwords if counting else None
        stats = program.stats
        build = program.build
        get_fast = ftable.get

        try:
            while True:
                if index < 0:
                    if index == _HALT:
                        break
                    # A negative branch target: the interpreter would
                    # wrap around via Python list indexing; mirror it
                    # one instruction at a time.
                    index = step(self, regs, st, out, index, counts,
                                 cycle_counts, ready, itags, dtags)
                    continue
                entry = get_fast(index)
                if entry is None:
                    entry = build(index, fast)
                if entry is _FALLBACK:
                    stats.fallback_steps += 1
                    index = step(self, regs, st, out, index, counts,
                                 cycle_counts, ready, itags, dtags)
                    continue
                if st[0] + entry[1] > limit:
                    # The next segment may overrun the budget: switch to
                    # the guarded flavor, which checks per instruction
                    # and raises at the interpreter's exact index.
                    gentry = gtable.get(index)
                    if gentry is None:
                        gentry = build(index, guarded)
                    if gentry is _FALLBACK:
                        stats.fallback_steps += 1
                        index = step(self, regs, st, out, index, counts,
                                     cycle_counts, ready, itags, dtags)
                        continue
                    entry = gentry
                index = entry[0](regs, st, out, mem, ready, itags, dtags,
                                 counts, cycle_counts, execs)
        finally:
            if qd is not None:
                # Release the exported buffers so the bytearrays stay
                # resizable for callers once the run is over.
                qd.release()
                qs.release()
            if counting:
                # Expand per-segment execution counters to per-word
                # counts; valid even across overlapping regions because
                # segmentation is a pure function of the split points.
                seg_len = program.seg_len
                for s, hits in enumerate(execs):
                    if hits:
                        for i in range(s, s + seg_len[s]):
                            counts[i] += hits

        if timed:
            return RunResult(
                "".join(out),
                st[0],
                cycles=st[2],
                icache_misses=st[5],
                dcache_misses=st[6],
                dual_issues=st[7],
                halted=True,
            )
        return RunResult("".join(out), st[0], cycles=st[0], halted=True)


class JitProfilingMachine(JitMachine, ProfilingMachine):
    """Profiling machine running on the JIT loops.

    ``run_profiled`` comes from :class:`ProfilingMachine`; the count and
    cycle hooks it passes land in :meth:`JitMachine._run_timed` /
    ``_run_functional``, so attribution arrays are filled by the same
    translated code that produces the run result.
    """
