"""Simulated AXP machine (the DECstation 3000/400 analog).

Executes linked executables and reports both architectural results
(console output, instruction counts) and micro-architectural timing
(cycles under an in-order dual-issue model with load-use stalls, split
direct-mapped I/D caches, and taken-branch bubbles) — the terms that
produce the paper's dynamic measurements.
"""

from repro.machine.cpu import (
    ExecutionBudgetExceeded,
    Machine,
    MachineError,
    RunResult,
    run,
)

__all__ = [
    "ExecutionBudgetExceeded",
    "Machine",
    "MachineError",
    "RunResult",
    "run",
]
