"""Simulated AXP machine (the DECstation 3000/400 analog).

Executes linked executables and reports both architectural results
(console output, instruction counts) and micro-architectural timing
(cycles under an in-order dual-issue model with load-use stalls, split
direct-mapped I/D caches, and taken-branch bubbles) — the terms that
produce the paper's dynamic measurements.

Two backends execute the same ISA:

* ``interp`` — the reference interpreter loops in :mod:`.cpu`, the
  ground truth every other component is checked against;
* ``jit`` — the translating backend in :mod:`.jit`, which compiles
  basic-block regions to specialized Python closures and must match
  the interpreter bit-for-bit on every observable.

:func:`run` and :func:`machine_for` take a ``backend=`` selector
(default: the ``REPRO_MACHINE_BACKEND`` environment variable, falling
back to ``interp``).
"""

from __future__ import annotations

import os

from repro.machine.cpu import (
    ExecutionBudgetExceeded,
    Machine,
    MachineError,
    RunResult,
)

#: Recognized values for the ``backend=`` selector.
BACKENDS = ("interp", "jit")

#: Environment variable consulted when ``backend`` is not given.
BACKEND_ENV = "REPRO_MACHINE_BACKEND"


def resolve_backend(backend: str | None = None) -> str:
    """Normalize a backend name, consulting the environment default."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "interp"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown machine backend {backend!r} "
            f"(choose from {', '.join(BACKENDS)})"
        )
    return backend


def machine_for(
    executable,
    *,
    backend: str | None = None,
    max_instructions: int = 200_000_000,
) -> Machine:
    """A loaded machine instance using the selected backend."""
    if resolve_backend(backend) == "jit":
        from repro.machine.jit import JitMachine

        return JitMachine(executable, max_instructions=max_instructions)
    return Machine(executable, max_instructions=max_instructions)


def run(
    executable,
    *,
    timed: bool = True,
    max_instructions: int = 200_000_000,
    backend: str | None = None,
) -> RunResult:
    """Load and run an executable to completion."""
    machine = machine_for(
        executable, backend=backend, max_instructions=max_instructions
    )
    return machine.run(timed=timed)


__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "ExecutionBudgetExceeded",
    "Machine",
    "MachineError",
    "RunResult",
    "machine_for",
    "resolve_backend",
    "run",
]
