"""Frontend protocol: language dispatch over source text → ObjectFile.

Every frontend implements the same two-call protocol —
``compile_module(text, name, options) -> ObjectFile`` for compile-each
and ``compile_all(sources, unit_name, options) -> ObjectFile`` for
compile-all — over the shared :class:`~repro.minicc.driver.Options`.
This module is the single seam that picks a frontend: by source
extension (``.mc`` → MiniC, ``.dcf`` → Decaf) or by an explicit
language override (the toolchain's ``--lang``).

:func:`compile_sources` is what the toolchain CLI, the fuzz oracle,
the serve compile worker, and the benchsuite all dispatch through.  In
compile-all mode, sources are grouped *per language* into one unit
each (in first-appearance order): frontends share the IR, not the AST,
so cross-language merging happens where it always did — at link time.
"""

from __future__ import annotations

from repro.minicc.driver import Options
from repro.objfile.objfile import ObjectFile

#: Source-extension → language registry.
EXTENSIONS = {".mc": "minic", ".dcf": "decaf"}

#: Registered language names, dispatch order for mixed units.
LANGUAGES = ("minic", "decaf")

#: The language assumed for unknown extensions (and plain stdin text).
DEFAULT_LANGUAGE = "minic"


def frontend_for(language: str):
    """The frontend module implementing ``language``'s protocol."""
    if language == "minic":
        from repro import minicc

        return minicc
    if language == "decaf":
        from repro import decafc

        return decafc
    raise ValueError(
        f"unknown language {language!r} (choose from {', '.join(LANGUAGES)})"
    )


def language_for(filename: str, default: str = DEFAULT_LANGUAGE) -> str:
    """The language a file name selects, by extension."""
    name = str(filename)
    dot = name.rfind(".")
    if dot >= 0:
        language = EXTENSIONS.get(name[dot:])
        if language is not None:
            return language
    return default


def object_name(filename: str) -> str:
    """The object-module name for a source file (``x.dcf`` → ``x.o``)."""
    stem = str(filename).rsplit(".", 1)[0]
    return f"{stem}.o"


def compile_sources(
    sources: list[tuple[str, str]],
    mode: str = "each",
    options: Options | None = None,
    language: str | None = None,
) -> list[ObjectFile]:
    """Compile ``(name, text)`` pairs, dispatching per-file by language.

    ``mode="each"`` yields one object per source; ``mode="all"`` yields
    one compile-all unit per language present (named ``all.o`` when the
    program is single-language, ``all-<lang>.o`` per group otherwise).
    ``language`` forces every source through one frontend regardless of
    extension.
    """
    if mode not in ("each", "all"):
        raise ValueError(f"unknown mode {mode!r}")
    options = options or Options()
    if mode == "each":
        return [
            frontend_for(
                language or language_for(name)
            ).compile_module(text, object_name(name), options)
            for name, text in sources
        ]
    groups: dict[str, list[tuple[str, str]]] = {}
    for name, text in sources:
        lang = language or language_for(name)
        frontend_for(lang)  # validate the name before grouping
        groups.setdefault(lang, []).append((name, text))
    objects = []
    for lang, group in groups.items():
        unit = "all.o" if len(groups) == 1 else f"all-{lang}.o"
        objects.append(frontend_for(lang).compile_all(group, unit, options))
    return objects
