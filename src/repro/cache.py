"""Persistent, content-addressed artifact cache for toolchain outputs.

Keys are SHA-256 digests over a canonical JSON payload — the source
texts, option fields, and variant that produced an artifact — salted
with a *toolchain version stamp*: the hash of every Python source file
of the ``repro`` package itself.  Editing the compiler, linker,
optimizer, or simulator therefore invalidates every artifact they ever
produced, while re-running an unchanged toolchain over unchanged
sources is a pure cache read.

Values are opaque bytes (``repro.objfile.serialize`` dumps for objects
and archives, ``repro.linker.executable.dump_executable`` images for
executables, JSON for simulator results).  The store is a flat
two-level directory tree, ``<root>/<kind>/<aa>/<digest>``, written
crash-consistently: each entry is framed in a checksummed envelope,
fsynced, and renamed into place (with a parent-directory fsync), so a
writer killed at any instant can never publish a torn artifact — and a
torn entry that somehow appears anyway (pre-fix caches, disk faults)
is quarantined on first read instead of being served forever.
"""

from __future__ import annotations

import concurrent.futures
import errno
import functools
import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path


def compute_toolchain_stamp() -> str:
    """Hash of the ``repro`` package sources (the cache's version salt).

    Uncached: every call re-reads the sources.  Long-lived processes
    (the serve daemon) call this once at startup and thread the value
    explicitly, so an in-place toolchain upgrade is picked up by the
    next daemon start rather than silently keying new artifacts under
    the stamp of the code that *was* on disk at import time.
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@functools.lru_cache(maxsize=1)
def toolchain_stamp() -> str:
    """Memoized :func:`compute_toolchain_stamp` for short-lived tools."""
    return compute_toolchain_stamp()


@dataclass
class CacheStats:
    """Hit/miss/error counters, total and per artifact kind.

    Increments take a class-wide lock (not pickled with instances) so
    the serving path may count from many threads without losing
    updates; reads are plain dict lookups.  ``errors`` counts reads
    that failed for a reason *other than* the entry being absent
    (permissions, I/O faults): those are infrastructure problems, not
    cold-cache behavior, and must not be folded into ``misses``.
    """

    _LOCK = threading.Lock()

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    quarantines: dict[str, int] = field(default_factory=dict)

    def hit(self, kind: str) -> None:
        with CacheStats._LOCK:
            self.hits[kind] = self.hits.get(kind, 0) + 1

    def miss(self, kind: str) -> None:
        with CacheStats._LOCK:
            self.misses[kind] = self.misses.get(kind, 0) + 1

    def error(self, kind: str) -> None:
        with CacheStats._LOCK:
            self.errors[kind] = self.errors.get(kind, 0) + 1

    def quarantine(self, kind: str) -> None:
        with CacheStats._LOCK:
            self.quarantines[kind] = self.quarantines.get(kind, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    @property
    def total_errors(self) -> int:
        return sum(self.errors.values())

    @property
    def total_quarantines(self) -> int:
        return sum(self.quarantines.values())

    def snapshot(self) -> tuple[int, int]:
        return self.total_hits, self.total_misses

    def to_dict(self) -> dict:
        """The ``status``-payload shape: totals plus per-kind maps."""
        return {
            "hits": self.total_hits,
            "misses": self.total_misses,
            "errors": self.total_errors,
            "quarantines": self.total_quarantines,
            "by_kind": {
                "hits": dict(self.hits),
                "misses": dict(self.misses),
                "errors": dict(self.errors),
                "quarantines": dict(self.quarantines),
            },
        }


#: Entry envelope: magic, payload length, payload SHA-256, payload.
#: The checksum lets ``get`` detect a torn or bit-rotted entry and
#: quarantine it instead of serving garbage as a hit.
_MAGIC = b"RAC1"
_HEADER_LEN = len(_MAGIC) + 8 + 32


def _encode_entry(data: bytes) -> bytes:
    return (
        _MAGIC
        + len(data).to_bytes(8, "big")
        + hashlib.sha256(data).digest()
        + data
    )


def _decode_entry(blob: bytes) -> bytes | None:
    """The payload, or None when the envelope does not check out."""
    if len(blob) < _HEADER_LEN or blob[: len(_MAGIC)] != _MAGIC:
        return None
    length = int.from_bytes(blob[len(_MAGIC) : len(_MAGIC) + 8], "big")
    digest = blob[len(_MAGIC) + 8 : _HEADER_LEN]
    data = blob[_HEADER_LEN:]
    if len(data) != length or hashlib.sha256(data).digest() != digest:
        return None
    return data


def _fsync_file(handle) -> None:
    """Flush and fsync an open file object (fault-injection seam)."""
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path: Path) -> None:
    """Fsync a directory so a just-renamed entry survives a crash.

    Best-effort: some platforms refuse to open directories; losing the
    rename to a crash there degrades to a cache miss, never a torn
    entry (the rename itself is still atomic).
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class ArtifactCache:
    """A content-addressed store of build artifacts on disk."""

    def __init__(
        self,
        root: str | Path,
        *,
        stamp: str | None = None,
        trace=None,
    ):
        self.root = Path(root)
        self.stamp = stamp if stamp is not None else toolchain_stamp()
        self.stats = CacheStats()
        #: Optional :class:`repro.obs.trace.TraceLog`; read errors and
        #: quarantines emit instant events on it.
        self.trace = trace

    def key(self, payload) -> str:
        """Digest of a JSON-serializable payload under the current stamp."""
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(
            self.stamp.encode() + b"\0" + canonical.encode()
        ).hexdigest()

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / key[2:]

    def _event(self, name: str, **args) -> None:
        if self.trace is not None:
            self.trace.event(name, cat="cache", **args)

    def get(self, kind: str, key: str) -> bytes | None:
        """The stored bytes, or None; records a hit, miss, or error.

        An absent entry (ENOENT) is a miss.  Any other ``OSError`` —
        permissions, I/O faults, a directory where a file should be —
        is counted in ``stats.errors`` and traced, *not* silently
        reported as cold-cache behavior.  An entry whose envelope fails
        verification (torn write from a pre-fix cache, bit rot) is
        deleted and reported as a miss, so one bad entry costs one
        rebuild instead of poisoning every future read.
        """
        path = self._path(kind, key)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            if exc.errno == errno.ENOENT:
                self.stats.miss(kind)
                self._event("cache.miss", kind=kind, key=key)
                return None
            self.stats.error(kind)
            self._event(
                "cache.error",
                kind=kind,
                key=key,
                errno=exc.errno,
                error=str(exc),
            )
            return None
        data = _decode_entry(blob)
        if data is None:
            try:
                os.unlink(path)
            except OSError:
                pass
            self.stats.miss(kind)
            self.stats.quarantine(kind)
            self._event("cache.quarantine", kind=kind, key=key, size=len(blob))
            return None
        self.stats.hit(kind)
        self._event("cache.hit", kind=kind, key=key, size=len(data))
        return data

    def put(self, kind: str, key: str, data: bytes) -> None:
        """Store bytes under (kind, key), atomically and durably.

        The envelope is written to a temp file which is fsynced
        *before* the rename publishes it, and the parent directory is
        fsynced after, so a crash at any point leaves either no entry
        or the complete entry — never a truncated one.
        """
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_encode_entry(data))
                _fsync_file(handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_dir(path.parent)

    def contains(self, kind: str, key: str) -> bool:
        """Presence check that does not touch the hit/miss counters."""
        return self._path(kind, key).exists()


class SingleFlight:
    """Coalesce concurrent computations of the same content key.

    While a computation for ``key`` is in flight, every further caller
    joins it instead of starting a duplicate: the first caller (the
    *leader*) runs the thunk; the rest (*followers*) wait on a shared
    future and receive the leader's result — or its exception.  This is
    the dedup layer the toolchain daemon puts in front of the disk
    cache: N identical in-flight requests cost one build.

    The flight registry is thread-safe, and the futures are
    ``concurrent.futures.Future`` objects, so followers may wait from
    plain threads (``Future.result``) or from an event loop
    (``asyncio.wrap_future``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, concurrent.futures.Future] = {}
        self.started = 0  # flights opened (leaders)
        self.coalesced = 0  # callers who joined an existing flight

    def begin(self, key: str) -> tuple[bool, concurrent.futures.Future]:
        """Open or join the flight for ``key``: ``(is_leader, future)``.

        A leader must settle the returned future with :meth:`finish` or
        :meth:`fail` (``do`` packages this discipline for synchronous
        callers); followers just wait on it.
        """
        with self._lock:
            future = self._flights.get(key)
            if future is not None:
                self.coalesced += 1
                return False, future
            future = concurrent.futures.Future()
            self._flights[key] = future
            self.started += 1
            return True, future

    def _settle(self, key: str) -> None:
        with self._lock:
            self._flights.pop(key, None)

    def finish(self, key: str, future: concurrent.futures.Future, value) -> None:
        """Publish the leader's result and close the flight."""
        self._settle(key)
        future.set_result(value)

    def fail(self, key: str, future: concurrent.futures.Future, exc: BaseException) -> None:
        """Propagate the leader's failure to every follower."""
        self._settle(key)
        future.set_exception(exc)

    def do(self, key: str, thunk) -> tuple[object, bool]:
        """Run ``thunk`` once per concurrent ``key``: ``(value, led)``.

        ``led`` is True when this caller actually executed the thunk,
        False when the value came from another caller's flight.
        """
        leader, future = self.begin(key)
        if not leader:
            return future.result(), False
        try:
            value = thunk()
        except BaseException as exc:
            self.fail(key, future, exc)
            raise
        self.finish(key, future, value)
        return value, True


#: Process-wide default flight registry behind :func:`single_flight`.
_FLIGHTS = SingleFlight()


def single_flight(key: str, thunk) -> tuple[object, bool]:
    """Coalesce concurrent ``thunk`` runs for ``key`` process-wide.

    Returns ``(value, led)`` — see :meth:`SingleFlight.do`.
    """
    return _FLIGHTS.do(key, thunk)
