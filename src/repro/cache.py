"""Persistent, content-addressed artifact cache for toolchain outputs.

Keys are SHA-256 digests over a canonical JSON payload — the source
texts, option fields, and variant that produced an artifact — salted
with a *toolchain version stamp*: the hash of every Python source file
of the ``repro`` package itself.  Editing the compiler, linker,
optimizer, or simulator therefore invalidates every artifact they ever
produced, while re-running an unchanged toolchain over unchanged
sources is a pure cache read.

Values are opaque bytes (``repro.objfile.serialize`` dumps for objects
and archives, ``repro.linker.executable.dump_executable`` images for
executables, JSON for simulator results).  The store is a flat
two-level directory tree, ``<root>/<kind>/<aa>/<digest>``, written
atomically (temp file + rename) so concurrent writers — the parallel
experiment pipeline runs one process per job — can never expose a torn
artifact.
"""

from __future__ import annotations

import concurrent.futures
import functools
import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path


@functools.lru_cache(maxsize=1)
def toolchain_stamp() -> str:
    """Hash of the ``repro`` package sources (the cache's version salt)."""
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss counters, total and per artifact kind.

    Increments take a class-wide lock (not pickled with instances) so
    the serving path may count from many threads without losing
    updates; reads are plain dict lookups.
    """

    _LOCK = threading.Lock()

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)

    def hit(self, kind: str) -> None:
        with CacheStats._LOCK:
            self.hits[kind] = self.hits.get(kind, 0) + 1

    def miss(self, kind: str) -> None:
        with CacheStats._LOCK:
            self.misses[kind] = self.misses.get(kind, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def snapshot(self) -> tuple[int, int]:
        return self.total_hits, self.total_misses


class ArtifactCache:
    """A content-addressed store of build artifacts on disk."""

    def __init__(self, root: str | Path, *, stamp: str | None = None):
        self.root = Path(root)
        self.stamp = stamp if stamp is not None else toolchain_stamp()
        self.stats = CacheStats()

    def key(self, payload) -> str:
        """Digest of a JSON-serializable payload under the current stamp."""
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(
            self.stamp.encode() + b"\0" + canonical.encode()
        ).hexdigest()

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / key[2:]

    def get(self, kind: str, key: str) -> bytes | None:
        """The stored bytes, or None; records a hit or miss."""
        try:
            data = self._path(kind, key).read_bytes()
        except OSError:
            self.stats.miss(kind)
            return None
        self.stats.hit(kind)
        return data

    def put(self, kind: str, key: str, data: bytes) -> None:
        """Store bytes under (kind, key), atomically."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def contains(self, kind: str, key: str) -> bool:
        """Presence check that does not touch the hit/miss counters."""
        return self._path(kind, key).exists()


class SingleFlight:
    """Coalesce concurrent computations of the same content key.

    While a computation for ``key`` is in flight, every further caller
    joins it instead of starting a duplicate: the first caller (the
    *leader*) runs the thunk; the rest (*followers*) wait on a shared
    future and receive the leader's result — or its exception.  This is
    the dedup layer the toolchain daemon puts in front of the disk
    cache: N identical in-flight requests cost one build.

    The flight registry is thread-safe, and the futures are
    ``concurrent.futures.Future`` objects, so followers may wait from
    plain threads (``Future.result``) or from an event loop
    (``asyncio.wrap_future``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, concurrent.futures.Future] = {}
        self.started = 0  # flights opened (leaders)
        self.coalesced = 0  # callers who joined an existing flight

    def begin(self, key: str) -> tuple[bool, concurrent.futures.Future]:
        """Open or join the flight for ``key``: ``(is_leader, future)``.

        A leader must settle the returned future with :meth:`finish` or
        :meth:`fail` (``do`` packages this discipline for synchronous
        callers); followers just wait on it.
        """
        with self._lock:
            future = self._flights.get(key)
            if future is not None:
                self.coalesced += 1
                return False, future
            future = concurrent.futures.Future()
            self._flights[key] = future
            self.started += 1
            return True, future

    def _settle(self, key: str) -> None:
        with self._lock:
            self._flights.pop(key, None)

    def finish(self, key: str, future: concurrent.futures.Future, value) -> None:
        """Publish the leader's result and close the flight."""
        self._settle(key)
        future.set_result(value)

    def fail(self, key: str, future: concurrent.futures.Future, exc: BaseException) -> None:
        """Propagate the leader's failure to every follower."""
        self._settle(key)
        future.set_exception(exc)

    def do(self, key: str, thunk) -> tuple[object, bool]:
        """Run ``thunk`` once per concurrent ``key``: ``(value, led)``.

        ``led`` is True when this caller actually executed the thunk,
        False when the value came from another caller's flight.
        """
        leader, future = self.begin(key)
        if not leader:
            return future.result(), False
        try:
            value = thunk()
        except BaseException as exc:
            self.fail(key, future, exc)
            raise
        self.finish(key, future, value)
        return value, True


#: Process-wide default flight registry behind :func:`single_flight`.
_FLIGHTS = SingleFlight()


def single_flight(key: str, thunk) -> tuple[object, bool]:
    """Coalesce concurrent ``thunk`` runs for ``key`` process-wide.

    Returns ``(value, led)`` — see :meth:`SingleFlight.do`.
    """
    return _FLIGHTS.do(key, thunk)
