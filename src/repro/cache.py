"""Persistent, content-addressed artifact cache for toolchain outputs.

Keys are SHA-256 digests over a canonical JSON payload — the source
texts, option fields, and variant that produced an artifact — salted
with a *toolchain version stamp*: the hash of every Python source file
of the ``repro`` package itself.  Editing the compiler, linker,
optimizer, or simulator therefore invalidates every artifact they ever
produced, while re-running an unchanged toolchain over unchanged
sources is a pure cache read.

Values are opaque bytes (``repro.objfile.serialize`` dumps for objects
and archives, ``repro.linker.executable.dump_executable`` images for
executables, JSON for simulator results).  The store is a flat
two-level directory tree, ``<root>/<kind>/<aa>/<digest>``, written
atomically (temp file + rename) so concurrent writers — the parallel
experiment pipeline runs one process per job — can never expose a torn
artifact.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path


@functools.lru_cache(maxsize=1)
def toolchain_stamp() -> str:
    """Hash of the ``repro`` package sources (the cache's version salt)."""
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss counters, total and per artifact kind."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)

    def hit(self, kind: str) -> None:
        self.hits[kind] = self.hits.get(kind, 0) + 1

    def miss(self, kind: str) -> None:
        self.misses[kind] = self.misses.get(kind, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def snapshot(self) -> tuple[int, int]:
        return self.total_hits, self.total_misses


class ArtifactCache:
    """A content-addressed store of build artifacts on disk."""

    def __init__(self, root: str | Path, *, stamp: str | None = None):
        self.root = Path(root)
        self.stamp = stamp if stamp is not None else toolchain_stamp()
        self.stats = CacheStats()

    def key(self, payload) -> str:
        """Digest of a JSON-serializable payload under the current stamp."""
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(
            self.stamp.encode() + b"\0" + canonical.encode()
        ).hexdigest()

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / key[2:]

    def get(self, kind: str, key: str) -> bytes | None:
        """The stored bytes, or None; records a hit or miss."""
        try:
            data = self._path(kind, key).read_bytes()
        except OSError:
            self.stats.miss(kind)
            return None
        self.stats.hit(kind)
        return data

    def put(self, kind: str, key: str, data: bytes) -> None:
        """Store bytes under (kind, key), atomically."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def contains(self, kind: str, key: str) -> bool:
        """Presence check that does not touch the hit/miss counters."""
        return self._path(kind, key).exists()
