"""The partitioned whole-program optimization (WPO) round driver.

Replaces the monolithic per-round transform of ``om_link`` with the
WHOPR-style split the LTO literature converged on (Glek & Hubička):

* a **serial whole-program phase** per round — reassemble, layout,
  GP-range/GAT grouping, GP-pair canonicalization, the jsr->bsr
  range/relaxation verdict for every call site, and cross-shard
  relocation patching (skip-label effects);
* a **parallel per-shard phase** — the calls and address-load passes
  over each shard, against shipped summaries of everything outside it;
* a serial epilogue — dead entry-setup removal over the merged
  program (it needs the global blocked-set).

Each shard execution is content-addressed through
:class:`repro.cache.ArtifactCache` under kind ``"wpo"``: the key
covers the member modules' object bytes plus the shift-stable context
(GP displacements, canonical group pattern, per-site decisions, callee
summaries) — and nothing position-dependent, so unchanged shards hit
across edits *and* across rounds once they converge.  Editing one
module therefore relinks in O(changed shard): every other shard's
transform is a cache read.

Byte identity with the monolithic path is structural, not aspirational:
the parallel passes mutate only their own modules except for the
idempotent skip-label/export insertion into callees, which is
harvested as an effect and replayed serially; every cross-module
*read* is answered from the post-canonicalize serial snapshot, which
is exactly the state the monolithic pass order exposes.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field

from repro.layout.callgraph import iter_direct_call_sites
from repro.linker.layout import LayoutOptions, compute_layout
from repro.linker.resolve import resolve_inputs
from repro.minicc.mcode import MLabel
from repro.obs import provenance
from repro.obs.trace import TraceLog, now_us, span_or_null
from repro.objfile.serialize import dump_object
from repro.om.symbolic import SymbolicModule, reassemble_module
from repro.om.transform import (
    PassCounters,
    Program,
    Transformer,
    _entry_pair_at_top,
    _find_skip_label,
    _is_reset_free_leaf,
)
from repro.wpo.partition import Shard, partition_modules
from repro.wpo.shard import (
    ShardResult,
    StubInfo,
    remap_module_uids,
    run_shard,
)

#: Bump to invalidate shard artifacts when the job format changes.
_KEY_VERSION = 1


@dataclass
class WPOStats:
    """Telemetry of one partitioned link (exposed on ``OMResult.wpo``)."""

    partitions: int = 0  # requested
    shards: int = 0  # actual (never more than modules)
    rounds: int = 0
    hits: int = 0  # shard executions served from the cache
    misses: int = 0  # shard executions actually run
    #: Shard indices that missed in any round (the incremental-relink
    #: acceptance check: after a one-module edit this must only name
    #: shards containing edited modules).
    missed_shards: list[int] = field(default_factory=list)
    #: Module names per shard, for mapping edits to shards.
    members: list[list[str]] = field(default_factory=list)


@dataclass
class WPORun:
    """Everything ``om_link`` folds back out of the partitioned rounds."""

    counters: PassCounters = field(default_factory=PassCounters)
    relax_iterations: int = 0
    relax_demoted: int = 0
    stats: WPOStats = field(default_factory=WPOStats)


def _site_decisions(prog: Program, transformer: Transformer, options) -> dict[int, bool]:
    """The jsr->bsr verdict for every direct call site, by jsr uid.

    Mirrors ``Transformer._convert_call_site`` exactly: the relaxation
    fixpoint's decision when one ran, otherwise the one-shot
    conservative range check against this round's layout.
    """
    decisions: dict[int, bool] = {}
    relax_result = transformer.relax_result
    for site in iter_direct_call_sites(prog.modules):
        if relax_result is not None:
            decisions[site.jsr.uid] = relax_result.decisions.get(
                site.jsr.uid, False
            )
            continue
        try:
            caller_addr = prog.addr(site.caller_module, site.caller.name)
            callee_addr = prog.addr(site.callee_module, site.callee.name)
        except Exception:
            decisions[site.jsr.uid] = False
            continue
        decisions[site.jsr.uid] = (
            abs(callee_addr - caller_addr)
            < 4 * options.bsr_range_words - (1 << 16)
        )
    return decisions


def _apply_skip_effect(module: SymbolicModule, proc_name: str) -> None:
    """Idempotently give ``proc_name`` a skip label past its GP setup
    and export it (the only cross-module mutation the calls pass makes)."""
    proc = module.proc_named(proc_name)
    label = f"{proc.name}$skipgp"
    if _find_skip_label(proc) is None:
        pair = _entry_pair_at_top(proc)
        proc.items.insert(
            proc.items.index(pair[1]) + 1, MLabel(label, is_target=True)
        )
    proc.export_labels.add(label)


def _replay_events(
    trace: TraceLog | None, events: list[dict], round_index: int
) -> None:
    """Re-emit a shard's provenance events on the driver's trace.

    Cached events may carry stale pcs/round numbers from the run that
    produced them; the decisions they record are identical, so the
    audit trail still reconciles against the counters exactly.
    """
    if trace is None:
        return
    for args in events:
        provenance.emit(
            trace,
            action=args.get("action", ""),
            pass_name=args.get("pass_name", ""),
            module=args.get("module", ""),
            proc=args.get("proc", ""),
            pc=args.get("pc"),
            before=args.get("before", ""),
            after=args.get("after", ""),
            reason=args.get("reason", ""),
            counter=args.get("counter"),
            round_index=round_index,
        )


class _ShardJob:
    """One shard's payload, cache key, and driver-side stub directory."""

    def __init__(self, shard: Shard, payload: bytes, key_payload: dict,
                 stub_modules: dict[int, int], stub_names: dict[int, str]):
        self.shard = shard
        self.payload = payload
        self.key_payload = key_payload
        #: Stub id -> global module index (for applying effects).
        self.stub_modules = stub_modules
        #: Stub id -> callee procedure name.
        self.stub_names = stub_names


def _build_shard_job(
    shard: Shard,
    modules: list[SymbolicModule],
    digests: list[str],
    layout,
    prog: Program,
    sites_by_module: dict[int, list],
    decisions: dict[int, bool],
    *,
    full: bool,
    convert_escaped: bool,
    round_index: int,
) -> _ShardJob:
    members = shard.members
    local_of = {g: i for i, g in enumerate(members)}
    single_group = prog.single_group()

    # Canonical group ids: first appearance over members, then stubs.
    # Execution only ever compares groups for equality, and the cache
    # key must not depend on which absolute group index the layout
    # happened to assign.
    canon: dict[int, int] = {}

    def canon_group(raw: int) -> int:
        return canon.setdefault(raw, len(canon))

    gp = [layout.gp_for_module(g) for g in members]
    group = [canon_group(layout.module_group[g]) for g in members]

    addr: dict[tuple[int, str], int] = {}
    literal_d: list[list] = []  # per member: [[symbol, d-or-None], ...]
    for local, g in enumerate(members):
        module = modules[g]
        literal_syms = {
            item.literal[0]
            for item in module.all_items()
            if getattr(item, "literal", None) is not None
        }
        needed = literal_syms | {proc.name for proc in module.procs}
        for symbol in sorted(needed):
            try:
                addr[(local, symbol)] = layout.symbol_addr(g, symbol)
            except Exception:
                pass
        literal_d.append(
            [
                [
                    symbol,
                    (addr[(local, symbol)] - gp[local])
                    if (local, symbol) in addr
                    else None,
                ]
                for symbol in sorted(literal_syms)
            ]
        )

    resolutions: dict[tuple[int, str], tuple] = {}
    stubs: dict[int, StubInfo] = {}
    stub_of: dict[tuple[int, str], int] = {}
    stub_modules: dict[int, int] = {}
    key_sites: list[list] = []
    member_set = set(members)
    for g in members:
        for site in sites_by_module.get(g, ()):
            local = local_of[site.caller_module]
            name = site.callee.name
            decision = decisions.get(site.jsr.uid, False)
            if site.callee_module in member_set:
                resolutions[(local, name)] = (
                    "shard",
                    local_of[site.callee_module],
                )
                ref = ["shard", local_of[site.callee_module]]
            else:
                skey = (site.callee_module, name)
                sid = stub_of.get(skey)
                if sid is None:
                    sid = len(stubs)
                    stub_of[skey] = sid
                    stub_modules[sid] = site.callee_module
                    callee = site.callee
                    stubs[sid] = StubInfo(
                        name=name,
                        exported=callee.exported,
                        uses_gp=callee.uses_gp,
                        group=canon_group(
                            layout.module_group[site.callee_module]
                        ),
                        entry_pair=_entry_pair_at_top(callee) is not None,
                        has_skip=_find_skip_label(callee) is not None,
                        reset_free_leaf=_is_reset_free_leaf(callee),
                    )
                resolutions[(local, name)] = ("stub", sid)
                ref = ["stub"] + stubs[sid].summary()
            key_sites.append([local, site.caller.name, decision, ref])

    shard_uids = {
        site.jsr.uid for g in members for site in sites_by_module.get(g, ())
    }
    job = {
        "modules": [modules[g] for g in members],
        "full": full,
        "convert_escaped": convert_escaped,
        "round_index": round_index,
        "gp": gp,
        "group": group,
        "single_group": single_group,
        "addr": addr,
        "resolutions": resolutions,
        "stubs": stubs,
        "decisions": {
            uid: decisions.get(uid, False) for uid in shard_uids
        },
    }
    key_payload = {
        "v": _KEY_VERSION,
        "full": full,
        "convert_escaped": convert_escaped,
        "members": [digests[g] for g in members],
        "single": single_group,
        "groups": group,
        "d": literal_d,
        "sites": key_sites,
    }
    payload = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
    stub_names = {sid: info.name for sid, info in stubs.items()}
    return _ShardJob(shard, payload, key_payload, stub_modules, stub_names)


def wpo_rounds(
    modules: list[SymbolicModule],
    *,
    level,
    options,
    relax_options,
    layout_options: LayoutOptions,
    max_rounds: int,
    cache=None,
    trace: TraceLog | None = None,
) -> WPORun:
    """Run the OM transformation rounds partitioned into shards.

    Mutates ``modules`` in place (entries are replaced by their
    transformed versions each round), exactly like the monolithic round
    loop mutates them, and returns the merged counters and telemetry.
    """
    from repro.om.driver import OMLevel  # circular-safe: driver imports us lazily

    full = level is OMLevel.FULL
    convert_escaped = bool(options.convert_escaped and full)
    shards = partition_modules(modules, options.partitions)
    run = WPORun()
    run.stats = WPOStats(
        partitions=options.partitions,
        shards=len(shards),
        members=[[modules[g].name for g in shard.members] for shard in shards],
    )
    missed: set[int] = set()

    pool = None
    if options.wpo_jobs > 1 and len(shards) > 1:
        import concurrent.futures

        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(options.wpo_jobs, len(shards))
        )
    try:
        for round_index in range(max_rounds):
            with span_or_null(
                trace,
                f"om.round{round_index}",
                cat="om",
                level=level.value,
                wpo=len(shards),
            ):
                changed = _run_round(
                    modules,
                    shards,
                    level=level,
                    options=options,
                    relax_options=relax_options,
                    layout_options=layout_options,
                    round_index=round_index,
                    full=full,
                    convert_escaped=convert_escaped,
                    cache=cache,
                    trace=trace,
                    pool=pool,
                    run=run,
                    missed=missed,
                )
            run.stats.rounds += 1
            if not changed:
                break
    finally:
        if pool is not None:
            pool.shutdown()
    run.stats.missed_shards = sorted(missed)
    return run


def _run_round(
    modules: list[SymbolicModule],
    shards: list[Shard],
    *,
    level,
    options,
    relax_options,
    layout_options: LayoutOptions,
    round_index: int,
    full: bool,
    convert_escaped: bool,
    cache,
    trace: TraceLog | None,
    pool,
    run: WPORun,
    missed: set[int],
) -> bool:
    # ---- serial whole-program phase -----------------------------------
    objs = [reassemble_module(module)[0] for module in modules]
    digests = [
        hashlib.sha256(dump_object(obj)).hexdigest() for obj in objs
    ]
    inputs = resolve_inputs(objs, [])
    layout = compute_layout(inputs, layout_options)
    prog = Program.build(modules, layout, entry=options.entry)
    # The monolithic round computes address-taken before any transform
    # and the entry-setup pass reads that pre-transform set; preserve it
    # across the merge for byte identity.
    address_taken = set(prog.address_taken)

    prologue = Transformer(
        prog,
        full=full,
        convert_escaped=convert_escaped,
        trace=trace,
        round_index=round_index,
        relax=relax_options,
        bsr_range_words=options.bsr_range_words,
    )
    prologue.run_passes(calls=False, address_loads=False, entry_setups=False)
    run.counters.merge(prologue.counters)
    if prologue.relax_result is not None:
        run.relax_iterations += prologue.relax_result.iterations
        run.relax_demoted += prologue.relax_result.demoted
    decisions = _site_decisions(prog, prologue, options)

    sites_by_module: dict[int, list] = {}
    for site in iter_direct_call_sites(modules):
        sites_by_module.setdefault(site.caller_module, []).append(site)

    jobs = [
        _build_shard_job(
            shard,
            modules,
            digests,
            layout,
            prog,
            sites_by_module,
            decisions,
            full=full,
            convert_escaped=convert_escaped,
            round_index=round_index,
        )
        for shard in shards
    ]

    # ---- parallel per-shard phase -------------------------------------
    results: list[bytes | None] = [None] * len(jobs)
    keys: list[str | None] = [None] * len(jobs)
    pending: list[int] = []
    for index, job in enumerate(jobs):
        if cache is not None:
            keys[index] = cache.key(job.key_payload)
            blob = cache.get("wpo", keys[index])
            if blob is not None:
                results[index] = blob
                run.stats.hits += 1
                continue
        pending.append(index)

    if pool is not None and len(pending) > 1:
        submitted_us = now_us()
        futures = {
            index: pool.submit(run_shard, jobs[index].payload)
            for index in pending
        }
        for index in pending:
            results[index] = futures[index].result()
            if trace is not None:
                # Pool shards run remotely: the span covers submit to
                # result pickup (queueing included), one lane per shard.
                trace.add_span(
                    "om.wpo.shard", submitted_us, now_us(), cat="om",
                    round=round_index, shard=jobs[index].shard.index,
                    members=len(jobs[index].shard.members), pooled=True,
                )
    else:
        for index in pending:
            with span_or_null(
                trace, "om.wpo.shard", cat="om",
                round=round_index, shard=jobs[index].shard.index,
                members=len(jobs[index].shard.members), pooled=False,
            ):
                results[index] = run_shard(jobs[index].payload)
    for index in pending:
        run.stats.misses += 1
        missed.add(jobs[index].shard.index)
        if cache is not None:
            cache.put("wpo", keys[index], results[index])
    if trace is not None:
        trace.event(
            "om.wpo.round",
            cat="om",
            round=round_index,
            shards=len(jobs),
            hits=len(jobs) - len(pending),
            misses=len(pending),
        )

    # ---- serial merge + epilogue --------------------------------------
    changed = prologue.changed
    decoded: list[ShardResult] = []
    for index, job in enumerate(jobs):
        result: ShardResult = pickle.loads(results[index])
        decoded.append(result)
        for local, g in enumerate(job.shard.members):
            modules[g] = remap_module_uids(result.modules[local])
        run.counters.merge(result.counters)
        changed = changed or result.changed
    # Effects after every replacement, so they land on the merged
    # modules; insertion is idempotent and position-deterministic.
    for index, job in enumerate(jobs):
        result = decoded[index]
        for sid in result.effects:
            _apply_skip_effect(
                modules[job.stub_modules[sid]], job.stub_names[sid]
            )
        _replay_events(trace, result.events, round_index)

    epilogue_prog = Program.build(modules, layout, entry=options.entry)
    epilogue_prog.address_taken = address_taken
    epilogue = Transformer(
        epilogue_prog,
        full=full,
        convert_escaped=convert_escaped,
        trace=trace,
        round_index=round_index,
    )
    epilogue.run_passes(
        canonicalize=False, relax=False, calls=False, address_loads=False
    )
    run.counters.merge(epilogue.counters)
    return changed or epilogue.changed
