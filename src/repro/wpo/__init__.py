"""Partitioned, incremental whole-program optimization for OM.

See :mod:`repro.wpo.driver` for the round structure and the byte-
identity argument, :mod:`repro.wpo.partition` for shard selection, and
:mod:`repro.wpo.shard` for the per-shard worker.
"""

from repro.wpo.driver import WPORun, WPOStats, wpo_rounds
from repro.wpo.partition import Shard, partition_modules

__all__ = ["Shard", "WPORun", "WPOStats", "partition_modules", "wpo_rounds"]
