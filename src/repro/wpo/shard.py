"""The per-shard worker of the partitioned whole-program optimizer.

A shard job is a self-contained pickle: the shard's member modules
(post-canonicalization) plus a *shift-stable context* — everything the
calls and address-load passes would otherwise read from the rest of
the program, precomputed by the serial phase:

* per-member GP value, canonical GP-group id, and a symbol-address
  table (so ``d = addr - gp`` computes exactly as in the monolithic
  round);
* per-site call decisions (the jsr->bsr range/relaxation verdicts,
  which need whole-program layout and are therefore serial);
* summaries of out-of-shard callees, realized here as *stub
  procedures* shaped so that every predicate the transformer applies
  to a callee (``uses_gp``, entry pair at top, existing skip label,
  reset-free leaf) answers exactly as it would on the real procedure.

The worker runs the real :class:`repro.om.transform.Transformer` over
a duck-typed :class:`ShardProgram` and returns the transformed
members, pass counters, the provenance events it recorded, and the
*effects* it could not apply itself — skip labels that belong in
out-of-shard callees, which the serial phase applies idempotently.
Because the job depends only on member content and the context, the
result bytes are cacheable under a content key, and a cache hit is
byte-equivalent to re-running the shard.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.registers import Reg
from repro.minicc import mcode
from repro.minicc.mcode import MInstr, MLabel
from repro.obs import provenance
from repro.obs.trace import TraceLog
from repro.om.symbolic import SymbolicModule, SymbolicProc
from repro.om.transform import Transformer


@dataclass(frozen=True)
class StubInfo:
    """Shift-stable summary of an out-of-shard callee.

    Everything the calls pass may ask about a callee, captured from
    the post-canonicalize serial snapshot.  These fields (not the
    callee's full content) are what enters the shard cache key, so an
    edit to a callee that does not change them cannot invalidate its
    callers' shards.
    """

    name: str
    exported: bool
    uses_gp: bool
    group: int  # canonical GP-group id (shard-local numbering)
    entry_pair: bool  # GPDISP pair sits in the first two slots
    has_skip: bool  # a $skipgp label already exists
    reset_free_leaf: bool  # cannot change GP (no gpdisp, no calls)

    def summary(self) -> list:
        return [
            self.name,
            self.exported,
            self.uses_gp,
            self.group,
            self.entry_pair,
            self.has_skip,
            self.reset_free_leaf,
        ]


def build_stub(info: StubInfo) -> SymbolicProc:
    """A minimal procedure that answers the transformer's callee
    predicates exactly as the summarized real procedure would."""
    proc = SymbolicProc(
        info.name, exported=info.exported, uses_gp=info.uses_gp
    )
    proc.items.append(MLabel(info.name, is_target=False))
    if info.entry_pair:
        ldah = MInstr(
            Instruction.mem("ldah", Reg.GP, Reg.PV, 0),
            gpdisp_base=info.name,
        )
        lda = MInstr(
            Instruction.mem("lda", Reg.GP, Reg.GP, 0),
            gpdisp_pair=ldah.uid,
        )
        proc.items.extend([ldah, lda])
    if info.has_skip:
        proc.items.append(MLabel(f"{info.name}$skipgp", is_target=True))
    if not info.entry_pair and not info.reset_free_leaf:
        # A call instruction defeats _is_reset_free_leaf, matching a
        # real callee that might clobber GP.
        proc.items.append(MInstr(Instruction.branch("bsr", Reg.RA, 0)))
    return proc


class ShardProgram:
    """Duck-typed stand-in for :class:`repro.om.transform.Program`.

    ``modules`` holds only the shard's members (local indices); every
    whole-program question is answered from the precomputed context.
    Out-of-shard callees resolve to stubs under pseudo module indices
    past the member range, so cross-module checks (group equality,
    ``callee_module != module_index``) behave as in the full program.
    """

    def __init__(
        self,
        modules: list[SymbolicModule],
        *,
        gp: list[int],
        group: dict[int, int],
        single: bool,
        addr: dict[tuple[int, str], int],
        resolutions: dict[tuple[int, str], tuple],
        stubs: dict[int, tuple[int, SymbolicProc]],
    ):
        self.modules = modules
        self._gp = gp
        self._group = group
        self._single = single
        self._addr = addr
        self._resolutions = resolutions
        self._stubs = stubs

    def addr(self, module_index: int, symbol: str, addend: int = 0) -> int:
        # KeyError for unknown symbols mirrors Layout.symbol_addr
        # raising for undefined names; the transformer catches it.
        return self._addr[(module_index, symbol)] + addend

    def gp(self, module_index: int) -> int:
        return self._gp[module_index]

    def group(self, module_index: int) -> int:
        return self._group[module_index]

    def single_group(self) -> bool:
        return self._single

    def callee_info(
        self, caller_module: int, name: str
    ) -> tuple[int, SymbolicProc] | None:
        resolution = self._resolutions.get((caller_module, name))
        if resolution is None:
            return None
        kind, ref = resolution
        if kind == "shard":
            return ref, self.modules[ref].proc_named(name)
        return self._stubs[ref]


class _Decisions:
    """Holder giving the transformer its precomputed site decisions
    through the ``relax_result`` seam (the exact per-site verdicts the
    serial phase computed, relaxation-based or one-shot)."""

    def __init__(self, decisions: dict[int, bool]):
        self.decisions = decisions


@dataclass
class ShardResult:
    """What a shard execution produces (cached verbatim as pickle)."""

    modules: list[SymbolicModule] = field(default_factory=list)
    counters: object = None
    changed: bool = False
    #: Stub ids whose callee needs a skip label applied serially.
    effects: list[int] = field(default_factory=list)
    #: Provenance event payloads, re-emitted by the driver.
    events: list[dict] = field(default_factory=list)


def _max_uid(modules: list[SymbolicModule]) -> int:
    top = 0
    for module in modules:
        for item in module.all_items():
            if isinstance(item, MInstr):
                top = max(top, item.uid)
    return top


def run_shard(payload: bytes) -> bytes:
    """Execute one shard job (pickled dict in, pickled ShardResult out).

    Runs in a pool worker or inline in the driver; either way the
    modules arrive and leave by pickle, so the driver's own objects are
    never aliased and a cache hit replays through the identical path.
    """
    job = pickle.loads(payload)
    modules: list[SymbolicModule] = job["modules"]
    mcode.ensure_uid_floor(_max_uid(modules))

    group = {index: g for index, g in enumerate(job["group"])}
    stubs: dict[int, tuple[int, SymbolicProc]] = {}
    for sid, info in job["stubs"].items():
        pseudo = len(modules) + sid
        stubs[sid] = (pseudo, build_stub(info))
        group[pseudo] = info.group

    prog = ShardProgram(
        modules,
        gp=job["gp"],
        group=group,
        single=job["single_group"],
        addr=job["addr"],
        resolutions=job["resolutions"],
        stubs=stubs,
    )
    trace = TraceLog()
    transformer = Transformer(
        prog,
        full=job["full"],
        convert_escaped=job["convert_escaped"],
        trace=trace,
        round_index=job["round_index"],
    )
    transformer.relax_result = _Decisions(job["decisions"])
    transformer.run_passes(canonicalize=False, relax=False, entry_setups=False)

    # A stub is always cross-module, so any conversion that skips its
    # GP setup exports the skip label into the stub — the exact set of
    # callee mutations the serial phase must replay on the real procs.
    effects = sorted(
        sid
        for sid, (_, stub) in stubs.items()
        if f"{stub.name}$skipgp" in stub.export_labels
    )
    result = ShardResult(
        modules=modules,
        counters=transformer.counters,
        changed=transformer.changed,
        effects=effects,
        events=provenance.events(trace),
    )
    return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)


def remap_module_uids(module: SymbolicModule) -> SymbolicModule:
    """Re-key every instruction to a fresh process-local uid.

    Modules returning from a worker (or the shard cache) carry uids
    from another counter; without a remap two modules could share a
    uid and corrupt the uid-keyed whole-program tables (relaxation
    decisions, literal-use lookups) in later rounds.  The intra-module
    links (lituse, gpdisp_pair) are rewritten to match.
    """
    mapping: dict[int, int] = {}
    for proc in module.procs:
        for item in proc.instructions():
            mapping[item.uid] = mcode.next_uid()
    for proc in module.procs:
        for item in proc.instructions():
            item.uid = mapping[item.uid]
            if item.lituse is not None:
                load_uid, kind = item.lituse
                item.lituse = (mapping.get(load_uid, load_uid), kind)
            if item.gpdisp_pair is not None:
                item.gpdisp_pair = mapping.get(
                    item.gpdisp_pair, item.gpdisp_pair
                )
    return module
