"""Callgraph-guided partitioning of symbolic modules into shards.

The partition is the unit of parallelism and of incremental reuse for
the whole-program optimizer: each shard's transform work is keyed by
the content of its member modules, so a one-module edit must land in
exactly one shard for the relink to be O(changed shard).

Two properties matter more than cut quality:

* **Determinism under discovery order** — shard membership is decided
  over the *name-sorted* module list, so permuting the input objects
  (or the order a build system happens to emit them) never moves a
  module between shards and never invalidates warm shard artifacts.
* **Stability under small edits** — weights are static instruction
  counts, which an expression-level edit does not change; the greedy
  assignment below is a pure function of (names, weights, call
  multiplicities) and is unaffected by code *content* changes that
  keep those inputs fixed.

Within those constraints the callgraph still earns its keep: modules
are packed next to their call-affine neighbours (PR-4's
:func:`repro.layout.callgraph.build_call_graph` multiplicities), which
keeps caller/callee pairs in one shard and so keeps the cross-shard
stub surface — the summaries the serial phase must ship — small.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.callgraph import build_call_graph
from repro.om.symbolic import SymbolicModule


@dataclass
class Shard:
    """One partition: member module indices (into the driver's list)."""

    index: int
    #: Global module indices, in canonical (name-sorted) order.  This
    #: order is also the worker's iteration order, so it must be a
    #: pure function of module names.
    members: list[int] = field(default_factory=list)
    weight: int = 0


def _module_weight(module: SymbolicModule) -> int:
    return sum(len(proc.instructions()) for proc in module.procs) + 1


def partition_modules(
    modules: list[SymbolicModule], partitions: int
) -> list[Shard]:
    """Split ``modules`` into at most ``partitions`` balanced shards.

    Modules are considered in name order.  Each is placed on the shard
    it has the highest call affinity with (static cross-module call
    multiplicity against already-placed members), unless that shard is
    already over the balance ceiling, in which case it goes to the
    lightest shard.  Ties break toward the lighter, lower-indexed
    shard, so the result is deterministic.
    """
    partitions = max(1, min(partitions, len(modules)))
    order = sorted(range(len(modules)), key=lambda i: modules[i].name)
    weights = [_module_weight(module) for module in modules]

    # Module-level call affinity from the PR-4 callgraph.
    graph = build_call_graph(modules)
    affinity: dict[tuple[int, int], int] = {}
    for site in graph.sites:
        if site.caller_module == site.callee_module:
            continue
        key = (site.caller_module, site.callee_module)
        affinity[key] = affinity.get(key, 0) + 1

    shards = [Shard(index) for index in range(partitions)]
    ceiling = (sum(weights) / partitions) * 1.25 + 1

    def pull(shard: Shard, module_index: int) -> int:
        return sum(
            affinity.get((module_index, member), 0)
            + affinity.get((member, module_index), 0)
            for member in shard.members
        )

    for module_index in order:
        open_shards = [s for s in shards if s.weight < ceiling] or shards
        best = max(
            open_shards,
            key=lambda s: (pull(s, module_index), -s.weight, -s.index),
        )
        best.members.append(module_index)
        best.weight += weights[module_index]

    shards = [shard for shard in shards if shard.members]
    for index, shard in enumerate(shards):
        shard.index = index
    return shards
