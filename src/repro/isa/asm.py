"""Symbolic assembler: the bridge from compiler output to object files.

The code generator emits concrete :class:`Instruction` objects whose
displacement fields are placeholders, annotated with *relocation
requests* (literal loads, literal uses, GP-displacement pairs, branch
targets, jump hints, jump tables).  The assembler lays out sections,
resolves module-internal labels, and produces an :class:`ObjectFile`
carrying exactly the relocation records the linker and OM consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import encode_stream
from repro.isa.instruction import Instruction
from repro.objfile.objfile import ObjectFile
from repro.objfile.relocations import LituseKind, Relocation, RelocType
from repro.objfile.sections import Section, SectionKind
from repro.objfile.symbols import Binding, ProcInfo, Symbol, SymbolKind


class AsmError(ValueError):
    """Raised for malformed assembly (unknown labels, nesting errors)."""


@dataclass
class _TextItem:
    """One text-stream entry: an instruction plus relocation requests."""

    instr: Instruction
    literal: tuple[str, int] | None = None  # (symbol, addend)
    lit_escaped: bool = False  # value escapes; OM may convert but not nullify
    lituse: tuple[int, LituseKind] | None = None  # (literal item index, kind)
    gpdisp_base: str | None = None  # label of the pair's base point (ldah)
    gpdisp_pair: int | None = None  # item index of the ldah (on the lda)
    branch: tuple[str, int] | None = None  # (symbol, addend)
    hint: str | None = None
    jmptab: tuple[str, int] | None = None  # (table symbol, entry count)
    gprel: tuple[str, str, int, int] | None = None  # (kind, symbol, addend, group)


@dataclass
class _DataQuad:
    """A 64-bit data item, possibly symbolic."""

    section: SectionKind
    offset: int
    symbol: str | None = None
    addend: int = 0
    label: str | None = None  # text label inside ``symbol`` (jump tables)


class Assembler:
    """Accumulates one module's code, data, and symbols.

    Typical use by the code generator::

        asm = Assembler("m.o")
        asm.begin_proc("f", exported=True, frame_size=16)
        idx = asm.emit(ldq, literal=("counter", 0))
        asm.emit(ldq2, lituse=(idx, LituseKind.BASE))
        ...
        asm.end_proc()
        obj = asm.finish()
    """

    def __init__(self, module_name: str):
        self.module_name = module_name
        self._items: list[_TextItem] = []
        self._labels: dict[str, int] = {}  # label -> text item index
        self._data: dict[SectionKind, Section] = {}
        self._data_quads: list[_DataQuad] = []
        self._symbols: list[Symbol] = []
        self._extern: dict[str, Symbol] = {}
        self._current_proc: Symbol | None = None
        self._proc_start_item = 0

    # -- text stream -------------------------------------------------------

    def begin_proc(
        self,
        name: str,
        *,
        exported: bool = True,
        uses_gp: bool = True,
        frame_size: int = 0,
    ) -> None:
        """Open a procedure; its entry gets a label of the same name."""
        if self._current_proc is not None:
            raise AsmError(f"begin_proc({name}) inside {self._current_proc.name}")
        sym = Symbol(
            name,
            SymbolKind.PROC,
            Binding.GLOBAL if exported else Binding.LOCAL,
            SectionKind.TEXT,
            offset=4 * len(self._items),
            proc=ProcInfo(uses_gp=uses_gp, frame_size=frame_size),
        )
        self._current_proc = sym
        self._proc_start_item = len(self._items)
        self.label(name)

    def end_proc(self) -> None:
        """Close the current procedure, fixing its size."""
        if self._current_proc is None:
            raise AsmError("end_proc outside a procedure")
        sym = self._current_proc
        sym.size = 4 * len(self._items) - sym.offset
        self._symbols.append(sym)
        self._current_proc = None

    def label(self, name: str) -> None:
        """Define a text label at the current position."""
        if name in self._labels:
            raise AsmError(f"duplicate label {name!r}")
        self._labels[name] = len(self._items)

    def emit(self, instr: Instruction, **reloc) -> int:
        """Append an instruction with optional relocation requests.

        Returns the text item index (used to link LITUSEs to their
        LITERAL and GPDISP ``lda``s to their ``ldah``).
        """
        item = _TextItem(instr, **reloc)
        self._items.append(item)
        return len(self._items) - 1

    # -- data stream -------------------------------------------------------

    def data_section(self, kind: SectionKind) -> Section:
        sec = self._data.get(kind)
        if sec is None:
            sec = Section(kind)
            self._data[kind] = sec
        return sec

    def data_symbol(
        self,
        name: str,
        kind: SectionKind,
        *,
        exported: bool = True,
        align: int = 8,
    ) -> Symbol:
        """Define a data symbol at the current end of ``kind``."""
        sec = self.data_section(kind)
        sec.align_to(align)
        sym = Symbol(
            name,
            SymbolKind.OBJECT,
            Binding.GLOBAL if exported else Binding.LOCAL,
            kind,
            offset=sec.size,
            alignment=align,
        )
        self._symbols.append(sym)
        return sym

    def data_quad(
        self, kind: SectionKind, value: int = 0, symbol: str | None = None, addend: int = 0
    ) -> None:
        """Emit a 64-bit datum; if ``symbol`` is set, it is relocated."""
        sec = self.data_section(kind)
        offset = sec.append((value % (1 << 64)).to_bytes(8, "little"))
        if symbol is not None:
            self._data_quads.append(_DataQuad(kind, offset, symbol, addend))

    def data_quad_label(self, kind: SectionKind, proc: str, label: str) -> None:
        """Emit a quad holding the address of a label inside ``proc``.

        Used for jump tables; the addend is resolved to the label's byte
        offset from the procedure entry when the module is finished.
        """
        sec = self.data_section(kind)
        offset = sec.append(bytes(8))
        self._data_quads.append(_DataQuad(kind, offset, proc, 0, label))

    def data_bytes(self, kind: SectionKind, data: bytes) -> None:
        self.data_section(kind).append(data)

    def bss_symbol(
        self, name: str, size: int, *, kind: SectionKind = SectionKind.BSS,
        exported: bool = True, align: int = 8,
    ) -> Symbol:
        """Define a zero-initialized symbol in a BSS-kind section."""
        sec = self.data_section(kind)
        offset = sec.reserve(size, align)
        sym = Symbol(
            name,
            SymbolKind.OBJECT,
            Binding.GLOBAL if exported else Binding.LOCAL,
            kind,
            offset=offset,
            size=size,
            alignment=align,
        )
        self._symbols.append(sym)
        return sym

    def common(self, name: str, size: int, align: int = 8) -> Symbol:
        """Declare a COMMON (uninitialized, linker-allocated) symbol."""
        sym = Symbol(name, SymbolKind.COMMON, size=size, alignment=align)
        self._symbols.append(sym)
        return sym

    def extern(self, name: str) -> None:
        """Declare an undefined symbol satisfied by another module."""
        if name not in self._extern:
            sym = Symbol(name, SymbolKind.UNDEF)
            self._extern[name] = sym

    # -- finishing ----------------------------------------------------------

    def _label_offset(self, name: str) -> int:
        try:
            return 4 * self._labels[name]
        except KeyError:
            raise AsmError(f"undefined label {name!r}") from None

    def finish(self) -> ObjectFile:
        """Assemble everything into an :class:`ObjectFile`."""
        if self._current_proc is not None:
            raise AsmError(f"unterminated procedure {self._current_proc.name}")
        obj = ObjectFile(self.module_name)

        defined = {s.name for s in self._symbols}
        relocs: list[Relocation] = []

        for index, item in enumerate(self._items):
            offset = 4 * index
            if item.literal is not None:
                symbol, addend = item.literal
                relocs.append(
                    Relocation(
                        RelocType.LITERAL,
                        SectionKind.TEXT,
                        offset,
                        symbol,
                        addend,
                        int(item.lit_escaped),
                    )
                )
                self._note_symbol(symbol, defined)
            if item.lituse is not None:
                load_index, kind = item.lituse
                relocs.append(
                    Relocation(
                        RelocType.LITUSE,
                        SectionKind.TEXT,
                        offset,
                        None,
                        4 * load_index,
                        int(kind),
                    )
                )
            if item.gpdisp_base is not None:
                # Paired lda found via gpdisp_pair annotations.
                lda_index = self._find_gpdisp_lda(index)
                relocs.append(
                    Relocation(
                        RelocType.GPDISP,
                        SectionKind.TEXT,
                        offset,
                        None,
                        4 * lda_index - offset,
                        self._label_offset(item.gpdisp_base),
                    )
                )
            if item.branch is not None:
                symbol, addend = item.branch
                if symbol in self._labels and symbol not in defined:
                    # Intra-module label branch: resolve displacement now.
                    target = self._label_offset(symbol) + addend
                    item.instr.disp = (target - (offset + 4)) // 4
                else:
                    relocs.append(
                        Relocation(RelocType.BRADDR, SectionKind.TEXT, offset, symbol, addend)
                    )
                    self._note_symbol(symbol, defined)
            if item.hint is not None:
                relocs.append(
                    Relocation(RelocType.HINT, SectionKind.TEXT, offset, item.hint)
                )
                self._note_symbol(item.hint, defined)
            if item.jmptab is not None:
                table, count = item.jmptab
                relocs.append(
                    Relocation(RelocType.JMPTAB, SectionKind.TEXT, offset, table, count)
                )
                self._note_symbol(table, defined)
            if item.gprel is not None:
                kind, symbol, addend, group = item.gprel
                rtype = {
                    "gprel16": RelocType.GPREL16,
                    "gprelhigh": RelocType.GPRELHIGH,
                    "gprellow": RelocType.GPRELLOW,
                }[kind]
                relocs.append(
                    Relocation(rtype, SectionKind.TEXT, offset, symbol, addend, group)
                )
                self._note_symbol(symbol, defined)

        for quad in self._data_quads:
            addend = quad.addend
            if quad.label is not None:
                proc = next(s for s in self._symbols if s.name == quad.symbol)
                addend = self._label_offset(quad.label) - proc.offset
            relocs.append(
                Relocation(
                    RelocType.REFQUAD, quad.section, quad.offset, quad.symbol, addend
                )
            )
            self._note_symbol(quad.symbol, defined)

        text = Section(SectionKind.TEXT, alignment=16)
        text.data = bytearray(encode_stream([item.instr for item in self._items]))
        obj.sections[SectionKind.TEXT] = text
        for kind, sec in self._data.items():
            sec.align_to(8)
            obj.sections[kind] = sec

        obj.symbols = list(self._symbols) + list(self._extern.values())
        obj.relocations = relocs
        obj.validate()
        return obj

    def _note_symbol(self, symbol: str, defined: set[str]) -> None:
        """Record an implicit extern for a referenced, undefined symbol."""
        if symbol not in defined:
            self.extern(symbol)

    def _find_gpdisp_lda(self, ldah_index: int) -> int:
        for index in range(ldah_index + 1, len(self._items)):
            if self._items[index].gpdisp_pair == ldah_index:
                return index
        raise AsmError(f"gpdisp ldah at item {ldah_index} has no paired lda")
