"""Text assembler: OSF-flavoured Alpha assembly to object modules.

A thin front end over :class:`repro.isa.asm.Assembler` for hand-written
tests, examples, and runtime stubs.  Supported syntax::

        .ent    f               # procedure (add ", static" for local)
f:      ldah    $gp, 0($pv)     !gpdisp:f
        lda     $gp, 0($gp)     !gpdisp_pair
        ldq     $t0, counter($gp) !literal
        ldq     $v0, 0($t0)     !lituse_base
        ldq     $pv, g($gp)     !literal
        jsr     $ra, ($pv)      !lituse_jsr !hint:g
ret1:   ldah    $gp, 0($ra)     !gpdisp:ret1
        lda     $gp, 0($gp)     !gpdisp_pair
        ret     $zero, ($ra)
        .end    f

        .data
v:      .quad   42
tab:    .quad   f               # relocated address
        .space  16
        .comm   big, 800, 8

Annotation rules: ``!literal`` marks an address load (the displacement
field is the symbol name in the operand); ``!lituse_base``/``!lituse_jsr``
link to the most recent literal load whose destination register the
instruction uses; ``!gpdisp:<label>`` marks the high half of a GP pair
with its base point; ``!gpdisp_pair`` marks the matching ``lda``.
"""

from __future__ import annotations

import re

from repro.isa.asm import Assembler
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPS, Format, PalFunc
from repro.isa.registers import Reg
from repro.objfile.objfile import ObjectFile
from repro.objfile.relocations import LituseKind
from repro.objfile.sections import SectionKind


class AsmSyntaxError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_REG_NAMES = {r.name.lower(): int(r) for r in Reg}
_REG_NAMES.update({f"r{i}": i for i in range(32)})
_PAL_NAMES = {f.name.lower(): int(f) for f in PalFunc}

_LABEL_RE = re.compile(r"^([A-Za-z_$][\w$]*):\s*(.*)$")
_SYMBOL_RE = re.compile(r"^([A-Za-z_$][\w$]*)([+-]\d+)?$")


def _parse_reg(token: str, line: int) -> int:
    name = token.strip().lstrip("$")
    if name not in _REG_NAMES:
        raise AsmSyntaxError(f"unknown register {token!r}", line)
    return _REG_NAMES[name]


def _parse_int(token: str, line: int) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError:
        raise AsmSyntaxError(f"expected integer, got {token!r}", line) from None


class TextAssembler:
    """Assembles one source text into an :class:`ObjectFile`."""

    def __init__(self, module_name: str):
        self.asm = Assembler(module_name)
        self.section = SectionKind.TEXT
        self.in_proc: str | None = None
        self.last_literal_for_reg: dict[int, int] = {}
        self.pending_gpdisp: int | None = None
        self.line = 0

    def error(self, message: str) -> AsmSyntaxError:
        return AsmSyntaxError(message, self.line)

    # -- main loop ----------------------------------------------------------

    def assemble(self, source: str) -> ObjectFile:
        for self.line, raw in enumerate(source.splitlines(), start=1):
            text = raw.split("#", 1)[0].strip()
            if not text:
                continue
            match = _LABEL_RE.match(text)
            if match:
                label, text = match.groups()
                if self.section is not SectionKind.TEXT:
                    self.asm.data_symbol(label, self.section, exported=False)
                elif label != self.in_proc:
                    # The entry label was already defined by .ent.
                    self.asm.label(label)
                text = text.strip()
                if not text:
                    continue
            if text.startswith("."):
                self._directive(text)
            else:
                self._instruction(text)
        if self.in_proc is not None:
            raise self.error(f"procedure {self.in_proc!r} not closed with .end")
        return self.asm.finish()

    # -- directives -----------------------------------------------------------

    def _directive(self, text: str) -> None:
        parts = text.split(None, 1)
        name = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        args = [a.strip() for a in rest.split(",")] if rest else []

        if name == ".text":
            self.section = SectionKind.TEXT
        elif name in (".data", ".sdata"):
            self.section = (
                SectionKind.DATA if name == ".data" else SectionKind.SDATA
            )
        elif name == ".ent":
            if self.in_proc is not None:
                raise self.error(f"nested .ent inside {self.in_proc!r}")
            if not args:
                raise self.error(".ent needs a name")
            exported = not (len(args) > 1 and args[1] == "static")
            self.asm.begin_proc(args[0], exported=exported)
            self.in_proc = args[0]
        elif name == ".end":
            if self.in_proc is None:
                raise self.error(".end without .ent")
            self.asm.end_proc()
            self.in_proc = None
            self.last_literal_for_reg.clear()
        elif name == ".quad":
            if not args:
                raise self.error(".quad needs a value")
            for arg in args:
                try:
                    self.asm.data_quad(self.section, _parse_int(arg, self.line))
                except AsmSyntaxError:
                    match = _SYMBOL_RE.match(arg)
                    if not match:
                        raise self.error(f"bad .quad operand {arg!r}")
                    symbol, addend = match.groups()
                    self.asm.data_quad(
                        self.section, 0, symbol, int(addend or 0)
                    )
        elif name == ".space":
            self.asm.data_bytes(self.section, bytes(_parse_int(args[0], self.line)))
        elif name == ".comm":
            if len(args) < 2:
                raise self.error(".comm needs name, size")
            align = _parse_int(args[2], self.line) if len(args) > 2 else 8
            self.asm.common(args[0], _parse_int(args[1], self.line), align)
        elif name == ".extern":
            self.asm.extern(args[0])
        else:
            raise self.error(f"unknown directive {name}")

    # -- instructions ------------------------------------------------------------

    def _instruction(self, text: str) -> None:
        if self.in_proc is None:
            raise self.error("instruction outside .ent/.end")
        text, annotations = self._split_annotations(text)
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [o.strip() for o in operand_text.split(",")] if operand_text else []

        if mnemonic == "nop":
            self.asm.emit(Instruction.nop())
            return
        if mnemonic == "call_pal":
            func = _PAL_NAMES.get(operands[0].lower()) if operands else None
            if func is None:
                func = _parse_int(operands[0], self.line)
            self.asm.emit(Instruction.pal(func))
            return

        op = OPS.get(mnemonic)
        if op is None:
            raise self.error(f"unknown instruction {mnemonic!r}")
        if op.format is Format.MEMORY:
            self._memory(op, operands, annotations)
        elif op.format is Format.MEMORY_JUMP:
            self._jump(op, operands, annotations)
        elif op.format is Format.BRANCH:
            self._branch(op, operands, annotations)
        elif op.format is Format.OPERATE:
            self._operate(op, operands)
        else:
            raise self.error(f"cannot assemble format {op.format}")

    @staticmethod
    def _split_annotations(text: str) -> tuple[str, list[str]]:
        parts = text.split("!")
        return parts[0].strip(), [p.strip() for p in parts[1:]]

    def _mem_operand(self, token: str) -> tuple[str, int]:
        match = re.match(r"^(.*)\(([^)]+)\)$", token.strip())
        if not match:
            raise self.error(f"expected disp(reg), got {token!r}")
        disp, base = match.groups()
        return disp.strip(), _parse_reg(base, self.line)

    def _memory(self, op, operands, annotations) -> None:
        if len(operands) != 2:
            raise self.error(f"{op.name} needs 2 operands")
        ra = _parse_reg(operands[0], self.line)
        disp_text, rb = self._mem_operand(operands[1])
        kwargs = {}
        literal_sym = None
        for note in annotations:
            if note.startswith("literal"):
                literal_sym = disp_text
            elif note.startswith("gpdisp:"):
                kwargs["gpdisp_base"] = note.split(":", 1)[1]
            elif note == "gpdisp_pair":
                if self.pending_gpdisp is None:
                    raise self.error("gpdisp_pair without a pending gpdisp")
                kwargs["gpdisp_pair"] = self.pending_gpdisp
                self.pending_gpdisp = None
            elif note in ("lituse_base", "lituse_jsr"):
                kwargs["lituse"] = self._lituse(note, rb)
            else:
                raise self.error(f"unknown annotation !{note}")
        if literal_sym is not None:
            match = _SYMBOL_RE.match(literal_sym)
            if not match:
                raise self.error(f"bad literal symbol {literal_sym!r}")
            symbol, addend = match.groups()
            kwargs["literal"] = (symbol, int(addend or 0))
            disp = 0
        else:
            disp = _parse_int(disp_text or "0", self.line)
        index = self.asm.emit(Instruction.mem(op.name, ra, rb, disp), **kwargs)
        if "gpdisp_base" in kwargs:
            self.pending_gpdisp = index
        if "literal" in kwargs:
            self.last_literal_for_reg[ra] = index

    def _lituse(self, note: str, reg: int) -> tuple[int, LituseKind]:
        load = self.last_literal_for_reg.get(reg)
        if load is None:
            raise self.error(f"!{note}: no preceding literal load into r{reg}")
        kind = LituseKind.JSR if note.endswith("jsr") else LituseKind.BASE
        return (load, kind)

    def _jump(self, op, operands, annotations) -> None:
        if len(operands) != 2:
            raise self.error(f"{op.name} needs 2 operands")
        ra = _parse_reg(operands[0], self.line)
        target = operands[1].strip()
        if not (target.startswith("(") and target.endswith(")")):
            raise self.error(f"expected (reg), got {target!r}")
        rb = _parse_reg(target[1:-1], self.line)
        kwargs = {}
        for note in annotations:
            if note == "lituse_jsr":
                kwargs["lituse"] = self._lituse(note, rb)
            elif note.startswith("hint:"):
                kwargs["hint"] = note.split(":", 1)[1]
            elif note.startswith("jmptab:"):
                symbol, count = note.split(":", 1)[1].rsplit(",", 1)
                kwargs["jmptab"] = (symbol, int(count))
            else:
                raise self.error(f"unknown annotation !{note}")
        self.asm.emit(Instruction.jump(op.name, ra, rb), **kwargs)

    def _branch(self, op, operands, annotations) -> None:
        if len(operands) != 2:
            raise self.error(f"{op.name} needs 2 operands")
        ra = _parse_reg(operands[0], self.line)
        target = operands[1].strip()
        match = _SYMBOL_RE.match(target)
        if not match:
            raise self.error(f"bad branch target {target!r}")
        symbol, addend = match.groups()
        self.asm.emit(
            Instruction.branch(op.name, ra, 0), branch=(symbol, int(addend or 0))
        )

    def _operate(self, op, operands) -> None:
        if len(operands) != 3:
            raise self.error(f"{op.name} needs 3 operands")
        ra = _parse_reg(operands[0], self.line)
        rc = _parse_reg(operands[2], self.line)
        second = operands[1].strip()
        if second.lstrip("$").lower() in _REG_NAMES:
            self.asm.emit(
                Instruction.opr(op.name, ra, _parse_reg(second, self.line), rc)
            )
        else:
            value = _parse_int(second, self.line)
            if not 0 <= value <= 255:
                raise self.error(f"operate literal {value} out of range")
            self.asm.emit(Instruction.opr(op.name, ra, value, rc, lit=True))


def assemble_text(source: str, module_name: str = "asm.o") -> ObjectFile:
    """Assemble a text module into an object file."""
    return TextAssembler(module_name).assemble(source)
