"""Disassembler: render instructions in Alpha assembly syntax.

Used by tests, examples, and OM's before/after dumps.  Output follows
the conventional OSF syntax, e.g. ``ldq t0, 188(gp)`` or
``bis zero, zero, zero``.
"""

from __future__ import annotations

from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, PalFunc
from repro.isa.registers import reg_name

_PAL_NAMES = {f.value: f.name.lower() for f in PalFunc}


def format_instruction(instr: Instruction, pc: int | None = None) -> str:
    """Format one instruction.

    If ``pc`` (the instruction's own address) is given, branch targets are
    rendered as absolute addresses instead of raw displacements.
    """
    op = instr.op
    fmt = op.format
    if instr.is_nop and fmt is Format.OPERATE:
        return "nop"
    if fmt is Format.MEMORY:
        return f"{op.name} {reg_name(instr.ra)}, {instr.disp}({reg_name(instr.rb)})"
    if fmt is Format.MEMORY_JUMP:
        return f"{op.name} {reg_name(instr.ra)}, ({reg_name(instr.rb)}), {instr.disp}"
    if fmt is Format.BRANCH:
        if pc is None:
            target = f".{instr.disp:+d}"
        else:
            target = f"{pc + 4 + 4 * instr.disp:#x}"
        if instr.is_cond_branch:
            return f"{op.name} {reg_name(instr.ra)}, {target}"
        return f"{op.name} {reg_name(instr.ra)}, {target}"
    if fmt is Format.OPERATE:
        src2 = f"{instr.lit:#x}" if instr.lit is not None else reg_name(instr.rb)
        return f"{op.name} {reg_name(instr.ra)}, {src2}, {reg_name(instr.rc)}"
    # PAL
    name = _PAL_NAMES.get(instr.disp, f"{instr.disp:#x}")
    return f"call_pal {name}"


def disassemble(data: bytes, base: int = 0) -> list[str]:
    """Disassemble an instruction byte stream into formatted lines."""
    lines = []
    for offset in range(0, len(data), 4):
        word = int.from_bytes(data[offset : offset + 4], "little")
        pc = base + offset
        try:
            text = format_instruction(decode(word), pc=pc)
        except Exception:
            text = f".word {word:#010x}"
        lines.append(f"{pc:#012x}:  {text}")
    return lines
