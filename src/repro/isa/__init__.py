"""Alpha AXP-subset instruction set architecture.

This package models the machine language the whole toolchain speaks: a
64-bit RISC with 32-bit instructions, closely following the Alpha AXP
formats described in the Alpha Architecture Reference Manual and used by
the paper.  It provides register definitions with their calling-convention
roles, the instruction catalogue, exact binary encoding/decoding, a
symbolic assembler layer used by the compiler back end, and a
disassembler.
"""

from repro.isa.registers import Reg, REG_NAMES, reg_name
from repro.isa.opcodes import Op, Format, OPS, PalFunc, NOP, UNOP
from repro.isa.instruction import Instruction
from repro.isa.encoding import encode, decode, EncodingError

__all__ = [
    "Reg",
    "REG_NAMES",
    "reg_name",
    "Op",
    "Format",
    "OPS",
    "PalFunc",
    "NOP",
    "UNOP",
    "Instruction",
    "encode",
    "decode",
    "EncodingError",
]
