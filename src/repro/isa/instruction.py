"""The concrete machine instruction value type.

An :class:`Instruction` is fully numeric — every operand is a register
number or an immediate — and can be encoded to its 32-bit word.  The
assembler (:mod:`repro.isa.asm`) and OM's symbolic form wrap this type
with symbolic operands; by the time an ``Instruction`` exists, all
symbols have been resolved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

from repro.isa.opcodes import CONDITIONAL_BRANCHES, OPS, Format, Op
from repro.isa.registers import Reg


@dataclass(slots=True)
class Instruction:
    """One 32-bit instruction.

    Field use by format:

    * MEMORY:       ``ra``, ``rb``, ``disp`` (16-bit signed)
    * MEMORY_JUMP:  ``ra``, ``rb``, ``disp`` = 14-bit hint
    * BRANCH:       ``ra``, ``disp`` (21-bit signed word displacement)
    * OPERATE:      ``ra``, ``rb`` or ``lit`` (8-bit unsigned), ``rc``
    * PAL:          ``disp`` = 26-bit function code
    """

    op: Op
    ra: int = 31
    rb: int = 31
    rc: int = 31
    disp: int = 0
    lit: int | None = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def mem(cls, name: str, ra: int, rb: int, disp: int) -> Instruction:
        """Memory-format instruction ``name ra, disp(rb)``."""
        op = OPS[name]
        assert op.format is Format.MEMORY, name
        return cls(op, ra=ra, rb=rb, disp=disp)

    @classmethod
    def opr(cls, name: str, ra: int, rb_or_lit: int, rc: int, *, lit: bool = False) -> Instruction:
        """Operate-format instruction ``name ra, rb_or_lit, rc``."""
        op = OPS[name]
        assert op.format is Format.OPERATE, name
        if lit:
            return cls(op, ra=ra, rc=rc, lit=rb_or_lit)
        return cls(op, ra=ra, rb=rb_or_lit, rc=rc)

    @classmethod
    def branch(cls, name: str, ra: int, disp: int) -> Instruction:
        """Branch-format instruction; ``disp`` in instruction words."""
        op = OPS[name]
        assert op.format is Format.BRANCH, name
        return cls(op, ra=ra, disp=disp)

    @classmethod
    def jump(cls, name: str, ra: int, rb: int, hint: int = 0) -> Instruction:
        """Memory-format jump ``name ra, (rb), hint``."""
        op = OPS[name]
        assert op.format is Format.MEMORY_JUMP, name
        return cls(op, ra=ra, rb=rb, disp=hint)

    @classmethod
    def pal(cls, func: int) -> Instruction:
        """``call_pal func``."""
        return cls(OPS["call_pal"], disp=func)

    @classmethod
    def nop(cls) -> Instruction:
        """The canonical integer no-op ``bis zero, zero, zero``."""
        return cls.opr("bis", Reg.ZERO, Reg.ZERO, Reg.ZERO)

    def replace(self, **kwargs) -> Instruction:
        """Return a copy with fields replaced."""
        return _dc_replace(self, **kwargs)

    # -- classification -------------------------------------------------

    @property
    def is_nop(self) -> bool:
        """True for the canonical no-op and any op writing only ZERO."""
        op = self.op
        if op.format is Format.OPERATE:
            return self.rc == Reg.ZERO
        if op is OPS["ldq_u"]:
            return self.ra == Reg.ZERO
        if op.name in ("lda", "ldah"):
            return self.ra == Reg.ZERO
        return False

    @property
    def is_branch(self) -> bool:
        return self.op.format is Format.BRANCH

    @property
    def is_cond_branch(self) -> bool:
        return self.op.name in CONDITIONAL_BRANCHES

    @property
    def is_jump(self) -> bool:
        return self.op.format is Format.MEMORY_JUMP

    @property
    def is_call(self) -> bool:
        """True for the call forms: ``jsr`` and ``bsr``."""
        return self.op.name in ("jsr", "bsr")

    @property
    def is_control(self) -> bool:
        """True if this instruction can change the PC."""
        return (
            self.op.format in (Format.BRANCH, Format.MEMORY_JUMP)
            or self.op.format is Format.PAL
        )

    # -- register dependences (for scheduling and analysis) --------------

    def defs(self) -> tuple[int, ...]:
        """Registers written (ZERO filtered out)."""
        op = self.op
        fmt = op.format
        if fmt is Format.OPERATE:
            regs = (self.rc,)
        elif fmt is Format.MEMORY:
            regs = () if op.is_store else (self.ra,)
        elif fmt is Format.MEMORY_JUMP:
            regs = (self.ra,)
        elif fmt is Format.BRANCH:
            regs = () if self.is_cond_branch else (self.ra,)
        else:  # PAL
            regs = (Reg.V0.value,)
        return tuple(r for r in regs if r != Reg.ZERO)

    def uses(self) -> tuple[int, ...]:
        """Registers read (ZERO filtered out)."""
        op = self.op
        fmt = op.format
        if fmt is Format.OPERATE:
            regs = [self.ra]
            if self.lit is None:
                regs.append(self.rb)
            if op.name.startswith("cmov"):
                regs.append(self.rc)
        elif fmt is Format.MEMORY:
            regs = [self.rb]
            if op.is_store:
                regs.append(self.ra)
        elif fmt is Format.MEMORY_JUMP:
            regs = [self.rb]
        elif fmt is Format.BRANCH:
            regs = [self.ra] if self.is_cond_branch else []
        else:  # PAL
            regs = [Reg.A0.value]
        return tuple(r for r in regs if r != Reg.ZERO)

    # -- display ---------------------------------------------------------

    def __str__(self) -> str:
        from repro.isa.disasm import format_instruction

        return format_instruction(self)
