"""Shared timing model of the simulated dual-issue AXP implementation.

Modeled on the DECstation 3000/400's 21064-class pipeline used in the
paper's dynamic measurements:

* in-order dual issue: one integer-operate instruction may pair with one
  memory or control instruction per cycle (two integer ops, two memory
  ops, or two control ops never pair);
* loads have a 3-cycle latency (2 stall cycles on immediate use);
* integer multiply is long-latency;
* taken branches cost one bubble.

Both pipeline schedulers (compile-time and OM's link-time rescheduler)
and the performance simulator import this table, mirroring the paper's
note that OM's scheduler is "very similar to the scheduler used by the
assembler".
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format

#: Result latency in cycles by producer kind.
LOAD_LATENCY = 3
MUL_LATENCY = 12
DEFAULT_LATENCY = 1

#: Extra cycles for a taken branch (fetch bubble).
TAKEN_BRANCH_PENALTY = 1

#: Cache geometry: split 8KB direct-mapped I and D caches, 32-byte lines.
ICACHE_BYTES = 8192
DCACHE_BYTES = 8192
CACHE_LINE = 32
CACHE_MISS_PENALTY = 10


def result_latency(instr: Instruction) -> int:
    """Cycles until ``instr``'s result may be consumed without stalling."""
    if instr.op.is_load:
        return LOAD_LATENCY
    if instr.op.name in ("mulq", "mull", "umulh"):
        return MUL_LATENCY
    return DEFAULT_LATENCY


def issue_class(instr: Instruction) -> str:
    """Issue pipe class: 'M' memory, 'B' control, 'I' integer operate."""
    fmt = instr.op.format
    if fmt is Format.MEMORY:
        return "M"
    if fmt is Format.OPERATE:
        return "I"
    return "B"  # branches, jumps, PAL


def can_dual_issue(first: Instruction, second: Instruction) -> bool:
    """Whether two independent instructions may share an issue cycle."""
    return issue_class(first) != issue_class(second)
