"""Exact binary encoding and decoding of the 32-bit instruction word.

Encoding follows the Alpha AXP layouts; :func:`decode` is the exact
inverse of :func:`encode` for every instruction in the subset (this is
property-tested).  Unknown opcodes raise :class:`EncodingError` so that
corrupted object files fail loudly rather than silently mis-execute.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPS, Format, Op


class EncodingError(ValueError):
    """Raised for malformed instructions or undecodable words."""


_MASK16 = 0xFFFF
_MASK21 = 0x1FFFFF

# Decode lookup tables built once from the catalogue.
_BY_OPCODE: dict[int, Op] = {}
_BY_OPCODE_FUNC: dict[tuple[int, int], Op] = {}
for _op in OPS.values():
    if _op.format in (Format.OPERATE, Format.MEMORY_JUMP):
        _BY_OPCODE_FUNC[(_op.opcode, _op.func)] = _op
    else:
        _BY_OPCODE[_op.opcode] = _op


def _check_range(value: int, bits: int, what: str, *, signed: bool) -> None:
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{what} {value} out of {bits}-bit range [{lo}, {hi}]")


def encode(instr: Instruction) -> int:
    """Encode ``instr`` into its 32-bit word."""
    op = instr.op
    word = op.opcode << 26
    fmt = op.format
    if fmt is Format.MEMORY:
        _check_range(instr.disp, 16, f"{op.name} displacement", signed=True)
        return word | (instr.ra << 21) | (instr.rb << 16) | (instr.disp & _MASK16)
    if fmt is Format.MEMORY_JUMP:
        _check_range(instr.disp, 14, f"{op.name} hint", signed=False)
        return (
            word
            | (instr.ra << 21)
            | (instr.rb << 16)
            | (op.func << 14)
            | instr.disp
        )
    if fmt is Format.BRANCH:
        _check_range(instr.disp, 21, f"{op.name} displacement", signed=True)
        return word | (instr.ra << 21) | (instr.disp & _MASK21)
    if fmt is Format.OPERATE:
        word |= (instr.ra << 21) | (op.func << 5) | instr.rc
        if instr.lit is not None:
            _check_range(instr.lit, 8, f"{op.name} literal", signed=False)
            return word | (instr.lit << 13) | (1 << 12)
        return word | (instr.rb << 16)
    if fmt is Format.PAL:
        _check_range(instr.disp, 26, "PAL function", signed=False)
        return word | instr.disp
    raise EncodingError(f"unencodable format {fmt}")  # pragma: no cover


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def decode(word: int) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`EncodingError` for words outside the subset.
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    opcode = word >> 26
    ra = (word >> 21) & 31
    rb = (word >> 16) & 31

    op = _BY_OPCODE.get(opcode)
    if op is not None:
        fmt = op.format
        if fmt is Format.MEMORY:
            return Instruction(op, ra=ra, rb=rb, disp=_sext(word, 16))
        if fmt is Format.BRANCH:
            return Instruction(op, ra=ra, disp=_sext(word, 21))
        if fmt is Format.PAL:
            return Instruction(op, disp=word & 0x3FFFFFF)
        raise EncodingError(f"bad table entry for opcode {opcode:#x}")  # pragma: no cover

    if opcode == 0x1A:  # memory-format jumps
        func = (word >> 14) & 3
        op = _BY_OPCODE_FUNC.get((opcode, func))
        if op is None:  # pragma: no cover - all four funcs defined
            raise EncodingError(f"unknown jump func {func}")
        return Instruction(op, ra=ra, rb=rb, disp=word & 0x3FFF)

    # Operate format.
    func = (word >> 5) & 0x7F
    op = _BY_OPCODE_FUNC.get((opcode, func))
    if op is None:
        raise EncodingError(f"unknown instruction word {word:#010x}")
    rc = word & 31
    if word & (1 << 12):
        return Instruction(op, ra=ra, rc=rc, lit=(word >> 13) & 0xFF)
    if (word >> 13) & 7:
        raise EncodingError(f"SBZ bits set in operate word {word:#010x}")
    return Instruction(op, ra=ra, rb=rb, rc=rc)


def encode_stream(instructions: list[Instruction]) -> bytes:
    """Encode a sequence of instructions to little-endian bytes."""
    out = bytearray()
    for instr in instructions:
        out += encode(instr).to_bytes(4, "little")
    return bytes(out)


def decode_stream(data: bytes) -> list[Instruction]:
    """Decode little-endian instruction bytes; length must be a multiple of 4."""
    if len(data) % 4:
        raise EncodingError(f"instruction stream length {len(data)} not word-aligned")
    return [
        decode(int.from_bytes(data[i : i + 4], "little"))
        for i in range(0, len(data), 4)
    ]
