"""Instruction catalogue for the Alpha AXP subset.

Instruction formats (Alpha Architecture Reference Manual, ch. 3):

* ``MEMORY``      — opcode[31:26] ra[25:21] rb[20:16] disp[15:0]
* ``MEMORY_JUMP`` — opcode 0x1A, ra[25:21] rb[20:16] func[15:14] hint[13:0]
* ``BRANCH``      — opcode[31:26] ra[25:21] disp[20:0] (signed *word* disp)
* ``OPERATE``     — opcode[31:26] ra[25:21] rb[20:16]/lit[20:13]+1[12]
                    func[11:5] rc[4:0]
* ``PAL``         — opcode 0x00, func[25:0]

Major opcodes and function codes follow the real architecture where the
subset overlaps it (LDA=0x08, LDQ=0x29, BIS=0x11.20, BSR=0x34, ...), so
encodings in tests and examples look like genuine Alpha code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    """The five instruction encodings of the subset."""

    MEMORY = "memory"
    MEMORY_JUMP = "memory_jump"
    BRANCH = "branch"
    OPERATE = "operate"
    PAL = "pal"


class PalFunc(enum.IntEnum):
    """CALL_PAL function codes used by the simulated OS interface."""

    HALT = 0x0000
    PUTCHAR = 0x0081  # write low byte of a0 to the console
    PUTINT = 0x0082  # write a0 as a signed decimal, plus newline
    GETTICKS = 0x0083  # v0 := cycles executed so far


@dataclass(frozen=True)
class Op:
    """One instruction definition.

    ``func`` is the function code for OPERATE and MEMORY_JUMP formats and
    ``None`` otherwise.  ``is_load``/``is_store`` classify true memory
    operations (LDA/LDAH are address arithmetic, not loads).
    """

    name: str
    format: Format
    opcode: int
    func: int | None = None
    is_load: bool = False
    is_store: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.name})"


def _mem(name: str, opcode: int, *, load: bool = False, store: bool = False) -> Op:
    return Op(name, Format.MEMORY, opcode, is_load=load, is_store=store)


def _br(name: str, opcode: int) -> Op:
    return Op(name, Format.BRANCH, opcode)


def _opr(name: str, opcode: int, func: int) -> Op:
    return Op(name, Format.OPERATE, opcode, func)


def _jmp(name: str, func: int) -> Op:
    return Op(name, Format.MEMORY_JUMP, 0x1A, func)


#: All instructions in the subset, by name.
OPS: dict[str, Op] = {
    op.name: op
    for op in [
        # --- PALcode ---------------------------------------------------
        Op("call_pal", Format.PAL, 0x00),
        # --- memory format ----------------------------------------------
        _mem("lda", 0x08),
        _mem("ldah", 0x09),  # disp is shifted left 16
        _mem("ldbu", 0x0A, load=True),
        _mem("ldq_u", 0x0B, load=True),
        _mem("stb", 0x0E, store=True),
        _mem("ldl", 0x28, load=True),  # sign-extending 32-bit load
        _mem("ldq", 0x29, load=True),
        _mem("stl", 0x2C, store=True),
        _mem("stq", 0x2D, store=True),
        # --- memory-format jumps ----------------------------------------
        _jmp("jmp", 0),
        _jmp("jsr", 1),
        _jmp("ret", 2),
        _jmp("jsr_coroutine", 3),
        # --- branch format ----------------------------------------------
        _br("br", 0x30),
        _br("bsr", 0x34),
        _br("blbc", 0x38),
        _br("beq", 0x39),
        _br("blt", 0x3A),
        _br("ble", 0x3B),
        _br("blbs", 0x3C),
        _br("bne", 0x3D),
        _br("bge", 0x3E),
        _br("bgt", 0x3F),
        # --- operate: integer arithmetic (opcode 0x10) -------------------
        _opr("addl", 0x10, 0x00),
        _opr("s4addq", 0x10, 0x22),
        _opr("s8addq", 0x10, 0x32),
        _opr("addq", 0x10, 0x20),
        _opr("subl", 0x10, 0x09),
        _opr("subq", 0x10, 0x29),
        _opr("cmpeq", 0x10, 0x2D),
        _opr("cmplt", 0x10, 0x4D),
        _opr("cmple", 0x10, 0x6D),
        _opr("cmpult", 0x10, 0x1D),
        _opr("cmpule", 0x10, 0x3D),
        # --- operate: logical / conditional move (opcode 0x11) -----------
        _opr("and", 0x11, 0x00),
        _opr("bic", 0x11, 0x08),
        _opr("bis", 0x11, 0x20),
        _opr("ornot", 0x11, 0x28),
        _opr("xor", 0x11, 0x40),
        _opr("eqv", 0x11, 0x48),
        _opr("cmoveq", 0x11, 0x24),
        _opr("cmovne", 0x11, 0x26),
        _opr("cmovlt", 0x11, 0x44),
        _opr("cmovge", 0x11, 0x46),
        _opr("cmovle", 0x11, 0x64),
        _opr("cmovgt", 0x11, 0x66),
        # --- operate: shifts (opcode 0x12) --------------------------------
        _opr("sll", 0x12, 0x39),
        _opr("srl", 0x12, 0x34),
        _opr("sra", 0x12, 0x3C),
        # --- operate: multiply (opcode 0x13) ------------------------------
        _opr("mull", 0x13, 0x00),
        _opr("mulq", 0x13, 0x20),
        _opr("umulh", 0x13, 0x30),
    ]
}

#: Branch instructions that test a register (everything but br/bsr).
CONDITIONAL_BRANCHES = frozenset(
    ["blbc", "beq", "blt", "ble", "blbs", "bne", "bge", "bgt"]
)

#: Canonical integer no-op: ``bis zero, zero, zero``.
NOP = OPS["bis"]

#: The "universal NOP" used in load slots: ``ldq_u zero, 0(zero)``.
UNOP = OPS["ldq_u"]
