"""Alpha AXP integer register set and calling-convention roles.

The Alpha has 32 integer registers.  Several have architecturally or
conventionally fixed roles that the paper's optimizations depend on:

* ``GP`` (r29) — the global pointer, base register for the global address
  table (GAT).
* ``PV`` (r27) — the procedure value: by convention it holds the entry
  address of the called procedure, which the callee uses to compute its
  own GP.
* ``RA`` (r26) — the return address, which the caller uses to recompute
  its GP after a call returns.
* ``ZERO`` (r31) — reads as zero, writes are discarded.
"""

from __future__ import annotations

import enum


class Reg(enum.IntEnum):
    """Integer registers, named by their software convention."""

    V0 = 0  # function return value
    T0 = 1
    T1 = 2
    T2 = 3
    T3 = 4
    T4 = 5
    T5 = 6
    T6 = 7
    T7 = 8
    S0 = 9  # callee-saved
    S1 = 10
    S2 = 11
    S3 = 12
    S4 = 13
    S5 = 14
    FP = 15  # frame pointer / s6
    A0 = 16  # arguments
    A1 = 17
    A2 = 18
    A3 = 19
    A4 = 20
    A5 = 21
    T8 = 22
    T9 = 23
    T10 = 24
    T11 = 25
    RA = 26  # return address
    PV = 27  # procedure value (t12)
    AT = 28  # assembler temporary
    GP = 29  # global pointer
    SP = 30  # stack pointer
    ZERO = 31  # hardwired zero


#: Registers a callee must preserve.
CALLEE_SAVED = (Reg.S0, Reg.S1, Reg.S2, Reg.S3, Reg.S4, Reg.S5, Reg.FP)

#: Registers available for expression temporaries (caller-saved).
TEMPORARIES = (
    Reg.T0,
    Reg.T1,
    Reg.T2,
    Reg.T3,
    Reg.T4,
    Reg.T5,
    Reg.T6,
    Reg.T7,
    Reg.T8,
    Reg.T9,
    Reg.T10,
    Reg.T11,
)

#: Argument registers, in order.
ARG_REGS = (Reg.A0, Reg.A1, Reg.A2, Reg.A3, Reg.A4, Reg.A5)

REG_NAMES = {r.value: r.name.lower() for r in Reg}


def reg_name(num: int) -> str:
    """Return the conventional software name of register ``num``."""
    return REG_NAMES[num]
