"""Toolchain-wide observability: spans, counters, events, provenance.

The :class:`~repro.obs.trace.TraceLog` is the single collection point:
the experiments pipeline records its build/link/run stages as spans, OM
records every transformation decision as a provenance event, and the
verifier contributes its structural counters.  One log serializes to
JSONL (stable, diffable, greppable) and exports to the Chrome
trace-event format that ``chrome://tracing`` and Perfetto load
directly.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceLog, now_us, span_or_null

__all__ = ["MetricsRegistry", "TraceLog", "now_us", "span_or_null"]
