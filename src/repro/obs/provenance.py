"""Transformation provenance: the audit trail of OM decisions.

Every convert / nullify / delete / move / retarget / GC-drop that OM
performs emits one structured event into the link's
:class:`~repro.obs.trace.TraceLog`::

    {pass, round, module, proc, pc, before, after, reason, counter}

``counter`` names the :class:`~repro.om.transform.PassCounters` field
the decision increments (``None`` for pure motion), which is what lets
:func:`reconcile` prove — exactly, not statistically — that the audit
trail accounts for every total the figures report.  The ``explain``
CLI (``python -m repro.experiments explain <prog>``) renders these
events as one line per decision.
"""

from __future__ import annotations

from repro.obs.trace import TraceLog

#: Category tag of provenance events inside a TraceLog.
PROVENANCE_CAT = "om-provenance"

#: The actions OM distinguishes (ISSUE vocabulary).  ``reorder``,
#: ``hot-place`` and ``relax`` come from the layout subsystem
#: (:mod:`repro.layout`): Pettis-Hansen procedure moves, hot COMMON
#: placement decisions, and span-dependent relaxation demotions.
ACTIONS = (
    "convert",
    "nullify",
    "delete",
    "move",
    "retarget",
    "gc-drop",
    "reorder",
    "hot-place",
    "relax",
)


def emit(
    trace: TraceLog | None,
    *,
    action: str,
    pass_name: str,
    module: str,
    proc: str,
    pc: int | None,
    before: str,
    after: str,
    reason: str,
    counter: str | list[str] | None = None,
    round_index: int = 0,
) -> None:
    """Record one OM decision (no-op when tracing is off)."""
    if trace is None:
        return
    trace.event(
        f"om.{action}",
        cat=PROVENANCE_CAT,
        action=action,
        pass_name=pass_name,
        round=round_index,
        module=module,
        proc=proc,
        pc=pc,
        before=before,
        after=after,
        reason=reason,
        counter=counter,
    )


def events(trace: TraceLog, *, proc: str | None = None) -> list[dict]:
    """Provenance event payloads, optionally restricted to one proc."""
    out = [e["args"] for e in trace.select(cat=PROVENANCE_CAT)]
    if proc is not None:
        out = [a for a in out if a.get("proc") == proc]
    return out


def counter_totals(trace: TraceLog) -> dict[str, int]:
    """How many events claim each PassCounters field.

    ``counter`` may be a single field name or a list (one deleted
    instruction can account for both ``instructions_deleted`` and a
    semantic total like ``pv_loads_removed``).
    """
    totals: dict[str, int] = {}
    for args in events(trace):
        counter = args.get("counter")
        if not counter:
            continue
        for name in counter if isinstance(counter, list) else [counter]:
            totals[name] = totals.get(name, 0) + 1
    return totals


def reconcile(trace: TraceLog, counters) -> dict[str, tuple[int, int]]:
    """Compare the audit trail against a PassCounters total sheet.

    Returns ``{field: (events, counter_value)}`` for every field where
    they disagree — empty means the trail accounts for every total.
    """
    totals = counter_totals(trace)
    mismatches: dict[str, tuple[int, int]] = {}
    for field, value in vars(counters).items():
        traced = totals.get(field, 0)
        if traced != value:
            mismatches[field] = (traced, value)
    return mismatches


def format_event(args: dict) -> str:
    """One human-readable audit line for an event payload."""
    pc = args.get("pc")
    where = f"pc={pc:#x}" if isinstance(pc, int) else "pc=?"
    return (
        f"[round{args.get('round', 0)}/{args.get('pass_name', '?')}] "
        f"{args.get('module', '?')}:{args.get('proc', '?')} {where} "
        f"{args.get('action', '?')}: {args.get('before', '?')} -> "
        f"{args.get('after', '?')}  ({args.get('reason', '')})"
    )


def explain_lines(trace: TraceLog, *, proc: str | None = None) -> list[str]:
    """The full audit trail as printable lines."""
    return [format_event(args) for args in events(trace, proc=proc)]
