"""A process-safe registry of named counters, gauges, and histograms.

One :class:`MetricsRegistry` per process collects every serving-path
and toolchain metric under a flat namespace with optional labels, and
exports the whole set two ways:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` series for histograms), scrapable as-is;
* :meth:`MetricsRegistry.to_dict` — a schema-versioned JSON object for
  the daemon's ``metrics`` op, ``BENCH_*.json`` reports, and tests.

All mutating operations take a per-registry lock, so many client
threads (the daemon's connection handlers, the load generator's
workers) may increment concurrently without losing updates; reads are
plain attribute loads of already-published values.

:class:`Histogram` generalizes the log-bucketed latency histogram that
previously lived in ``repro.serve.metrics``: a fixed geometric bucket
ladder (25% per step, ~0.1 ms up to ~21 s, plus overflow) keeps
``observe`` O(1) and quantile estimates within bounded relative error.
``repro.serve.metrics.LatencyHistogram`` is now a thin alias kept for
its ``status``-payload ``to_dict`` shape.
"""

from __future__ import annotations

import threading

#: Exposition schema version: bump when the JSON shape changes.
SCHEMA = "repro-metrics/1"

#: Default histogram bucket upper bounds in seconds: 0.1 ms growing by
#: 1.25x per bucket, 56 finite buckets (~21 s), then overflow.
_FIRST_BOUND = 1e-4
_GROWTH = 1.25
_BUCKETS = 56

BOUNDS = tuple(_FIRST_BOUND * _GROWTH**i for i in range(_BUCKETS))


def percentile(sorted_samples: list[float], q: float) -> float:
    """Exact nearest-rank percentile of pre-sorted samples.

    ``q`` is a fraction in [0, 1].  Empty input returns 0.0; ``q=0``
    returns the smallest sample (rank is clamped to at least 1) and
    ``q=1`` the largest.
    """
    if not sorted_samples:
        return 0.0
    rank = max(1, round(q * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


class _Metric:
    """Common identity: name, help text, sorted label pairs."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: dict, lock):
        self.name = name
        self.help = help
        self.labels = dict(sorted(labels.items()))
        self._lock = lock

    def _label_str(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(
            f'{key}="{_escape(str(value))}"'
            for key, value in self.labels.items()
        )
        return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name, help, labels, lock):
        super().__init__(name, help, labels, lock)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}

    def samples(self):
        yield self.name, self.labels, self.value


class Gauge(_Metric):
    """A value that can go up and down — or be sampled via ``fn``."""

    kind = "gauge"

    def __init__(self, name, help, labels, lock, fn=None):
        super().__init__(name, help, labels, lock)
        self._value = 0.0
        self.fn = fn

    @property
    def value(self):
        if self.fn is not None:
            return self.fn()
        return self._value

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        self.inc(-amount)

    def to_dict(self) -> dict:
        return {"value": self.value}

    def samples(self):
        yield self.name, self.labels, self.value


class Histogram(_Metric):
    """Log-bucketed distribution with quantile estimation.

    Buckets are fixed at registration (``bounds``); ``observe`` is O(1)
    amortized (a linear scan of 57 bounds), and :meth:`quantile`
    returns the upper bound of the bucket holding the q-th sample,
    clamped to the observed max so the estimate never exceeds a real
    observation.
    """

    kind = "histogram"

    def __init__(self, name, help, labels, lock, bounds=BOUNDS):
        super().__init__(name, help, labels, lock)
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        index = len(self.bounds)  # overflow unless a bound catches it
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def quantile(self, q: float) -> float:
        """The q-quantile, estimated from the buckets; 0.0 when empty."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                bound = self.bounds[i] if i < len(self.bounds) else self.max
                return min(bound, self.max)
        return self.max

    def summary(self) -> dict:
        """The compact latency shape embedded in a ``status`` response."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_ms": 1e3 * self.total / self.count,
            "min_ms": 1e3 * self.min,
            "max_ms": 1e3 * self.max,
            "p50_ms": 1e3 * self.quantile(0.50),
            "p95_ms": 1e3 * self.quantile(0.95),
            "p99_ms": 1e3 * self.quantile(0.99),
        }

    def to_dict(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.total,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.bounds, self.counts)
                if n
            ],
            "overflow": self.counts[-1],
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out

    def samples(self):
        cumulative = 0
        for bound, n in zip(self.bounds, self.counts):
            cumulative += n
            yield (
                self.name + "_bucket",
                {**self.labels, "le": _format_bound(bound)},
                cumulative,
            )
        yield (
            self.name + "_bucket",
            {**self.labels, "le": "+Inf"},
            cumulative + self.counts[-1],
        )
        yield self.name + "_sum", self.labels, self.total
        yield self.name + "_count", self.labels, self.count


def _format_bound(bound: float) -> str:
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


class MetricsRegistry:
    """All of one process's metrics, registered once, exported together.

    Registration is idempotent on ``(name, labels)``: asking for an
    existing series returns the existing object (with a kind check), so
    module-level helpers can ``registry.counter(...)`` freely without
    double-registering.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, _Metric] = {}

    def _register(self, cls, name, help, labels, **kwargs) -> _Metric:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, labels, self._lock, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", *, fn=None, **labels) -> Gauge:
        return self._register(Gauge, name, help, labels, fn=fn)

    def histogram(
        self, name: str, help: str = "", *, bounds=BOUNDS, **labels
    ) -> Histogram:
        return self._register(Histogram, name, help, labels, bounds=bounds)

    def __iter__(self):
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels) -> _Metric | None:
        return self._metrics.get((name, tuple(sorted(labels.items()))))

    # -- exposition ------------------------------------------------------

    def to_dict(self) -> dict:
        """Schema-versioned JSON exposition of every registered series."""
        series = []
        for metric in self:
            series.append(
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help,
                    "labels": metric.labels,
                    **metric.to_dict(),
                }
            )
        return {"schema": SCHEMA, "metrics": series}

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in sorted(self, key=lambda m: (m.name, tuple(m.labels.items()))):
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for name, labels, value in metric.samples():
                label_str = ""
                if labels:
                    inner = ",".join(
                        f'{key}="{_escape(str(val))}"'
                        for key, val in sorted(labels.items())
                    )
                    label_str = "{" + inner + "}"
                lines.append(f"{name}{label_str} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))
