"""Stitch per-process trace sinks into one Chrome trace.

The serving path writes several JSONL sinks per run — the daemon's
event-loop trace, one ``worker-<pid>.jsonl`` per pool worker, and one
``client-*.jsonl`` per load-generator thread.  Each sink is already a
valid :class:`~repro.obs.trace.TraceLog` stream; this module merges any
number of them into a single timeline:

* events are concatenated and sorted by timestamp (stable, so equal
  timestamps keep their per-file order);
* each source file contributes Chrome ``process_name`` metadata events
  (derived from the sink's filename) so Perfetto labels the server,
  client, and worker lanes;
* :func:`request_index` groups span events by the ``request_id`` each
  carries in its ``args``, which is what the load generator's
  correlation check (and a human asking "where did request X spend its
  time?") consumes.

``python -m repro.toolchain merge-trace -o merged.json <sinks...>`` is
the CLI face; directories are expanded to every ``*.jsonl`` inside.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.trace import TraceLog


def iter_trace_files(paths) -> list[Path]:
    """Expand files and directories to a sorted list of JSONL sinks."""
    out: list[Path] = []
    for item in paths:
        path = Path(item)
        if path.is_dir():
            out.extend(sorted(path.glob("*.jsonl")))
        elif path.exists():
            out.append(path)
        else:
            raise FileNotFoundError(f"no trace sink at {path}")
    return out


def merge_traces(paths) -> TraceLog:
    """One TraceLog holding every event of every sink, time-ordered."""
    files = iter_trace_files(paths)
    merged: list[dict] = []
    pid_names: dict[int, str] = {}
    for path in files:
        events = TraceLog.load_jsonl(path).events
        for event in events:
            pid = event.get("pid")
            if pid is not None and pid not in pid_names:
                pid_names[pid] = path.stem
        merged.extend(events)
    merged.sort(key=lambda e: e.get("ts", 0.0))
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "cat": "__metadata",
            "args": {"name": name},
        }
        for pid, name in sorted(pid_names.items())
    ]
    return TraceLog(metadata + merged)


def request_index(trace: TraceLog) -> dict[str, list[dict]]:
    """Span/instant events grouped by the ``request_id`` they carry."""
    index: dict[str, list[dict]] = {}
    for event in trace.events:
        rid = (event.get("args") or {}).get("request_id")
        if rid is not None:
            index.setdefault(rid, []).append(event)
    return index


def correlation_report(trace: TraceLog) -> dict:
    """How completely the request ids stitch across process roles.

    For every request id seen anywhere, reports which span families
    cover it: ``client.*`` spans, ``serve.*`` stage spans, and
    ``worker.*`` spans.  A request served from the disk cache or by
    coalescing legitimately has no worker span, so the strong check is
    ``executed ⊆ worker_covered``: every request whose server spans
    include an ``execute`` stage must also show up in a pool worker.
    """
    index = request_index(trace)
    client = set()
    server = set()
    worker = set()
    executed = set()
    for rid, events in index.items():
        for event in events:
            name = event.get("name", "")
            if name.startswith("client."):
                client.add(rid)
            elif name.startswith("serve."):
                server.add(rid)
                if name == "serve.execute":
                    executed.add(rid)
            elif name.startswith("worker."):
                worker.add(rid)
    return {
        "request_ids": len(index),
        "client_spans": len(client),
        "server_spans": len(server),
        "worker_spans": len(worker),
        "executed": len(executed),
        "client_without_server": sorted(client - server)[:10],
        "executed_without_worker": sorted(executed - worker)[:10],
        "ok": bool(index)
        and not (client - server)
        and not (executed - worker),
    }


def merge_main(argv=None) -> int:
    """CLI body for ``python -m repro.toolchain merge-trace``."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro.toolchain merge-trace",
        description="merge JSONL trace sinks into one Chrome trace",
    )
    parser.add_argument("sinks", nargs="+",
                        help="JSONL sink files or directories of them")
    parser.add_argument("-o", dest="output", required=True,
                        help="merged Chrome-trace JSON output path")
    parser.add_argument("--report", action="store_true",
                        help="print the request-correlation report")
    args = parser.parse_args(argv)

    trace = merge_traces(args.sinks)
    trace.save_chrome_trace(args.output)
    report = correlation_report(trace)
    print(
        f"{args.output}: {len(trace)} events from "
        f"{len(iter_trace_files(args.sinks))} sinks; "
        f"{report['request_ids']} request ids "
        f"({report['client_spans']} client, {report['server_spans']} server, "
        f"{report['worker_spans']} worker)"
    )
    if args.report:
        print(json.dumps(report, indent=2))
    return 0 if (report["ok"] or report["request_ids"] == 0) else 1
