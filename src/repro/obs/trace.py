"""A lightweight span/counter/event log with Chrome-trace export.

Events are stored as plain dicts already shaped like Chrome trace-event
objects (``name``/``cat``/``ph``/``ts``/``pid``/``tid``/``args``), so
persistence is trivial in both directions:

* :meth:`TraceLog.to_jsonl` / :meth:`TraceLog.from_jsonl` — one JSON
  object per line, lossless round-trip, greppable;
* :meth:`TraceLog.to_chrome_trace` — the ``{"traceEvents": [...]}``
  object that ``chrome://tracing`` and https://ui.perfetto.dev load
  directly.

Timestamps are wall-clock microseconds, but *measured* with the
monotonic ``time.perf_counter()`` anchored once, per process, to a
``time.time()`` epoch: a clock step (NTP slew, VM suspend, a test
freezing ``time.time``) can therefore never produce a negative or
garbled span duration, while spans recorded in different worker
processes still merge onto one coherent wall-clock timeline.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from pathlib import Path

#: Phase codes used from this module (a subset of the trace-event spec).
PH_COMPLETE = "X"  # span with a duration
PH_INSTANT = "i"  # point event
PH_COUNTER = "C"  # counter sample

#: Per-process clock anchor: one wall-clock reading paired with one
#: monotonic reading.  Every timestamp after this is the anchor plus a
#: perf_counter delta, so durations are monotone within a process and
#: timelines from different processes agree to within the (one-shot)
#: anchor skew.
_EPOCH_WALL_US = time.time() * 1e6
_EPOCH_PERF = time.perf_counter()


def _now_us() -> float:
    return _EPOCH_WALL_US + (time.perf_counter() - _EPOCH_PERF) * 1e6


class TraceLog:
    """An append-only event log shared by one link / experiment run.

    With a ``sink`` path attached, the log doubles as a durable JSONL
    stream: :meth:`flush` appends every event recorded since the last
    flush, and :meth:`close` (or using the log as a context manager)
    performs a final flush — so a long-lived process that drains on
    SIGTERM, like the toolchain daemon, never drops trailing spans.
    Without a sink, ``flush``/``close`` are no-ops and the log behaves
    exactly as before.
    """

    def __init__(self, events: list[dict] | None = None, *, sink=None):
        self.events: list[dict] = events if events is not None else []
        self.sink = Path(sink) if sink is not None else None
        self._flushed = 0
        self.closed = False
        self._ctx = threading.local()

    def __len__(self) -> int:
        return len(self.events)

    def __enter__(self) -> TraceLog:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def unflushed(self) -> int:
        """Events recorded since the last :meth:`flush`."""
        return len(self.events) - self._flushed

    def flush(self) -> int:
        """Append unflushed events to the sink; returns how many."""
        if self.sink is None:
            return 0
        pending = self.events[self._flushed :]
        if not pending:
            return 0
        with self.sink.open("a", encoding="utf-8") as handle:
            for event in pending:
                handle.write(
                    json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
                )
        self._flushed += len(pending)
        return len(pending)

    def close(self) -> None:
        """Flush any buffered events and mark the log closed (idempotent)."""
        if self.closed:
            return
        self.flush()
        self.closed = True

    # -- recording -------------------------------------------------------

    @contextmanager
    def context(self, **fields):
        """Default ``args`` merged into every event recorded inside.

        The serving path wraps each job in ``context(request_id=...)``
        so every span, provenance event, and cache event the job emits
        — however deep in the toolchain — carries the request id that
        caused it, without threading the id through every call site.
        Contexts nest (inner wins on key collisions) and are
        thread-local, so concurrent recorders cannot leak ids into each
        other's events.
        """
        stack = getattr(self._ctx, "stack", None)
        if stack is None:
            stack = self._ctx.stack = []
        stack.append(fields)
        try:
            yield self
        finally:
            stack.pop()

    def _context_args(self) -> dict:
        stack = getattr(self._ctx, "stack", None)
        if not stack:
            return {}
        merged: dict = {}
        for fields in stack:
            merged.update(fields)
        return merged

    def _args(self, args: dict) -> dict | None:
        merged = self._context_args()
        merged.update(args)
        return merged or None

    def _base(self, name: str, cat: str, ph: str, *, pid=None, tid=None) -> dict:
        return {
            "name": name,
            "cat": cat,
            "ph": ph,
            "ts": _now_us(),
            "pid": os.getpid() if pid is None else pid,
            "tid": threading.get_ident() & 0xFFFF if tid is None else tid,
        }

    @contextmanager
    def span(self, name: str, *, cat: str = "span", **args):
        """Record a complete ("X") event covering the ``with`` body."""
        record = self._base(name, cat, PH_COMPLETE)
        start = _now_us()
        record["ts"] = start
        try:
            yield record
        finally:
            record["dur"] = _now_us() - start
            merged = self._args(dict(args))
            if merged:
                record["args"] = merged
            self.events.append(record)

    def add_span(
        self,
        name: str,
        start_us: float,
        end_us: float,
        *,
        cat: str = "span",
        pid=None,
        tid=None,
        **args,
    ) -> dict:
        """Record a complete event from externally measured timestamps
        (e.g. a pipeline task that ran in a worker process)."""
        record = self._base(name, cat, PH_COMPLETE, pid=pid, tid=tid)
        record["ts"] = start_us
        record["dur"] = max(end_us - start_us, 0.0)
        merged = self._args(dict(args))
        if merged:
            record["args"] = merged
        self.events.append(record)
        return record

    def event(self, name: str, *, cat: str = "event", **args) -> dict:
        """Record an instant event; ``args`` become its payload."""
        record = self._base(name, cat, PH_INSTANT)
        record["s"] = "p"  # process-scoped instant
        merged = self._args(dict(args))
        if merged:
            record["args"] = merged
        self.events.append(record)
        return record

    def counter(self, name: str, *, cat: str = "counter", **values) -> dict:
        """Record a counter sample (rendered as a track by Perfetto)."""
        record = self._base(name, cat, PH_COUNTER)
        record["args"] = self._args(dict(values)) or {}
        self.events.append(record)
        return record

    # -- querying --------------------------------------------------------

    def select(self, *, cat: str | None = None, name: str | None = None) -> list[dict]:
        """Events filtered by exact category and/or name."""
        out = self.events
        if cat is not None:
            out = [e for e in out if e.get("cat") == cat]
        if name is not None:
            out = [e for e in out if e.get("name") == name]
        return list(out)

    # -- persistence -----------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in self.events
        )

    @classmethod
    def from_jsonl(cls, text: str) -> TraceLog:
        return cls([json.loads(line) for line in text.splitlines() if line.strip()])

    def save_jsonl(self, path) -> None:
        Path(path).write_text(self.to_jsonl())

    @classmethod
    def load_jsonl(cls, path) -> TraceLog:
        return cls.from_jsonl(Path(path).read_text())

    def to_chrome_trace(self) -> dict:
        """The object ``chrome://tracing`` / Perfetto load directly."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def save_chrome_trace(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_chrome_trace(), indent=1))


def now_us() -> float:
    """The trace clock: wall-anchored monotonic microseconds.

    External span recorders (:meth:`TraceLog.add_span` callers) should
    measure with this so their timestamps land on the same timeline —
    and with the same monotonicity guarantee — as context-manager spans.
    """
    return _now_us()


def span_or_null(trace: TraceLog | None, name: str, *, cat: str = "span", **args):
    """A span on ``trace``, or a no-op context when tracing is off."""
    if trace is None:
        return nullcontext()
    return trace.span(name, cat=cat, **args)
