"""The toolchain daemon: an asyncio server over a process worker pool.

One event loop owns all I/O and all bookkeeping; CPU-bound toolchain
work (compile, link, simulate) runs on a ``ProcessPoolExecutor``.  A
request travels:

1. **canonicalize** — the payload is reduced to its content fields
   (``program`` names resolve to exact source texts here, on the
   server, so the key covers what will actually be built);
2. **coalesce** — a :class:`repro.cache.SingleFlight` keyed on the
   content digest merges identical in-flight requests: followers await
   the leader's flight future instead of spawning duplicate work;
3. **cache probe** — the leader consults the content-addressed disk
   cache (:class:`repro.cache.ArtifactCache`, kind ``serve``); a hit
   answers without touching the pool;
4. **admission** — a bounded count of in-pool jobs enforces
   backpressure: at the limit the server answers ``retry_after``
   instead of queueing unboundedly, and every follower of that flight
   receives the same hint;
5. **execute + publish** — the job runs in a worker, the result is
   written back to the cache, and all coalesced waiters complete.

``status`` is answered inline with queue depth, counter totals that
satisfy ``completed == coalesced + cache_hits + computed``, and per-op
latency histograms.  Draining (SIGTERM or a ``shutdown`` request)
closes the listener, lets in-flight dispatches finish, shuts the pool
down, and flushes the trace sink — no accepted request is dropped and
no trailing span is lost.
"""

from __future__ import annotations

import asyncio
import functools
import json
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.cache import ArtifactCache, SingleFlight, compute_toolchain_stamp
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceLog, now_us
from repro.serve import protocol, workers

#: Cache kind for serving-path job results.
CACHE_KIND = "serve"

#: Payload fields that participate in the content key, per op family.
_CONTENT_FIELDS = (
    "sources", "mode", "lang", "variant", "optimize", "schedule", "timed",
    "max_instructions", "backend",
)


@dataclass
class ServeConfig:
    """Daemon knobs; defaults suit a local build-farm node."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is announced/returned
    workers: int = 2  # process-pool size
    queue_limit: int = 16  # admitted-but-unfinished job ceiling
    retry_after: float = 0.05  # backpressure hint, seconds
    max_frame: int = protocol.MAX_FRAME
    run_budget: int = 200_000_000  # ceiling on per-run instruction budgets
    trace_flush_every: int = 64  # flush the trace sink every N events
    trace_dir: str | None = None  # per-pid worker JSONL sinks land here


class BusyError(Exception):
    """Admission refused: the job queue is full."""

    def __init__(self, retry_after: float):
        super().__init__(f"queue full; retry after {retry_after}s")
        self.retry_after = retry_after


class JobFailed(Exception):
    """The job ran and failed; carries the client-facing error."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


#: Serving-path counter names and help text; the identity the load
#: generator reconciles is ``completed == coalesced + cache_hits +
#: computed``.
_COUNTER_HELP = {
    "requests": "every decoded request, admin included",
    "completed": "job requests answered ok",
    "failed": "job requests answered with an error",
    "rejected": "job requests answered retry-after",
    "coalesced": "completions served by joining another flight",
    "cache_hits": "completions served from the disk cache",
    "computed": "completions that ran in the worker pool",
    "cache_misses": "leader probes that missed the disk cache",
    "admitted": "jobs submitted to the worker pool",
    "bad_requests": "undecodable ops / malformed payloads",
}


class _Counters:
    """Serving-path totals, registered in the shared metrics registry.

    The registry counters *are* the source of truth: the ``status``
    payload, the Prometheus/JSON exposition, and the load generator's
    reconciliation all read the same objects, so the counter identity
    cannot drift between export paths.  Reads keep the historical
    attribute style (``counters.completed``); writes go through
    :meth:`inc`.
    """

    def __init__(self, registry: MetricsRegistry):
        self._counters = {
            name: registry.counter(f"serve_{name}_total", help)
            for name, help in _COUNTER_HELP.items()
        }

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name].inc(amount)

    def __getattr__(self, name: str) -> int:
        try:
            return self._counters[name].value
        except KeyError:
            raise AttributeError(name) from None

    def to_dict(self) -> dict:
        return {name: c.value for name, c in self._counters.items()}


class ToolchainServer:
    """One daemon instance: listener, flights, pool, counters."""

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        config: ServeConfig | None = None,
        *,
        trace: TraceLog | None = None,
        executor=None,
        job_runner=None,
    ):
        self.cache = cache
        self.config = config or ServeConfig()
        self.trace = trace
        # The daemon's toolchain stamp is fixed at construction — from
        # the cache (whose keys it must match) or computed fresh, never
        # the process-lifetime memoized ``toolchain_stamp()``.  It is
        # threaded to every pool worker and reported by ``status`` so
        # an operator can tell which toolchain version a long-lived
        # daemon is actually serving.
        self.stamp = (
            cache.stamp if cache is not None else compute_toolchain_stamp()
        )
        self.flights = SingleFlight()
        self.metrics = MetricsRegistry()
        self.counters = _Counters(self.metrics)
        self.latency = {
            op: self.metrics.histogram(
                "serve_request_seconds",
                "request latency by op, log-bucketed",
                op=op,
            )
            for op in protocol.JOB_OPS
        }
        self.stop_event = asyncio.Event()
        self.draining = False
        self._active_jobs = 0  # admitted, still in the pool
        self._pending = 0  # dispatches started, response not yet built
        self._idle = asyncio.Event()
        self._idle.set()
        self._executor = executor
        self._own_executor = executor is None
        self._job_runner = job_runner or workers.execute_job
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._started = time.monotonic()
        self._minted_ids = 0  # request_ids minted for clients that sent none
        self._register_gauges()

    def _register_gauges(self) -> None:
        """Sampled gauges: live server state read at collection time."""
        gauge = self.metrics.gauge
        gauge("serve_queue_depth", "jobs admitted but waiting for a worker",
              fn=self.queue_depth)
        gauge("serve_active_jobs", "jobs admitted, still in the pool",
              fn=lambda: self._active_jobs)
        gauge("serve_uptime_seconds", "seconds since server construction",
              fn=lambda: time.monotonic() - self._started)
        gauge("serve_draining", "1 while the server refuses new work",
              fn=lambda: int(self.draining))
        gauge("serve_flights_started", "single-flight leaders opened",
              fn=lambda: self.flights.started)
        gauge("serve_flights_coalesced", "callers that joined a flight",
              fn=lambda: self.flights.coalesced)
        if self.cache is not None:
            stats = self.cache.stats
            gauge("serve_cache_disk_hits", "event-loop disk-cache hits",
                  fn=lambda: stats.total_hits)
            gauge("serve_cache_disk_misses", "event-loop disk-cache misses",
                  fn=lambda: stats.total_misses)
            gauge("serve_cache_disk_errors",
                  "disk-cache reads failed for non-ENOENT reasons",
                  fn=lambda: stats.total_errors)
            gauge("serve_cache_disk_quarantines",
                  "torn/corrupt entries quarantined on read",
                  fn=lambda: stats.total_quarantines)

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listener and spin up the pool: (host, port)."""
        if self._executor is None:
            # Spawned, not forked: pool workers are created lazily, after
            # the listener binds, and a forked worker would inherit the
            # listening socket — a SIGKILL'd daemon would then leave an
            # orphan holding its port open (connects succeed, nothing
            # answers), which is exactly the hang a fleet router must
            # never see from a dead backend.
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=workers.initialize_worker,
                initargs=(
                    str(self.cache.root) if self.cache is not None else None,
                    self.stamp,
                    self.config.trace_dir,
                ),
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        if self.trace is not None:
            self.trace.event(
                "serve.start", cat="serve", host=host, port=port,
                workers=self.config.workers, queue_limit=self.config.queue_limit,
            )
        return host, port

    async def drain(self) -> None:
        """Graceful stop: refuse new work, finish in-flight, flush."""
        if self.draining:
            await self._idle.wait()
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        if self._own_executor and self._executor is not None:
            pool = self._executor
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: pool.shutdown(wait=True)
            )
        for writer in list(self._writers):
            writer.close()
        if self.trace is not None:
            self.trace.event(
                "serve.drained", cat="serve", **self.counters.to_dict()
            )
            self.trace.close()

    # -- per-connection loop ----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    message = await protocol.read_frame(
                        reader, max_frame=self.config.max_frame
                    )
                except protocol.FrameTooLarge as exc:
                    # The refused body was never buffered, but the stream
                    # position is now meaningless: answer and hang up.
                    self.counters.inc("bad_requests")
                    await protocol.write_frame(
                        writer,
                        protocol.error_response(None, "frame-too-large", str(exc)),
                    )
                    break
                except protocol.ProtocolError:
                    self.counters.inc("bad_requests")
                    break  # undecodable stream; nothing sane to answer
                if message is None:
                    break
                response = await self._dispatch(message)
                await protocol.write_frame(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; its flights keep running for others
        finally:
            self._writers.discard(writer)
            writer.close()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, message: dict) -> dict:
        self.counters.inc("requests")
        rid = message.get("id")
        op = message.get("op")
        if op == "status":
            return protocol.ok_response(rid, self.status())
        if op == "metrics":
            return protocol.ok_response(rid, self.metrics_payload())
        if op == "shutdown":
            self.stop_event.set()
            return protocol.ok_response(rid, {"draining": True})
        if op not in protocol.JOB_OPS:
            self.counters.inc("bad_requests")
            return protocol.error_response(rid, "bad-request", f"unknown op {op!r}")
        if self.draining:
            return protocol.error_response(rid, "draining", "server is draining")

        # Accounting identity only — never part of the content key, so
        # tenants share cache entries and flights.
        tenant = str(message.get("tenant") or "anon")

        # The correlation id the client minted; requests without one
        # still get server-side correlation under a server-minted id.
        request_id = message.get("request_id")
        if not isinstance(request_id, str) or not request_id:
            self._minted_ids += 1
            request_id = f"srv:{os.getpid()}:{self._minted_ids}"

        canon_start = now_us()
        try:
            payload = self._canonical_payload(op, message)
        except ValueError as exc:
            self.counters.inc("bad_requests")
            return protocol.error_response(rid, "bad-request", str(exc))
        finally:
            self._stage_span("canonicalize", canon_start, request_id, op=op)

        self._pending += 1
        self._idle.clear()
        started = time.monotonic()
        started_us = now_us()
        try:
            result, cached, coalesced = await self._job(op, payload, request_id)
        except BusyError as exc:
            self.counters.inc("rejected")
            self._tenant_inc("rejected", tenant)
            return protocol.busy_response(rid, exc.retry_after)
        except JobFailed as exc:
            self.counters.inc("failed")
            self._tenant_inc("failed", tenant)
            return protocol.error_response(rid, exc.kind, str(exc))
        finally:
            self._pending -= 1
            duration = time.monotonic() - started
            self._record_span(op, started_us, duration, request_id)
            if not self._pending:
                self._idle.set()
        self.latency[op].observe(duration)
        self.counters.inc("completed")
        self._tenant_inc("completed", tenant)
        if coalesced:
            self.counters.inc("coalesced")
        elif cached:
            self.counters.inc("cache_hits")
        else:
            self.counters.inc("computed")
        return protocol.ok_response(rid, result, cached=cached, coalesced=coalesced)

    def _stage_span(self, stage: str, start_us: float, request_id: str, **args):
        """One pipeline-stage span (externally timed: the event loop
        interleaves requests, so context-manager spans would nest
        across unrelated requests)."""
        if self.trace is None:
            return
        self.trace.add_span(
            f"serve.{stage}",
            start_us,
            now_us(),
            cat="serve-stage",
            request_id=request_id,
            **args,
        )

    def _record_span(
        self, op: str, started_us: float, duration: float, request_id: str
    ) -> None:
        if self.trace is None:
            return
        self.trace.add_span(
            f"serve.{op}",
            started_us,
            started_us + duration * 1e6,
            cat="serve",
            request_id=request_id,
            queue_depth=self.queue_depth(),
        )
        if self.trace.unflushed >= self.config.trace_flush_every:
            self.trace.flush()

    def _canonical_payload(self, op: str, message: dict) -> dict:
        """The content fields of a request, with programs resolved.

        Name-based requests (``program``/``scale``) expand to the exact
        source texts *before* keying, so editing a benchmark source is
        a cache miss — same discipline as the experiments cache.
        """
        payload = {
            key: message[key] for key in _CONTENT_FIELDS if key in message
        }
        if "program" in message:
            if "sources" in message:
                raise ValueError("request names both 'program' and 'sources'")
            payload["sources"] = _program_sources(
                message["program"], message.get("scale")
            )
        sources = payload.get("sources")
        if (
            not isinstance(sources, list)
            or not sources
            or not all(
                isinstance(pair, (list, tuple))
                and len(pair) == 2
                and all(isinstance(part, str) for part in pair)
                for pair in sources
            )
        ):
            raise ValueError("payload needs 'sources' [[name, text], ...] "
                             "or a 'program' name")
        payload["sources"] = [list(pair) for pair in sources]
        if op == "run":
            budget = int(payload.get("max_instructions")
                         or workers.DEFAULT_RUN_BUDGET)
            payload["max_instructions"] = min(budget, self.config.run_budget)
        return payload

    # -- the job path ------------------------------------------------------

    def _key(self, op: str, payload: dict) -> str:
        content = {"artifact": CACHE_KIND, "op": op, **payload}
        if self.cache is not None:
            return self.cache.key(content)
        # No disk cache: still coalesce, keyed on the canonical JSON.
        return json.dumps(content, sort_keys=True, separators=(",", ":"))

    async def _job(self, op: str, payload: dict, request_id: str):
        """Resolve one job: returns ``(result, cached, coalesced)``."""
        key = self._key(op, payload)
        leader, flight = self.flights.begin(key)
        if not leader:
            # The follower's span covers the wait; the worker-side span
            # for the shared computation carries the *leader's* id —
            # that is the correct attribution, not a gap.
            wait_start = now_us()
            try:
                outcome = await asyncio.wrap_future(flight)
            finally:
                self._stage_span("coalesce", wait_start, request_id, op=op)
            return self._follow(outcome)
        try:
            result, cached = await self._compute(op, payload, key, request_id)
        except BusyError as exc:
            self.flights.finish(key, flight, ("busy", exc.retry_after))
            raise
        except JobFailed as exc:
            self.flights.finish(key, flight, ("failed", exc.kind, str(exc)))
            raise
        except BaseException:
            self.flights.fail(key, flight, JobFailed("internal", "leader crashed"))
            raise
        self.flights.finish(key, flight, ("ok", result))
        return result, cached, False

    @staticmethod
    def _follow(outcome):
        tag = outcome[0]
        if tag == "ok":
            return outcome[1], False, True
        if tag == "busy":
            raise BusyError(outcome[1])
        raise JobFailed(outcome[1], outcome[2])

    async def _compute(self, op: str, payload: dict, key: str, request_id: str):
        """Leader path: disk cache, then admission, then the pool."""
        loop = asyncio.get_running_loop()
        if self.cache is not None:
            probe_start = now_us()
            data = await loop.run_in_executor(
                None, self.cache.get, CACHE_KIND, key
            )
            self._stage_span(
                "cache_probe", probe_start, request_id,
                op=op, hit=data is not None,
            )
            if data is not None:
                return json.loads(data), True
        self.counters.inc("cache_misses")

        if self._active_jobs >= self.config.queue_limit:
            raise BusyError(self.config.retry_after)
        admit_start = now_us()
        self._active_jobs += 1
        self.counters.inc("admitted")
        self._stage_span(
            "admit", admit_start, request_id,
            op=op, active_jobs=self._active_jobs,
        )
        exec_start = now_us()
        try:
            outcome = await loop.run_in_executor(
                self._executor,
                self._job_runner,
                op,
                payload,
                {"request_id": request_id},
            )
        finally:
            self._active_jobs -= 1
            self._stage_span("execute", exec_start, request_id, op=op)
        if not outcome.get("ok"):
            error = outcome.get("error") or {}
            raise JobFailed(
                error.get("kind", "internal"), error.get("message", "job failed")
            )
        result = outcome["result"]
        if self.cache is not None:
            data = json.dumps(result, sort_keys=True).encode()
            await loop.run_in_executor(
                None, self.cache.put, CACHE_KIND, key, data
            )
        return result, False

    # -- per-tenant accounting ----------------------------------------------

    def _tenant_inc(self, kind: str, tenant: str) -> None:
        """One labeled per-tenant series per outcome kind.  Lazily
        registered (tenants are discovered from traffic); registration
        is idempotent on ``(name, labels)`` so this is one dict probe
        per request after the first."""
        self.metrics.counter(
            f"serve_tenant_{kind}_total",
            f"per-tenant job requests {kind}",
            tenant=tenant,
        ).inc()

    def tenants(self) -> dict:
        """``{tenant: {kind: value}}`` — what the fleet router sums."""
        out: dict[str, dict[str, int]] = {}
        prefix, suffix = "serve_tenant_", "_total"
        for metric in self.metrics:
            name = metric.name
            if not (name.startswith(prefix) and name.endswith(suffix)):
                continue
            kind = name[len(prefix):-len(suffix)]
            tenant = metric.labels.get("tenant", "?")
            out.setdefault(tenant, {})[kind] = metric.value
        return out

    # -- introspection -----------------------------------------------------

    def queue_depth(self) -> int:
        """Jobs admitted but waiting for a free worker."""
        return max(0, self._active_jobs - self.config.workers)

    def status(self) -> dict:
        return {
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self._started,
            "stamp": self.stamp,
            "draining": self.draining,
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
            "active_jobs": self._active_jobs,
            "queue_depth": self.queue_depth(),
            "counters": self.counters.to_dict(),
            "tenants": self.tenants(),
            "flights": {
                "started": self.flights.started,
                "coalesced": self.flights.coalesced,
            },
            "latency": {
                op: hist.summary() for op, hist in self.latency.items()
            },
            "cache": (
                {"stamp": self.stamp, **self.cache.stats.to_dict()}
                if self.cache is not None
                else None
            ),
        }

    def metrics_payload(self) -> dict:
        """The ``metrics`` op: both exposition formats of one snapshot."""
        return {
            "json": self.metrics.to_dict(),
            "text": self.metrics.to_prometheus(),
        }


def _program_sources(name: str, scale) -> list[list[str]]:
    try:
        return [[fname, text] for fname, text in _cached_sources(name, scale)]
    except (ValueError, OSError) as exc:
        raise ValueError(str(exc)) from None


@functools.lru_cache(maxsize=256)
def _cached_sources(name: str, scale) -> tuple[tuple[str, str], ...]:
    from repro.benchsuite.suite import scaled_sources

    return tuple((fname, text) for fname, text in scaled_sources(name, scale))


# -- daemon entry ---------------------------------------------------------------


async def serve_main(
    config: ServeConfig,
    cache: ArtifactCache | None,
    trace: TraceLog | None = None,
    *,
    announce=print,
) -> int:
    """Run a daemon until SIGTERM/SIGINT or a ``shutdown`` request,
    then drain.  Announces ``serving on <host>:<port>`` so wrappers
    (and humans) can discover an ephemeral port."""
    import signal

    server = ToolchainServer(cache, config, trace=trace)
    host, port = await server.start()
    announce(f"serving on {host}:{port}")

    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.stop_event.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support

    await server.stop_event.wait()
    announce("draining...")
    await server.drain()
    counters = server.counters
    announce(
        f"drained: {counters.completed} completed, "
        f"{counters.coalesced} coalesced, {counters.cache_hits} cache hits, "
        f"{counters.rejected} rejected, {counters.failed} failed"
    )
    return 0


class ServerThread:
    """A daemon embedded in the current process on a dedicated thread.

    The load generator's default mode and the serving-path tests use
    this to get a real TCP server — real framing, real coalescing,
    real worker pool — without managing a subprocess.  ``start()``
    blocks until the listener is bound and returns ``(host, port)``;
    ``stop()`` requests a drain and joins the thread.  Also usable as a
    context manager.
    """

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        config: ServeConfig | None = None,
        *,
        trace: TraceLog | None = None,
        executor=None,
        job_runner=None,
    ):
        self._kwargs = dict(
            cache=cache, config=config, trace=trace,
            executor=executor, job_runner=job_runner,
        )
        self.server: ToolchainServer | None = None
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )

    def start(self) -> tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread did not come up")
        if self._failure is not None:
            raise RuntimeError("server thread failed") from self._failure
        assert self.address is not None
        return self.address

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)

    def __enter__(self) -> ServerThread:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface start() failures to the caller
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        kwargs = self._kwargs
        self.server = ToolchainServer(
            kwargs["cache"], kwargs["config"], trace=kwargs["trace"],
            executor=kwargs["executor"], job_runner=kwargs["job_runner"],
        )
        self._loop = asyncio.get_running_loop()
        self.address = await self.server.start()
        self._ready.set()
        await self.server.stop_event.wait()
        await self.server.drain()
