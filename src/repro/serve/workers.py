"""Job bodies for the daemon's worker pool.

Every job is a pure function of its (already canonicalized) payload:
the server resolves ``program`` names to source texts *before* keying
and submission, so by the time a payload reaches a worker it contains
the exact sources, mode, variant, and budget — nothing environmental.
That is what makes the job result safe to content-address and share
between identical requests.

Jobs never raise across the process boundary.  :func:`execute_job`
returns ``{"ok": True, "result": ...}`` or ``{"ok": False, "error":
{"kind", "message"}}`` — toolchain failures (MiniC compile errors, a
run overrunning its instruction budget) are *data*, reported to the
client with a kind it can dispatch on, while only genuinely unexpected
exceptions surface as ``kind="internal"`` with a traceback.

Per-process warm state is limited to the standard-library archive
(memoized by :func:`repro.benchsuite.suite.build_stdlib`); each job
links against a private copy so an in-place-mutating linker can never
corrupt another job's inputs — the same cache-boundary discipline as
``repro.experiments.build.copies_for``.
"""

from __future__ import annotations

import os
import time
import traceback
from pathlib import Path

from repro.benchsuite.suite import build_stdlib
from repro.frontend import LANGUAGES, compile_sources
from repro.linker import link, make_crt0
from repro.machine import BACKENDS, ExecutionBudgetExceeded, run
from repro.minicc import Options
from repro.objfile.archive import Archive
from repro.objfile.sections import SectionKind
from repro.objfile.serialize import dump_archive, load_archive
from repro.obs import provenance
from repro.obs.trace import TraceLog, span_or_null
from repro.om import OMLevel, OMOptions, om_link

#: Link variants a request may name; ``ld`` is the standard linker.
VARIANTS: dict[str, tuple[OMLevel, OMOptions] | None] = {
    "ld": None,
    "om-none": (OMLevel.NONE, OMOptions()),
    "om-simple": (OMLevel.SIMPLE, OMOptions()),
    "om-full": (OMLevel.FULL, OMOptions()),
    "om-full-sched": (OMLevel.FULL, OMOptions(schedule=True)),
    "om-full-gc": (OMLevel.FULL, OMOptions(remove_dead_procs=True)),
    "om-full-wpo": (OMLevel.FULL, OMOptions(partitions=4)),
}

#: Default simulator budget for ``run`` jobs; the server clamps
#: client-requested budgets to its configured ceiling.
DEFAULT_RUN_BUDGET = 50_000_000

#: Per-process shard cache for the partitioned link variant, installed
#: by :func:`initialize_worker`.  None (the default, and the state in
#: any pool without the initializer) simply runs shards inline.
_WPO_CACHE = None

#: Per-process trace sink (``<trace_dir>/worker-<pid>.jsonl``),
#: installed by :func:`initialize_worker`.  Every job wraps itself in
#: ``_TRACE.context(request_id=...)`` so worker-side spans, WPO shard
#: spans, and cache hit/miss/quarantine events all carry the request id
#: that caused them — the raw material :mod:`repro.obs.merge` stitches
#: into one cross-process timeline.
_TRACE = None


def _watch_parent(parent_pid: int) -> None:
    """Exit when the daemon that owns this pool dies uncleanly.

    A SIGKILL'd (or OOM-killed) daemon gets no chance to shut its
    executor down, so its spawned workers would be reparented to init
    and block on the call pipe forever — and a fleet that auto-restarts
    the daemon would leak one worker set per kill.  A daemon thread
    polling the parent pid turns that into a prompt, silent exit;
    graceful drains still reap workers through ``Executor.shutdown``
    before this ever fires.
    """
    import threading

    def watch() -> None:
        while os.getppid() == parent_pid:
            time.sleep(1.0)
        os._exit(0)

    threading.Thread(target=watch, name="parent-watch", daemon=True).start()


def initialize_worker(
    cache_root: str | None, stamp: str | None, trace_dir: str | None = None
) -> None:
    """Pool initializer: install this process's cache and trace sink.

    The daemon computes the toolchain stamp *once at its own startup*
    (:func:`repro.cache.compute_toolchain_stamp`) and threads the value
    here, so every worker of a long-lived pool keys shard artifacts
    under the stamp of the code the daemon actually serves — never the
    stale memoized stamp of whatever was on disk when some worker
    process first imported the package.

    With a ``trace_dir``, the worker opens a durable per-pid JSONL sink
    and attaches it to the shard cache, so cache events are traced too;
    :func:`execute_job` flushes it after every job (pool workers have
    no drain hook, so per-job flushing is what makes the sink complete
    at merge time).
    """
    global _WPO_CACHE, _TRACE
    from repro.cache import ArtifactCache

    _watch_parent(os.getppid())
    _TRACE = None
    if trace_dir:
        path = Path(trace_dir)
        path.mkdir(parents=True, exist_ok=True)
        _TRACE = TraceLog(sink=path / f"worker-{os.getpid()}.jsonl")
    _WPO_CACHE = (
        ArtifactCache(cache_root, stamp=stamp, trace=_TRACE)
        if cache_root
        else None
    )


class JobError(Exception):
    """A job failure with a client-facing kind."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


def _options(payload: dict) -> Options:
    return Options(
        optimize=bool(payload.get("optimize", True)),
        schedule=bool(payload.get("schedule", True)),
    )


def _compile_objects(payload: dict):
    sources = [tuple(pair) for pair in payload["sources"]]
    if not sources:
        raise JobError("bad-request", "no sources in payload")
    options = _options(payload)
    mode = payload.get("mode", "each")
    if mode not in ("each", "all"):
        raise JobError("bad-request", f"unknown mode {mode!r}")
    # Frontend dispatch: per-source by extension (.mc/.dcf), or forced
    # by an explicit "lang" in the payload.  Part of the content key
    # either way, so identical requests still share cache entries.
    language = payload.get("lang") or None
    if language is not None and language not in LANGUAGES:
        raise JobError(
            "bad-request",
            f"unknown lang {language!r} (choose from {', '.join(LANGUAGES)})",
        )
    return compile_sources(list(sources), mode, options, language=language)


def _fresh_stdlib() -> Archive:
    lib = build_stdlib()
    return Archive(lib.name, load_archive(dump_archive(lib.members)))


def _link(payload: dict, objects, *, trace: TraceLog | None = None):
    """Link compiled objects per the payload's variant: (executable, om)."""
    variant = payload.get("variant", "om-full")
    if variant not in VARIANTS:
        raise JobError("bad-request", f"unknown link variant {variant!r}")
    objects = [make_crt0()] + objects
    libraries = [_fresh_stdlib()]
    spec = VARIANTS[variant]
    if spec is None:
        return link(objects, libraries), None
    level, options = spec
    result = om_link(
        objects,
        libraries,
        level=level,
        options=options,
        trace=trace,
        cache=_WPO_CACHE,
    )
    return result.executable, result


def _job_compile(payload: dict) -> dict:
    with span_or_null(_TRACE, "worker.stage.compile", cat="worker"):
        objects = _compile_objects(payload)
    return {
        "modules": [obj.name for obj in objects],
        "objects": len(objects),
        "text_bytes": sum(
            len(obj.section(SectionKind.TEXT).data) for obj in objects
        ),
    }


def _link_summary(executable, om) -> dict:
    summary = {
        "text_bytes": executable.text_size,
        "gat_bytes": executable.gat_size,
        "procs": len(executable.procs),
    }
    if om is not None:
        summary["addr_loads_before"] = om.stats.before.addr_loads
        summary["addr_loads_after"] = om.stats.after.addr_loads
        summary["gat_bytes_before"] = om.stats.gat_bytes_before
        summary["gat_bytes_after"] = om.stats.gat_bytes_after
    return summary


def _compile_and_link(payload: dict):
    """The shared compile+link front half, staged on the worker trace."""
    with span_or_null(_TRACE, "worker.stage.compile", cat="worker"):
        objects = _compile_objects(payload)
    with span_or_null(_TRACE, "worker.stage.link", cat="worker",
                      variant=payload.get("variant", "om-full")):
        return _link(payload, objects, trace=_TRACE)


def _job_link(payload: dict) -> dict:
    executable, om = _compile_and_link(payload)
    return _link_summary(executable, om)


def _job_run(payload: dict) -> dict:
    executable, om = _compile_and_link(payload)
    budget = int(payload.get("max_instructions") or DEFAULT_RUN_BUDGET)
    backend = payload.get("backend") or None
    if backend is not None and backend not in BACKENDS:
        raise JobError(
            "bad-request",
            f"unknown backend {backend!r} (choose from {', '.join(BACKENDS)})",
        )
    try:
        with span_or_null(_TRACE, "worker.stage.run", cat="worker"):
            outcome = run(
                executable,
                timed=bool(payload.get("timed", True)),
                max_instructions=budget,
                backend=backend,
            )
    except ExecutionBudgetExceeded as exc:
        raise JobError(
            "budget-exceeded",
            f"program did not halt within {exc.limit} instructions",
        ) from None
    result = _link_summary(executable, om)
    result.update(
        {
            "output": outcome.output,
            "instructions": outcome.instructions,
            "cycles": outcome.cycles,
            "halted": outcome.halted,
        }
    )
    return result


def _job_explain(payload: dict) -> dict:
    if payload.get("variant", "om-full") == "ld":
        raise JobError("bad-request", "explain requires an OM link variant")
    trace = TraceLog()
    executable, om = _link(payload, _compile_objects(payload), trace=trace)
    events = provenance.events(trace)
    actions: dict[str, int] = {}
    for event in events:
        action = event.get("action", "?")
        actions[action] = actions.get(action, 0) + 1
    mismatches = provenance.reconcile(trace, om.counters)
    result = _link_summary(executable, om)
    result.update(
        {
            "events": len(events),
            "actions": actions,
            "reconciled": not mismatches,
        }
    )
    return result


_JOBS = {
    "compile": _job_compile,
    "link": _job_link,
    "run": _job_run,
    "explain": _job_explain,
}


def execute_job(op: str, payload: dict, meta: dict | None = None) -> dict:
    """Run one job; failures are returned as data, never raised.

    ``meta`` carries non-content request context — the client-minted
    ``request_id``/``trace_id`` — which tags every trace event the job
    records but never participates in cache keys or job behavior.
    """
    job = _JOBS.get(op)
    if job is None:
        return {"ok": False, "error": {"kind": "bad-request",
                                       "message": f"unknown op {op!r}"}}
    try:
        if _TRACE is None:
            return {"ok": True, "result": job(payload)}
        with _TRACE.context(**(meta or {})):
            with _TRACE.span(f"worker.{op}", cat="worker"):
                outcome = {"ok": True, "result": job(payload)}
        return outcome
    except JobError as exc:
        return {"ok": False, "error": {"kind": exc.kind, "message": str(exc)}}
    except Exception as exc:  # toolchain bug or bad program: report, don't die
        return {
            "ok": False,
            "error": {
                "kind": "internal",
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=20),
            },
        }
    finally:
        if _TRACE is not None:
            _TRACE.flush()
