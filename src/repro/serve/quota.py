"""Tenant isolation for the serve fleet: quotas and fair queueing.

The router is the multi-tenant boundary: every job request carries a
``tenant`` string (default ``"anon"``), and this module decides what a
tenant may do *before* any daemon sees the request.

Two mechanisms compose:

* **Quota admission** (:class:`QuotaManager`) — a token bucket per
  tenant (sustained ``rate`` requests/second with ``burst`` capacity)
  plus an optional concurrent ``max_inflight`` ceiling.  A request
  over quota is answered ``retry_after`` with ``reason="quota"`` —
  the hint is the exact time until the bucket accrues a token, so a
  well-behaved client's backoff converges on the permitted rate.
  Rejections are *accounting events, never failures*: they are counted
  in their own series and excluded from error budgets.

* **Weighted fair queueing** (:class:`FairScheduler`) — once admitted,
  requests contend for the router's bounded forwarding concurrency.
  Tenants with queued work are served in start-time-fair virtual-time
  order (SFQ): each grant advances the tenant's virtual finish time by
  ``1/weight``, and the lowest finish time is granted next — a tenant
  with weight 3 gets three grants for every one a weight-1 tenant gets
  when both have backlog, and an idle tenant's unused share is
  redistributed instead of accumulating.

Both are plain-asyncio, single-loop objects owned by the router; the
clock is injectable so tests pin the arithmetic without sleeping.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class TenantPolicy:
    """What one tenant is entitled to.

    ``rate``/``burst`` bound the sustained request rate (None = no rate
    quota); ``max_inflight`` bounds concurrently admitted requests
    (None = unbounded); ``weight`` is the fair-queueing share.
    """

    weight: float = 1.0
    rate: float | None = None
    burst: float = 1.0
    max_inflight: int | None = None

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


def parse_policy(spec: str) -> tuple[str, TenantPolicy]:
    """Parse a ``--quota`` CLI spec: ``tenant:key=value,key=value``.

    Keys: ``rate`` (req/s), ``burst``, ``weight``, ``inflight``.
    Example: ``t2:rate=2,burst=4,weight=0.5``.
    """
    tenant, sep, body = spec.partition(":")
    if not tenant or not sep:
        raise ValueError(f"quota spec {spec!r} wants 'tenant:key=value,...'")
    kwargs: dict = {}
    keys = {"rate": "rate", "burst": "burst", "weight": "weight",
            "inflight": "max_inflight"}
    for item in body.split(","):
        key, eq, value = item.partition("=")
        if not eq or key not in keys:
            raise ValueError(
                f"quota spec {spec!r}: bad item {item!r} "
                f"(keys: {', '.join(keys)})"
            )
        kwargs[keys[key]] = int(value) if key == "inflight" else float(value)
    return tenant, TenantPolicy(**kwargs)


class _TenantState:
    __slots__ = ("tokens", "refilled_at", "inflight",
                 "admitted", "rejected_rate", "rejected_inflight")

    def __init__(self, burst: float, now: float):
        self.tokens = burst
        self.refilled_at = now
        self.inflight = 0
        self.admitted = 0
        self.rejected_rate = 0
        self.rejected_inflight = 0


class QuotaManager:
    """Per-tenant token buckets and in-flight ceilings.

    Single-loop discipline (the router owns it); no internal locking.
    """

    def __init__(
        self,
        policies: dict[str, TenantPolicy] | None = None,
        *,
        default: TenantPolicy | None = None,
        retry_after: float = 0.05,
        clock=time.monotonic,
    ):
        self._policies = dict(policies or {})
        self._default = default or TenantPolicy()
        self._retry_after = retry_after
        self._clock = clock
        self._states: dict[str, _TenantState] = {}

    def policy(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self._default)

    def weight(self, tenant: str) -> float:
        return self.policy(tenant).weight

    def _state(self, tenant: str) -> _TenantState:
        state = self._states.get(tenant)
        if state is None:
            state = _TenantState(self.policy(tenant).burst, self._clock())
            self._states[tenant] = state
        return state

    def try_admit(self, tenant: str) -> float | None:
        """Admit one request, or return a ``retry_after`` hint.

        ``None`` means admitted — the caller MUST :meth:`release` when
        the request completes.  A float is the seconds until retrying
        is worthwhile (exact for rate quotas, the configured default
        for in-flight ceilings, whose drain time is unknowable here).
        """
        policy = self.policy(tenant)
        state = self._state(tenant)
        if policy.rate is not None:
            now = self._clock()
            state.tokens = min(
                policy.burst,
                state.tokens + (now - state.refilled_at) * policy.rate,
            )
            state.refilled_at = now
        if (
            policy.max_inflight is not None
            and state.inflight >= policy.max_inflight
        ):
            state.rejected_inflight += 1
            return self._retry_after
        if policy.rate is not None:
            if state.tokens < 1.0:
                state.rejected_rate += 1
                return (1.0 - state.tokens) / policy.rate
            state.tokens -= 1.0
        state.inflight += 1
        state.admitted += 1
        return None

    def release(self, tenant: str) -> None:
        state = self._state(tenant)
        if state.inflight <= 0:
            raise RuntimeError(f"release without admit for tenant {tenant!r}")
        state.inflight -= 1

    def snapshot(self) -> dict:
        """Per-tenant accounting for the router's status payload."""
        out = {}
        for tenant, state in sorted(self._states.items()):
            policy = self.policy(tenant)
            out[tenant] = {
                "admitted": state.admitted,
                "rejected_rate": state.rejected_rate,
                "rejected_inflight": state.rejected_inflight,
                "inflight": state.inflight,
                "weight": policy.weight,
                "rate": policy.rate,
                "burst": policy.burst,
                "max_inflight": policy.max_inflight,
            }
        return out


class FairScheduler:
    """Start-time-fair queueing of admitted requests onto a bounded
    forwarding concurrency.

    ``await acquire(tenant)`` returns when a slot is granted;
    ``release()`` frees a slot and grants the backlogged tenant with
    the lowest virtual finish time.  Virtual time only advances with
    grants, so an idle system costs nothing and a newly busy tenant
    starts at the current virtual time (no banked credit).
    """

    def __init__(self, limit: int, weight_for=None):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self._limit = limit
        self._weight_for = weight_for or (lambda tenant: 1.0)
        self._inflight = 0
        self._queues: dict[str, deque] = {}
        self._finish: dict[str, float] = {}
        self._vtime = 0.0
        self.granted = 0
        self.queued = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    def backlog(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _advance(self, tenant: str) -> None:
        start = max(self._vtime, self._finish.get(tenant, 0.0))
        weight = max(self._weight_for(tenant), 1e-9)
        self._finish[tenant] = start + 1.0 / weight
        self._vtime = start
        self.granted += 1

    def _grant_next(self) -> None:
        while self._inflight < self._limit and self._queues:
            best = None
            best_key = None
            for tenant, queue in self._queues.items():
                # Skip abandoned waiters (acquire timed out / cancelled).
                while queue and queue[0].cancelled():
                    queue.popleft()
                if not queue:
                    continue
                key = max(self._vtime, self._finish.get(tenant, 0.0))
                if best_key is None or key < best_key:
                    best_key = key
                    best = tenant
            for tenant in [t for t, q in self._queues.items() if not q]:
                del self._queues[tenant]
            if best is None:
                return
            future = self._queues[best].popleft()
            if not self._queues[best]:
                del self._queues[best]
            self._inflight += 1
            self._advance(best)
            future.set_result(None)

    async def acquire(self, tenant: str) -> None:
        if self._inflight < self._limit and not self._queues:
            self._inflight += 1
            self._advance(tenant)
            return
        future = asyncio.get_running_loop().create_future()
        self._queues.setdefault(tenant, deque()).append(future)
        self.queued += 1
        # A free slot with queued peers still queues (fairness), so a
        # grant pass must run in case this waiter is next anyway.
        self._grant_next()
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # Granted and cancelled in the same tick (wait_for
                # timeout racing set_result): give the slot back.
                self.release()
            raise

    def release(self) -> None:
        if self._inflight <= 0:
            raise RuntimeError("release without acquire")
        self._inflight -= 1
        self._grant_next()
