"""Serving-path metrics: a log-bucketed latency histogram.

The daemon answers ``status`` with per-op latency distributions.  A
fixed set of geometrically spaced buckets (25% per step, ~0.1 ms up to
~20 s, plus an overflow bucket) keeps the accounting O(1) per request
and the ``status`` payload small, while still giving percentile
estimates with bounded relative error — the right trade for a counter
that is sampled while the server is under load.  Exact sample-level
percentiles (the load generator's report) are computed client-side
from recorded durations; :func:`percentile` is the shared helper.
"""

from __future__ import annotations

#: Bucket upper bounds in seconds: 0.1 ms growing by 1.25x per bucket,
#: 56 finite buckets (~21 s), then a catch-all overflow bucket.
_FIRST_BOUND = 1e-4
_GROWTH = 1.25
_BUCKETS = 56

BOUNDS = tuple(_FIRST_BOUND * _GROWTH**i for i in range(_BUCKETS))


class LatencyHistogram:
    """Latency counters with percentile estimation from the buckets."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (_BUCKETS + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        index = _BUCKETS  # overflow unless a bound catches it
        for i, bound in enumerate(BOUNDS):
            if seconds <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def quantile(self, q: float) -> float:
        """The q-quantile in seconds, estimated from the buckets.

        Returns the upper bound of the bucket holding the q-th sample
        (clamped to the observed max, so the estimate never exceeds a
        real latency); 0.0 when empty.
        """
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                bound = BOUNDS[i] if i < _BUCKETS else self.max
                return min(bound, self.max)
        return self.max

    def to_dict(self) -> dict:
        """The JSON shape embedded in a ``status`` response."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_ms": 1e3 * self.total / self.count,
            "min_ms": 1e3 * self.min,
            "max_ms": 1e3 * self.max,
            "p50_ms": 1e3 * self.quantile(0.50),
            "p95_ms": 1e3 * self.quantile(0.95),
            "p99_ms": 1e3 * self.quantile(0.99),
        }


def percentile(sorted_samples: list[float], q: float) -> float:
    """Exact nearest-rank percentile of pre-sorted samples."""
    if not sorted_samples:
        return 0.0
    rank = max(1, round(q * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]
