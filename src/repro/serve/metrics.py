"""Serving-path metrics, now backed by the shared registry module.

The log-bucketed latency histogram and the exact nearest-rank
percentile helper migrated to :mod:`repro.obs.metrics` when the
process-wide metrics registry landed; this module keeps the serving
path's historical names.  :class:`LatencyHistogram` is the standalone
(registry-free) histogram whose ``to_dict`` is the compact latency
shape embedded in a ``status`` response.
"""

from __future__ import annotations

from repro.obs.metrics import BOUNDS, Histogram, percentile

__all__ = ["BOUNDS", "LatencyHistogram", "percentile"]


class LatencyHistogram(Histogram):
    """Latency counters with percentile estimation from the buckets."""

    def __init__(self) -> None:
        import threading

        super().__init__(
            "latency_seconds", "", {}, threading.Lock(), bounds=BOUNDS
        )

    def to_dict(self) -> dict:
        """The JSON shape embedded in a ``status`` response."""
        return self.summary()
