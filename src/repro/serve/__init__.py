"""Link-as-a-service: the toolchain as a long-lived, concurrent daemon.

Every other entry point in this repository pays process startup and a
cold artifact cache per invocation.  Real link-time-optimization
deployments are services inside build farms, so this package keeps the
compile → link → OM → run loop warm behind a TCP protocol:

* :mod:`repro.serve.protocol` — length-prefixed JSON frames, with
  size ceilings and truncation detection on both ends;
* :mod:`repro.serve.server` — the asyncio daemon: single-flight
  request coalescing layered on the content-addressed cache, a
  bounded admission queue that answers ``retry-after`` under load, a
  ``ProcessPoolExecutor`` for the CPU-bound work, and graceful drain;
* :mod:`repro.serve.workers` — the pure job bodies the pool executes;
* :mod:`repro.serve.client` — connection-reusing client with
  per-request timeouts and capped exponential backoff;
* :mod:`repro.serve.loadgen` — the ``serve-bench`` workload replayer
  reporting cold/warm throughput and latency percentiles;
* :mod:`repro.serve.metrics` — the latency histogram behind the
  ``status`` response.

Start a daemon with ``python -m repro.toolchain serve``; benchmark it
with ``python -m repro.experiments serve-bench``.
"""

from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServerThread, ToolchainServer

__all__ = ["ServeClient", "ServeConfig", "ServerThread", "ToolchainServer"]
