"""Link-as-a-service: the toolchain as a long-lived, concurrent daemon.

Every other entry point in this repository pays process startup and a
cold artifact cache per invocation.  Real link-time-optimization
deployments are services inside build farms, so this package keeps the
compile → link → OM → run loop warm behind a TCP protocol:

* :mod:`repro.serve.protocol` — length-prefixed JSON frames, with
  size ceilings and truncation detection on both ends;
* :mod:`repro.serve.server` — the asyncio daemon: single-flight
  request coalescing layered on the content-addressed cache, a
  bounded admission queue that answers ``retry-after`` under load, a
  ``ProcessPoolExecutor`` for the CPU-bound work, and graceful drain;
* :mod:`repro.serve.workers` — the pure job bodies the pool executes;
* :mod:`repro.serve.client` — connection-reusing client with
  per-request timeouts and full-jitter capped exponential backoff;
* :mod:`repro.serve.loadgen` — the ``serve-bench`` workload replayer
  reporting cold/warm throughput and latency percentiles, plus the
  multi-tenant ``--soak`` mode with p99/error-budget gates;
* :mod:`repro.serve.metrics` — the latency histogram behind the
  ``status`` response.

One daemon scales out into a **fleet**:

* :mod:`repro.serve.router` — the consistent-hash front door: routes
  each request by its canonical content key so identical in-flight
  requests land on the same daemon (coalescing survives the
  scale-out), relays frames verbatim, and aggregates fleet-wide
  ``status``/``metrics``;
* :mod:`repro.serve.quota` — per-tenant token-bucket quotas and the
  start-time-fair weighted scheduler the router admits through;
* :mod:`repro.serve.fleet` — the supervisor: N daemon subprocesses
  sharing one cache root, health-checked with automatic restart (a
  restarted slot reclaims exactly its ring slice), ordered drain.

Start a daemon with ``python -m repro.toolchain serve``; a fleet with
``python -m repro.toolchain serve --fleet N``; benchmark either with
``python -m repro.experiments serve-bench`` (``--soak`` for the gated
endurance run).
"""

from repro.serve.client import ServeClient
from repro.serve.fleet import FleetConfig, FleetSupervisor, FleetThread
from repro.serve.quota import QuotaManager, TenantPolicy, parse_policy
from repro.serve.router import FleetRouter, HashRing, RouterConfig, RouterThread
from repro.serve.server import ServeConfig, ServerThread, ToolchainServer

__all__ = [
    "FleetConfig",
    "FleetRouter",
    "FleetSupervisor",
    "FleetThread",
    "HashRing",
    "QuotaManager",
    "RouterConfig",
    "RouterThread",
    "ServeClient",
    "ServeConfig",
    "ServerThread",
    "TenantPolicy",
    "ToolchainServer",
    "parse_policy",
]
