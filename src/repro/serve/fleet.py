"""The fleet supervisor: N toolchain daemons behind one router.

One process runs a single asyncio loop hosting the
:class:`~repro.serve.router.FleetRouter` and supervising N daemon
*subprocesses* (`python -m repro.toolchain serve`), each with its own
event loop and worker pool but all sharing **one on-disk cache root**
— the crash-consistent content-addressed :class:`~repro.cache.
ArtifactCache` is the fleet's serial truth: a result computed by any
daemon is a warm hit for every daemon, including one that just
restarted.

Supervision is deliberately simple and observable:

* each daemon owns a stable **slot** (``d0`` … ``dN-1``) whose ring
  points never change — a restarted daemon reclaims exactly the slice
  its predecessor served, so one death re-maps one slice, twice;
* a daemon is declared down either by the **health loop** (its process
  exited) or by the **router** (a forward failed mid-request, which is
  faster than any polling interval); both paths converge on the same
  restart task, which respawns the slot, waits for the ``serving on``
  announcement, and restores the slot on the ring;
* **drain** is ordered: the router stops admitting and finishes
  in-flight relays first, then every daemon is asked to drain (SIGTERM
  → its own graceful path), so no accepted request is dropped anywhere
  in the fleet.

With a trace directory configured, the router and every daemon write
JSONL sinks into it (``router.jsonl``, ``daemon-<slot>.jsonl``, plus
the daemons' per-pid worker sinks), so ``merge-trace`` over that one
directory reconstructs the full fleet timeline.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.trace import TraceLog
from repro.serve.quota import QuotaManager, TenantPolicy, parse_policy
from repro.serve.router import FleetRouter, RouterConfig


@dataclass
class FleetConfig:
    """Fleet shape and daemon knobs (router knobs ride separately in
    :class:`~repro.serve.router.RouterConfig`)."""

    size: int = 2  # daemon count
    workers: int = 2  # process-pool size per daemon
    queue_limit: int = 16
    retry_after: float = 0.05
    run_budget: int = 200_000_000
    cache_dir: str | None = ".repro-cache"  # shared root; None = no cache
    trace_dir: str | None = None
    daemon_host: str = "127.0.0.1"
    health_interval: float = 0.25  # process-liveness poll period
    restart_backoff: float = 0.2  # pause before respawning a dead slot
    startup_timeout: float = 30.0  # per-daemon announce deadline
    quotas: dict[str, TenantPolicy] = field(default_factory=dict)

    def __post_init__(self):
        if self.size < 1:
            raise ValueError(f"fleet size must be >= 1, got {self.size}")


class DaemonProcess:
    """One daemon subprocess: spawn, announce-parse, output pump."""

    def __init__(self, slot: str, config: FleetConfig):
        self.slot = slot
        self.config = config
        self.process: asyncio.subprocess.Process | None = None
        self.address: tuple[str, int] | None = None
        self._pump: asyncio.Task | None = None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        return self.process is not None and self.process.returncode is None

    def _argv(self) -> list[str]:
        config = self.config
        argv = [
            sys.executable, "-m", "repro.toolchain", "serve",
            "--host", config.daemon_host,
            "--port", "0",
            "--workers", str(config.workers),
            "--queue-limit", str(config.queue_limit),
            "--retry-after", str(config.retry_after),
            "--run-budget", str(config.run_budget),
        ]
        if config.cache_dir is None:
            argv.append("--no-cache")
        else:
            argv += ["--cache-dir", config.cache_dir]
        if config.trace_dir is not None:
            trace_dir = Path(config.trace_dir)
            argv += [
                "--trace", str(trace_dir / f"daemon-{self.slot}.jsonl"),
                "--trace-dir", str(trace_dir),
            ]
        return argv

    async def start(self) -> tuple[str, int]:
        """Spawn and wait for the ``serving on host:port`` announcement."""
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        self.process = await asyncio.create_subprocess_exec(
            *self._argv(),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=env,
        )
        announced: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pump = asyncio.ensure_future(self._pump_output(announced))
        try:
            self.address = await asyncio.wait_for(
                announced, timeout=self.config.startup_timeout
            )
        except asyncio.TimeoutError:
            await self.stop(grace=0.0)
            raise RuntimeError(
                f"daemon {self.slot} never announced its port"
            ) from None
        return self.address

    async def _pump_output(self, announced: asyncio.Future) -> None:
        """Read the daemon's output forever; the first ``serving on``
        line resolves the announce future, the rest is kept flowing so
        the pipe can never fill and stall the daemon."""
        assert self.process is not None and self.process.stdout is not None
        prefix = "serving on "
        async for raw in self.process.stdout:
            line = raw.decode("utf-8", "replace").strip()
            if not announced.done() and line.startswith(prefix):
                host, _, port = line[len(prefix):].rpartition(":")
                announced.set_result((host, int(port)))
        if not announced.done():
            announced.set_exception(
                RuntimeError(f"daemon {self.slot} exited before announcing")
            )

    async def stop(self, grace: float = 30.0) -> None:
        """SIGTERM (the daemon's graceful drain path), then SIGKILL."""
        process = self.process
        if process is None:
            return
        if process.returncode is None:
            try:
                process.terminate()
            except ProcessLookupError:
                pass
            try:
                await asyncio.wait_for(process.wait(), timeout=grace or 0.001)
            except asyncio.TimeoutError:
                try:
                    process.kill()
                except ProcessLookupError:
                    pass
                await process.wait()
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except (asyncio.CancelledError, RuntimeError):
                pass
            self._pump = None
        # Close the subprocess transport now, while the loop is alive —
        # otherwise its destructor fires after loop close and complains.
        transport = getattr(process, "_transport", None)
        if transport is not None:
            transport.close()


class FleetSupervisor:
    """Spawns the fleet, fronts it with a router, keeps it healthy."""

    def __init__(
        self,
        config: FleetConfig | None = None,
        router_config: RouterConfig | None = None,
        *,
        trace: TraceLog | None = None,
    ):
        self.config = config or FleetConfig()
        if trace is None and self.config.trace_dir is not None:
            trace_dir = Path(self.config.trace_dir)
            trace_dir.mkdir(parents=True, exist_ok=True)
            trace = TraceLog(sink=trace_dir / "router.jsonl")
        self.trace = trace
        self.daemons: dict[str, DaemonProcess] = {}
        self.router: FleetRouter | None = None
        self._router_config = router_config or RouterConfig()
        self.restarts: dict[str, int] = {}
        self._restarting: set[str] = set()
        self._health_task: asyncio.Task | None = None
        self._restart_tasks: set[asyncio.Task] = set()
        self.stop_event = asyncio.Event()

    @property
    def stamp(self) -> str | None:
        return None  # daemons report theirs via the fanned-out status

    async def start(self) -> tuple[str, int]:
        """Spawn every daemon, then bind the router: (host, port)."""
        config = self.config
        slots = [f"d{i}" for i in range(config.size)]
        daemons = [DaemonProcess(slot, config) for slot in slots]
        try:
            addresses = await asyncio.gather(
                *(daemon.start() for daemon in daemons)
            )
        except BaseException:
            await asyncio.gather(
                *(daemon.stop(grace=0.0) for daemon in daemons),
                return_exceptions=True,
            )
            raise
        self.daemons = dict(zip(slots, daemons))
        backends = dict(zip(slots, addresses))
        self.router = FleetRouter(
            backends,
            self._router_config,
            quotas=QuotaManager(
                config.quotas, retry_after=self._router_config.retry_after
            ),
            trace=self.trace,
            on_backend_down=self._backend_down,
        )
        address = await self.router.start()
        self._health_task = asyncio.ensure_future(self._health_loop())
        return address

    # -- health ------------------------------------------------------------

    def _backend_down(self, slot: str) -> None:
        """Router noticed a dead daemon mid-request (faster than any
        poll): converge on the same restart path the health loop uses."""
        self._schedule_restart(slot)

    def _schedule_restart(self, slot: str) -> None:
        if self.stop_event.is_set() or slot in self._restarting:
            return
        self._restarting.add(slot)
        task = asyncio.ensure_future(self._restart(slot))
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    async def _restart(self, slot: str) -> None:
        assert self.router is not None
        try:
            self.router.mark_down(slot)
            old = self.daemons[slot]
            await old.stop(grace=0.0)  # reap; it is already dead or doomed
            await asyncio.sleep(self.config.restart_backoff)
            if self.stop_event.is_set():
                return
            fresh = DaemonProcess(slot, self.config)
            try:
                address = await fresh.start()
            except BaseException:
                await fresh.stop(grace=0.0)  # no half-started orphans
                raise
            self.daemons[slot] = fresh
            self.restarts[slot] = self.restarts.get(slot, 0) + 1
            self.router.restore(slot, address)
        finally:
            self._restarting.discard(slot)

    async def _health_loop(self) -> None:
        """Declare a slot down the moment its process has exited."""
        while not self.stop_event.is_set():
            for slot, daemon in list(self.daemons.items()):
                if not daemon.alive() and slot not in self._restarting:
                    self._schedule_restart(slot)
            try:
                await asyncio.wait_for(
                    self.stop_event.wait(),
                    timeout=self.config.health_interval,
                )
            except asyncio.TimeoutError:
                pass

    # -- drain -------------------------------------------------------------

    async def drain(self) -> None:
        """Ordered fleet drain: router first, then every daemon."""
        self.stop_event.set()
        if self._health_task is not None:
            await self._health_task
        for task in list(self._restart_tasks):
            task.cancel()
        await asyncio.gather(*self._restart_tasks, return_exceptions=True)
        if self.router is not None:
            await self.router.drain()
        await asyncio.gather(
            *(daemon.stop() for daemon in self.daemons.values()),
            return_exceptions=True,
        )


async def fleet_main(
    config: FleetConfig,
    router_config: RouterConfig | None = None,
    *,
    announce=print,
) -> int:
    """Run a fleet until SIGTERM/SIGINT or a ``shutdown`` request."""
    supervisor = FleetSupervisor(config, router_config)
    host, port = await supervisor.start()
    announce(f"fleet serving on {host}:{port} ({config.size} daemons)")

    loop = asyncio.get_running_loop()
    assert supervisor.router is not None
    stop = supervisor.router.stop_event
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    await stop.wait()
    announce("draining fleet...")
    await supervisor.drain()
    counters = supervisor.router.counters()
    announce(
        f"fleet drained: {counters['completed']} completed, "
        f"{counters['rejected']} rejected "
        f"({counters['quota_rejected']} by quota), "
        f"{counters['failed']} failed, "
        f"{sum(supervisor.restarts.values())} restarts"
    )
    return 0


class FleetThread:
    """A whole fleet embedded on one thread (daemons are still real
    subprocesses) — what the soak bench and the kill-a-daemon test use
    to run router + supervisor in-process while talking to them over
    real TCP."""

    def __init__(
        self,
        config: FleetConfig | None = None,
        router_config: RouterConfig | None = None,
    ):
        self._kwargs = dict(config=config, router_config=router_config)
        self.supervisor: FleetSupervisor | None = None
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-fleet", daemon=True
        )

    def start(self) -> tuple[str, int]:
        self._thread.start()
        timeout = 30.0 + (self._kwargs["config"] or FleetConfig()).size * 10.0
        if not self._ready.wait(timeout=timeout):
            raise RuntimeError("fleet thread did not come up")
        if self._failure is not None:
            raise RuntimeError("fleet thread failed") from self._failure
        assert self.address is not None
        return self.address

    def stop(self, timeout: float = 120.0) -> None:
        if self._loop is not None and self.supervisor is not None:
            router = self.supervisor.router
            if router is not None:
                try:
                    self._loop.call_soon_threadsafe(router.stop_event.set)
                except RuntimeError:
                    pass
        self._thread.join(timeout)

    def call(self, fn, timeout: float = 60.0):
        """Run ``fn(supervisor)`` on the fleet's loop — how tests read
        daemon pids or poke health state without races."""
        assert self._loop is not None and self.supervisor is not None
        future = asyncio.run_coroutine_threadsafe(self._call(fn), self._loop)
        return future.result(timeout)

    async def _call(self, fn):
        return fn(self.supervisor)

    def __enter__(self) -> FleetThread:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        kwargs = self._kwargs
        self.supervisor = FleetSupervisor(
            kwargs["config"], kwargs["router_config"]
        )
        self._loop = asyncio.get_running_loop()
        try:
            self.address = await self.supervisor.start()
        except BaseException as exc:
            self._failure = exc
            self._ready.set()
            return
        self._ready.set()
        assert self.supervisor.router is not None
        await self.supervisor.router.stop_event.wait()
        await self.supervisor.drain()


__all__ = [
    "FleetConfig", "DaemonProcess", "FleetSupervisor", "FleetThread",
    "fleet_main", "parse_policy",
]
