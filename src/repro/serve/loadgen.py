"""Load generator for the toolchain daemon: ``serve-bench``.

Replays a seeded, mixed workload (``run``/``link``/``compile``/
``explain`` over a set of benchmark programs and link variants) against
a daemon at a configurable concurrency, twice:

* **cold** — a fresh content-addressed cache: every unique job is
  compiled, linked, and simulated in the worker pool;
* **warm** — the identical workload again: every request is served by
  the disk cache or by coalescing onto an in-flight duplicate.

Each phase reports throughput and exact client-side latency
percentiles (p50/p95/p99 over the recorded per-request durations —
the server's histograms are bucket estimates; the report carries
both).  The first ``concurrency`` items of the workload are one
identical expensive request, released through a barrier, so the
coalescing path is exercised deterministically.

After the warm phase the generator *reconciles* its observations
against the server's ``status`` counters: completed == client
successes, rejected == busy replies the client absorbed, and the
serving identity ``completed == coalesced + cache_hits + computed``.
A report that fails reconciliation (or any request) exits non-zero —
the numbers in ``BENCH_serve.json`` are only worth keeping if both
sides of the wire agree on what happened.

Run as ``python -m repro.experiments serve-bench``.  By default an
embedded daemon (fresh temporary cache) is benchmarked; ``--connect
host:port`` targets an already-running one.
"""

from __future__ import annotations

import argparse
import json
import queue
import random
import tempfile
import threading
import time
from pathlib import Path

from repro.obs import merge as obs_merge
from repro.obs.trace import TraceLog
from repro.serve.client import ServeClient, ServeError
from repro.serve.metrics import percentile

#: Default program set: five small benchmarks (the acceptance floor).
DEFAULT_PROGRAMS = "compress,ear,eqntott,li,ora"

#: Weighted op mix for the replayed workload.
_OP_MIX = (("run", 45), ("link", 20), ("compile", 20), ("explain", 15))

#: Link variants the mixed workload draws from, weighted.
_VARIANT_MIX = (("om-full", 50), ("ld", 20), ("om-simple", 15),
                ("om-full-sched", 15))


def _weighted(rng: random.Random, mix) -> str:
    total = sum(weight for _, weight in mix)
    pick = rng.uniform(0, total)
    for value, weight in mix:
        pick -= weight
        if pick <= 0:
            return value
    return mix[-1][0]


def build_workload(
    programs: list[str],
    total: int,
    *,
    seed: int,
    scale: int | None,
    concurrency: int,
) -> list[tuple[str, dict]]:
    """A deterministic (op, params) list; index 0..concurrency-1 are one
    identical ``run`` request — the coalesce burst."""
    rng = random.Random(seed)
    burst_params = {
        "program": programs[0],
        "scale": scale,
        "mode": "each",
        "variant": "om-full",
        "timed": True,
    }
    items: list[tuple[str, dict]] = [
        ("run", dict(burst_params)) for _ in range(min(concurrency, total))
    ]
    while len(items) < total:
        op = _weighted(rng, _OP_MIX)
        params: dict = {
            "program": rng.choice(programs),
            "scale": scale,
            "mode": "all" if rng.random() < 0.25 else "each",
        }
        if op != "compile":
            variant = _weighted(rng, _VARIANT_MIX)
            if op == "explain" and variant == "ld":
                variant = "om-full"
            params["variant"] = variant
        items.append((op, params))
    return items


def run_phase(
    address: tuple[str, int],
    workload: list[tuple[str, dict]],
    concurrency: int,
    *,
    timeout: float,
    retries: int,
    trace: TraceLog | None = None,
) -> dict:
    """Drive the workload through ``concurrency`` client threads."""
    work: queue.Queue = queue.Queue()
    for item in workload:
        work.put(item)
    barrier = threading.Barrier(concurrency)
    samples: list[tuple[str, float]] = []
    failures: list[dict] = []
    coalesced = cached = busy_replies = 0
    lock = threading.Lock()

    def worker() -> None:
        nonlocal coalesced, cached, busy_replies
        client = ServeClient(address, timeout=timeout, retries=retries,
                             trace=trace)
        try:
            barrier.wait(timeout=timeout)
            while True:
                try:
                    op, params = work.get_nowait()
                except queue.Empty:
                    break
                started = time.monotonic()
                try:
                    response = client.request(op, **params)
                except ServeError as exc:
                    with lock:
                        failures.append(
                            {"op": op, "error": f"{type(exc).__name__}: {exc}"}
                        )
                    continue
                duration = time.monotonic() - started
                with lock:
                    samples.append((op, duration))
                    if response.get("coalesced"):
                        coalesced += 1
                    if response.get("cached"):
                        cached += 1
        finally:
            with lock:
                busy_replies += client.busy_retries
            client.close()

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    if trace is not None:
        trace.flush()

    durations = sorted(duration for _, duration in samples)
    by_op: dict[str, int] = {}
    for op, _ in samples:
        by_op[op] = by_op.get(op, 0) + 1
    return {
        "requests": len(workload),
        "ok": len(samples),
        "failed": len(failures),
        "failures": failures[:10],
        "busy_replies": busy_replies,
        "coalesced": coalesced,
        "cached": cached,
        "by_op": by_op,
        "wall_s": wall,
        "throughput_rps": len(samples) / wall if wall > 0 else 0.0,
        "latency_ms": {
            "p50": 1e3 * percentile(durations, 0.50),
            "p95": 1e3 * percentile(durations, 0.95),
            "p99": 1e3 * percentile(durations, 0.99),
            "mean": 1e3 * sum(durations) / len(durations) if durations else 0.0,
            "max": 1e3 * durations[-1] if durations else 0.0,
        },
    }


def _counter_delta(before: dict, after: dict) -> dict:
    b, a = before["counters"], after["counters"]
    return {key: a[key] - b.get(key, 0) for key in a}


def metrics_agree(final: dict, metrics_json: dict) -> dict:
    """The exposition (``metrics`` op) vs. the ``status`` counters.

    Both read the same registry objects, but this check is what makes
    "the export reconciles" an observed fact rather than an assumption:
    every ``serve_<name>_total`` series must equal the counter of the
    same name in the status payload sampled at the same point.
    """
    exported = {
        series["name"]: series["value"]
        for series in metrics_json.get("metrics", [])
        if series["kind"] == "counter"
    }
    mismatches = {}
    checked = 0
    for name, value in final["counters"].items():
        if name == "requests":
            # Counts admin ops too, so the status and metrics probes
            # themselves move it between the two samples.
            continue
        checked += 1
        series = f"serve_{name}_total"
        if exported.get(series) != value:
            mismatches[series] = {
                "status": value, "exported": exported.get(series),
            }
    return {"ok": not mismatches, "mismatches": mismatches,
            "series_checked": checked}


def reconcile(before: dict, final: dict, phases: dict) -> dict:
    """Client-side observations vs. the server's own counters."""
    delta = _counter_delta(before, final)
    client_ok = sum(phase["ok"] for phase in phases.values())
    client_busy = sum(phase["busy_replies"] for phase in phases.values())
    client_coalesced = sum(phase["coalesced"] for phase in phases.values())
    client_cached = sum(phase["cached"] for phase in phases.values())
    checks = {
        "completed_matches_client": {
            "ok": delta["completed"] == client_ok,
            "server": delta["completed"], "client": client_ok,
        },
        "rejected_matches_client_busy": {
            "ok": delta["rejected"] == client_busy,
            "server": delta["rejected"], "client": client_busy,
        },
        "coalesced_matches_client": {
            "ok": delta["coalesced"] == client_coalesced,
            "server": delta["coalesced"], "client": client_coalesced,
        },
        "cache_hits_match_client": {
            "ok": delta["cache_hits"] == client_cached,
            "server": delta["cache_hits"], "client": client_cached,
        },
        "serving_identity": {
            "ok": delta["completed"]
            == delta["coalesced"] + delta["cache_hits"] + delta["computed"],
            "completed": delta["completed"],
            "coalesced": delta["coalesced"],
            "cache_hits": delta["cache_hits"],
            "computed": delta["computed"],
        },
        "zero_server_failures": {
            "ok": delta["failed"] == 0, "failed": delta["failed"],
        },
        "coalescing_observed": {
            "ok": delta["coalesced"] >= 1, "coalesced": delta["coalesced"],
        },
        "warm_throughput_higher": {
            "ok": phases["warm"]["throughput_rps"]
            > phases["cold"]["throughput_rps"],
            "cold_rps": phases["cold"]["throughput_rps"],
            "warm_rps": phases["warm"]["throughput_rps"],
        },
    }
    return {"ok": all(check["ok"] for check in checks.values()),
            "counters_delta": delta, "checks": checks}


def _phase_line(name: str, phase: dict) -> str:
    lat = phase["latency_ms"]
    return (
        f"{name:>5}: {phase['ok']}/{phase['requests']} ok, "
        f"{phase['failed']} failed, {phase['busy_replies']} busy replies | "
        f"{phase['throughput_rps']:.2f} req/s | "
        f"p50 {lat['p50']:.1f} ms, p95 {lat['p95']:.1f} ms, "
        f"p99 {lat['p99']:.1f} ms | "
        f"coalesced {phase['coalesced']}, cached {phase['cached']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments serve-bench",
        description="cold/warm load benchmark against the toolchain daemon",
    )
    parser.add_argument("--programs", default=DEFAULT_PROGRAMS,
                        help="comma-separated benchmarks, or 'all'")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload SCALE override (default 1: smoke size)")
    parser.add_argument("--concurrency", "-c", type=int, default=8)
    parser.add_argument("--requests", "-n", type=int, default=40,
                        help="requests per phase")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--retries", type=int, default=8)
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="benchmark a running daemon instead of an "
                             "embedded one")
    parser.add_argument("--workers", type=int, default=4,
                        help="embedded daemon worker processes")
    parser.add_argument("--queue-limit", type=int, default=32,
                        help="embedded daemon admission-queue bound")
    parser.add_argument("--cache-dir", default=None,
                        help="embedded daemon cache dir (default: fresh "
                             "temporary directory, guaranteeing a cold phase)")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="JSON report path")
    parser.add_argument("--trace-dir", default=None,
                        help="collect client/server/worker JSONL trace "
                             "sinks here, merge them into one Chrome "
                             "trace, and gate on request correlation "
                             "(embedded daemon only)")
    parser.add_argument("--shutdown", action="store_true",
                        help="with --connect: send a shutdown request after "
                             "the benchmark (embedded daemons always drain)")
    args = parser.parse_args(argv)

    if args.programs == "all":
        from repro.benchsuite.suite import PROGRAMS

        programs = list(PROGRAMS)
    else:
        programs = [name for name in args.programs.split(",") if name]
    workload = build_workload(
        programs, args.requests,
        seed=args.seed, scale=args.scale, concurrency=args.concurrency,
    )

    thread = None
    tempdir = None
    trace_dir = Path(args.trace_dir) if args.trace_dir else None
    if args.connect:
        if trace_dir is not None:
            parser.error("--trace-dir needs the embedded daemon "
                         "(worker sinks must land on this filesystem)")
        host, _, port = args.connect.rpartition(":")
        address = (host or "127.0.0.1", int(port))
    else:
        from repro.cache import ArtifactCache
        from repro.serve.server import ServeConfig, ServerThread

        cache_dir = args.cache_dir
        if cache_dir is None:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
            cache_dir = tempdir.name
        server_trace = None
        if trace_dir is not None:
            trace_dir.mkdir(parents=True, exist_ok=True)
            server_trace = TraceLog(sink=trace_dir / "server.jsonl")
        thread = ServerThread(
            ArtifactCache(cache_dir),
            ServeConfig(
                workers=args.workers,
                queue_limit=args.queue_limit,
                trace_dir=str(trace_dir) if trace_dir is not None else None,
            ),
            trace=server_trace,
        )
        address = thread.start()
        print(f"embedded daemon on {address[0]}:{address[1]} "
              f"(cache: {cache_dir})")

    try:
        probe = ServeClient(address, timeout=args.timeout)
        before = probe.status()
        phases = {}
        for name in ("cold", "warm"):
            phase_trace = None
            if trace_dir is not None:
                phase_trace = TraceLog(sink=trace_dir / f"client-{name}.jsonl")
            phases[name] = run_phase(
                address, workload, args.concurrency,
                timeout=args.timeout, retries=args.retries,
                trace=phase_trace,
            )
            print(_phase_line(name, phases[name]))
        final = probe.status()
        metrics = probe.metrics()
        if args.connect and args.shutdown:
            probe.shutdown()
        probe.close()
    finally:
        # Stop (and so drain) the embedded daemon *before* merging:
        # drain flushes the server sink, and workers flushed per job.
        if thread is not None:
            thread.stop()
        if tempdir is not None:
            tempdir.cleanup()

    correlation = None
    if trace_dir is not None:
        merged = obs_merge.merge_traces([trace_dir])
        merged_path = trace_dir / "merged.trace.json"
        merged.save_chrome_trace(merged_path)
        correlation = obs_merge.correlation_report(merged)
        print(f"merged trace: {merged_path} "
              f"({len(merged.events)} events, "
              f"{correlation['request_ids']} request ids)")

    outcome = reconcile(before, final, phases)
    exposition = metrics_agree(final, metrics["json"])
    report = {
        "bench": "serve",
        "concurrency": args.concurrency,
        "requests_per_phase": args.requests,
        "programs": programs,
        "scale": args.scale,
        "seed": args.seed,
        "phases": phases,
        "server": {"before": before, "final": final},
        "metrics": metrics["json"],
        "reconcile": outcome,
        "correlation": correlation,
        "exposition_check": exposition,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"report: {args.out}")

    for name, check in outcome["checks"].items():
        flag = "OK" if check["ok"] else "FAIL"
        detail = {k: v for k, v in check.items() if k != "ok"}
        print(f"  {flag:>4}  {name}  {detail}")
    failed_requests = sum(phase["failed"] for phase in phases.values())
    ok = outcome["ok"] and failed_requests == 0
    if not exposition["ok"]:
        print(f"  FAIL  metrics_exposition  {exposition['mismatches']}")
        ok = False
    if correlation is not None and not correlation["ok"]:
        print(f"  FAIL  trace_correlation  {correlation}")
        ok = False
    print(f"serve-bench: {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
