"""Load generator for the toolchain daemon: ``serve-bench``.

Replays a seeded, mixed workload (``run``/``link``/``compile``/
``explain`` over a set of benchmark programs and link variants) against
a daemon at a configurable concurrency, twice:

* **cold** — a fresh content-addressed cache: every unique job is
  compiled, linked, and simulated in the worker pool;
* **warm** — the identical workload again: every request is served by
  the disk cache or by coalescing onto an in-flight duplicate.

Each phase reports throughput and exact client-side latency
percentiles (p50/p95/p99 over the recorded per-request durations —
the server's histograms are bucket estimates; the report carries
both).  The first ``concurrency`` items of the workload are one
identical expensive request, released through a barrier, so the
coalescing path is exercised deterministically.

After the warm phase the generator *reconciles* its observations
against the server's ``status`` counters: completed == client
successes, rejected == busy replies the client absorbed, and the
serving identity ``completed == coalesced + cache_hits + computed``.
A report that fails reconciliation (or any request) exits non-zero —
the numbers in ``BENCH_serve.json`` are only worth keeping if both
sides of the wire agree on what happened.

Run as ``python -m repro.experiments serve-bench``.  By default an
embedded daemon (fresh temporary cache) is benchmarked; ``--connect
host:port`` targets an already-running one; ``--fleet N`` embeds a
whole router-fronted fleet (:mod:`repro.serve.fleet`).

``--soak`` switches from the two-phase replay to a duration-based
multi-tenant soak: ``--tenants`` client populations (``t0``, ``t1``,
…) drive a mixed cold/warm stream — warm draws from a fixed workload
pool, cold requests carry a nonce comment that changes the content
key but not the semantics — for ``--duration`` seconds, opening with
a barrier-released coalesce burst.  The soak report reconciles
fleet-wide (client observations vs. router counters vs. summed daemon
counters; quota rejections accounted separately, never as failures)
and gates on a warm-path p99 (``--p99-ms``), an error budget
(``--error-budget``), and — against a fleet — warm throughput through
the router vs. a single daemon (``--speedup-floor``).
"""

from __future__ import annotations

import argparse
import json
import queue
import random
import tempfile
import threading
import time
from pathlib import Path

from repro.obs import merge as obs_merge
from repro.obs.trace import TraceLog
from repro.serve.client import ServeClient, ServeError, ServerBusy
from repro.serve.metrics import percentile

#: Default program set: five small benchmarks (the acceptance floor).
DEFAULT_PROGRAMS = "compress,ear,eqntott,li,ora"

#: Weighted op mix for the replayed workload.
_OP_MIX = (("run", 45), ("link", 20), ("compile", 20), ("explain", 15))

#: Link variants the mixed workload draws from, weighted.
_VARIANT_MIX = (("om-full", 50), ("ld", 20), ("om-simple", 15),
                ("om-full-sched", 15))


def _weighted(rng: random.Random, mix) -> str:
    total = sum(weight for _, weight in mix)
    pick = rng.uniform(0, total)
    for value, weight in mix:
        pick -= weight
        if pick <= 0:
            return value
    return mix[-1][0]


def build_workload(
    programs: list[str],
    total: int,
    *,
    seed: int,
    scale: int | None,
    concurrency: int,
) -> list[tuple[str, dict]]:
    """A deterministic (op, params) list; index 0..concurrency-1 are one
    identical ``run`` request — the coalesce burst."""
    rng = random.Random(seed)
    burst_params = {
        "program": programs[0],
        "scale": scale,
        "mode": "each",
        "variant": "om-full",
        "timed": True,
    }
    items: list[tuple[str, dict]] = [
        ("run", dict(burst_params)) for _ in range(min(concurrency, total))
    ]
    while len(items) < total:
        op = _weighted(rng, _OP_MIX)
        params: dict = {
            "program": rng.choice(programs),
            "scale": scale,
            "mode": "all" if rng.random() < 0.25 else "each",
        }
        if op != "compile":
            variant = _weighted(rng, _VARIANT_MIX)
            if op == "explain" and variant == "ld":
                variant = "om-full"
            params["variant"] = variant
        items.append((op, params))
    return items


def run_phase(
    address: tuple[str, int],
    workload: list[tuple[str, dict]],
    concurrency: int,
    *,
    timeout: float,
    retries: int,
    trace: TraceLog | None = None,
) -> dict:
    """Drive the workload through ``concurrency`` client threads."""
    work: queue.Queue = queue.Queue()
    for item in workload:
        work.put(item)
    barrier = threading.Barrier(concurrency)
    samples: list[tuple[str, float]] = []
    failures: list[dict] = []
    coalesced = cached = busy_replies = 0
    lock = threading.Lock()

    def worker() -> None:
        nonlocal coalesced, cached, busy_replies
        client = ServeClient(address, timeout=timeout, retries=retries,
                             trace=trace)
        try:
            barrier.wait(timeout=timeout)
            while True:
                try:
                    op, params = work.get_nowait()
                except queue.Empty:
                    break
                started = time.monotonic()
                try:
                    response = client.request(op, **params)
                except ServeError as exc:
                    with lock:
                        failures.append(
                            {"op": op, "error": f"{type(exc).__name__}: {exc}"}
                        )
                    continue
                duration = time.monotonic() - started
                with lock:
                    samples.append((op, duration))
                    if response.get("coalesced"):
                        coalesced += 1
                    if response.get("cached"):
                        cached += 1
        finally:
            with lock:
                busy_replies += client.busy_retries
            client.close()

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    if trace is not None:
        trace.flush()

    durations = sorted(duration for _, duration in samples)
    by_op: dict[str, int] = {}
    for op, _ in samples:
        by_op[op] = by_op.get(op, 0) + 1
    return {
        "requests": len(workload),
        "ok": len(samples),
        "failed": len(failures),
        "failures": failures[:10],
        "busy_replies": busy_replies,
        "coalesced": coalesced,
        "cached": cached,
        "by_op": by_op,
        "wall_s": wall,
        "throughput_rps": len(samples) / wall if wall > 0 else 0.0,
        "latency_ms": {
            "p50": 1e3 * percentile(durations, 0.50),
            "p95": 1e3 * percentile(durations, 0.95),
            "p99": 1e3 * percentile(durations, 0.99),
            "mean": 1e3 * sum(durations) / len(durations) if durations else 0.0,
            "max": 1e3 * durations[-1] if durations else 0.0,
        },
    }


#: Warm-pool size for the soak phase and the warm-throughput probe —
#: the same ``build_workload`` prefix both times, so the probe replays
#: keys the soak already warmed.
_SOAK_POOL = 24


def _nonce_sources(programs: list[str], scale, tag: str) -> list[list[str]]:
    """Sources for a guaranteed-cold request: the lead program with a
    ``//`` comment nonce appended — a new content key, same program."""
    from repro.benchsuite.suite import scaled_sources

    sources = [[name, text] for name, text in scaled_sources(programs[0], scale)]
    sources[0][1] += f"\n// soak nonce {tag}\n"
    return sources


def run_soak(
    address: tuple[str, int],
    programs: list[str],
    *,
    duration: float,
    tenants: int,
    concurrency: int,
    scale: int | None,
    seed: int,
    timeout: float,
    retries: int,
    cold_ratio: float = 0.25,
    trace: TraceLog | None = None,
) -> dict:
    """Duration-based mixed cold/warm multi-tenant traffic.

    ``concurrency`` worker threads are split round-robin over
    ``tenants`` tenant identities.  Every worker opens with the same
    barrier-released cold ``run`` request (the deterministic coalesce
    burst), then loops until the deadline drawing warm requests from a
    fixed pool (cache/coalesce path) or, with ``cold_ratio``
    probability, a nonce-comment cold request (worker-pool path).

    Quota rejections are *accounting, not failures*: a request that
    exhausts retries on ``reason="quota"`` is tallied under
    ``quota_exhausted``, and only non-quota errors land in
    ``failures``.
    """
    warm_pool = build_workload(
        programs, _SOAK_POOL, seed=seed, scale=scale, concurrency=0
    )
    burst = {
        "sources": _nonce_sources(programs, scale, f"burst-{seed}"),
        "mode": "each", "variant": "om-full", "timed": True,
    }
    barrier = threading.Barrier(concurrency)
    lock = threading.Lock()
    # tenant, seconds, cached, coalesced, opening-burst
    samples: list[tuple[str, float, bool, bool, bool]] = []
    failures: list[dict] = []
    totals = {
        "busy_replies": 0, "busy_reasons": {}, "quota_exhausted": 0,
        "cold_sent": 0, "transport_retries": 0,
    }

    def worker(index: int) -> None:
        tenant = f"t{index % tenants}"
        rng = random.Random((seed + 1) * 10_000 + index)
        client = ServeClient(
            address, timeout=timeout, retries=retries,
            trace=trace, tenant=tenant, rng=rng,
        )
        local_cold = 0
        try:
            barrier.wait(timeout=timeout)
            deadline = time.monotonic() + duration
            first = True
            while True:
                now = time.monotonic()
                if not first and now >= deadline:
                    break
                is_burst = first
                if first:
                    op, params = "run", dict(burst)
                    first = False
                elif rng.random() < cold_ratio:
                    local_cold += 1
                    op = "compile"
                    params = {
                        "sources": _nonce_sources(
                            programs, scale, f"w{index}-{local_cold}-{seed}"
                        ),
                        "mode": "each",
                    }
                else:
                    op, params = warm_pool[rng.randrange(len(warm_pool))]
                    params = dict(params)
                started = time.monotonic()
                try:
                    response = client.request(op, **params)
                except ServerBusy as exc:
                    with lock:
                        if exc.reason == "quota":
                            totals["quota_exhausted"] += 1
                        else:
                            failures.append({
                                "tenant": tenant, "op": op,
                                "error": f"ServerBusy: {exc}",
                            })
                    continue
                except ServeError as exc:
                    with lock:
                        failures.append({
                            "tenant": tenant, "op": op,
                            "error": f"{type(exc).__name__}: {exc}",
                        })
                    continue
                elapsed = time.monotonic() - started
                with lock:
                    samples.append((
                        tenant, elapsed,
                        bool(response.get("cached")),
                        bool(response.get("coalesced")),
                        is_burst,
                    ))
        finally:
            with lock:
                totals["busy_replies"] += client.busy_retries
                totals["transport_retries"] += client.transport_retries
                totals["cold_sent"] += local_cold
                for reason, count in client.busy_reasons.items():
                    totals["busy_reasons"][reason] = (
                        totals["busy_reasons"].get(reason, 0) + count
                    )
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"soak-{i}", daemon=True)
        for i in range(concurrency)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    if trace is not None:
        trace.flush()

    per_tenant: dict[str, dict] = {}
    for tenant, elapsed, cached, coalesced, _ in samples:
        bucket = per_tenant.setdefault(
            tenant, {"ok": 0, "cached": 0, "coalesced": 0, "latencies": []}
        )
        bucket["ok"] += 1
        bucket["cached"] += cached
        bucket["coalesced"] += coalesced
        bucket["latencies"].append(elapsed)
    for failure in failures:
        bucket = per_tenant.setdefault(
            failure["tenant"],
            {"ok": 0, "cached": 0, "coalesced": 0, "latencies": []},
        )
        bucket["failed"] = bucket.get("failed", 0) + 1
    tenant_report = {}
    for tenant, bucket in sorted(per_tenant.items()):
        latencies = sorted(bucket["latencies"])
        tenant_report[tenant] = {
            "ok": bucket["ok"],
            "failed": bucket.get("failed", 0),
            "cached": bucket["cached"],
            "coalesced": bucket["coalesced"],
            "p50_ms": 1e3 * percentile(latencies, 0.50),
            "p99_ms": 1e3 * percentile(latencies, 0.99),
        }

    durations = sorted(elapsed for _, elapsed, _, _, _ in samples)
    # Only cache hits count as warm latency: a coalesced request may
    # have joined a *cold* leader (the opening burst does so by
    # design, and pool items do while the pool is still warming) and
    # waited out the full compute — deduplication working as intended,
    # not a warm-path latency signal the p99 gate should read.
    warm_durations = sorted(
        elapsed for _, elapsed, cached, _, is_burst in samples
        if cached and not is_burst
    )
    attempted = len(samples) + len(failures) + totals["quota_exhausted"]
    return {
        "duration_s": duration,
        "wall_s": wall,
        "tenants": tenants,
        "cold_ratio": cold_ratio,
        "requests": attempted,
        "ok": len(samples),
        "failed": len(failures),
        "failures": failures[:10],
        "cold_sent": totals["cold_sent"],
        "busy_replies": totals["busy_replies"],
        "busy_reasons": totals["busy_reasons"],
        "quota_exhausted": totals["quota_exhausted"],
        "transport_retries": totals["transport_retries"],
        "coalesced": sum(1 for _, _, _, c, _ in samples if c),
        "cached": sum(1 for _, _, cached, _, _ in samples if cached),
        "throughput_rps": len(samples) / wall if wall > 0 else 0.0,
        "latency_ms": {
            "p50": 1e3 * percentile(durations, 0.50),
            "p95": 1e3 * percentile(durations, 0.95),
            "p99": 1e3 * percentile(durations, 0.99),
        },
        "warm_latency_ms": {
            "count": len(warm_durations),
            "p50": 1e3 * percentile(warm_durations, 0.50),
            "p99": 1e3 * percentile(warm_durations, 0.99),
        },
        "per_tenant": tenant_report,
    }


def measure_warm_speedup(
    router: tuple[str, int],
    single: tuple[str, int],
    programs: list[str],
    *,
    scale: int | None,
    seed: int,
    concurrency: int,
    timeout: float,
    retries: int,
    repeat: int = 8,
) -> dict:
    """Warm throughput through the router vs. one daemon directly.

    Both measurements replay the same already-warm workload pool
    against the same shared disk cache, so the comparison isolates the
    serving topology: N event loops behind a relay vs. one event loop.
    Run this *after* the reconciliation snapshots — the direct-daemon
    leg bypasses the router, which would otherwise break the
    router==daemons counter checks.
    """
    pool = build_workload(
        programs, _SOAK_POOL, seed=seed, scale=scale, concurrency=0
    )
    workload = pool * repeat
    # Prime: make every pool key warm (idempotent if the soak already did).
    run_phase(router, pool, concurrency, timeout=timeout, retries=retries)
    fleet = run_phase(
        router, workload, concurrency, timeout=timeout, retries=retries
    )
    direct = run_phase(
        single, workload, concurrency, timeout=timeout, retries=retries
    )
    fleet_rps = fleet["throughput_rps"]
    single_rps = direct["throughput_rps"]
    return {
        "requests": len(workload),
        "fleet_warm_rps": fleet_rps,
        "single_warm_rps": single_rps,
        "speedup": fleet_rps / single_rps if single_rps > 0 else 0.0,
        "fleet_failed": fleet["failed"],
        "single_failed": direct["failed"],
        "fleet_p99_ms": fleet["latency_ms"]["p99"],
        "single_p99_ms": direct["latency_ms"]["p99"],
    }


def _counter_delta(before: dict, after: dict) -> dict:
    b, a = before["counters"], after["counters"]
    return {key: a[key] - b.get(key, 0) for key in a}


def metrics_agree(final: dict, metrics_json: dict) -> dict:
    """The exposition (``metrics`` op) vs. the ``status`` counters.

    Both read the same registry objects, but this check is what makes
    "the export reconciles" an observed fact rather than an assumption:
    every ``serve_<name>_total`` series must equal the counter of the
    same name in the status payload sampled at the same point.
    """
    exported = {
        series["name"]: series["value"]
        for series in metrics_json.get("metrics", [])
        if series["kind"] == "counter"
    }
    mismatches = {}
    checked = 0
    for name, value in final["counters"].items():
        if name == "requests":
            # Counts admin ops too, so the status and metrics probes
            # themselves move it between the two samples.
            continue
        checked += 1
        series = f"serve_{name}_total"
        if exported.get(series) != value:
            mismatches[series] = {
                "status": value, "exported": exported.get(series),
            }
    return {"ok": not mismatches, "mismatches": mismatches,
            "series_checked": checked}


def reconcile(before: dict, final: dict, phases: dict) -> dict:
    """Client-side observations vs. the server's own counters."""
    delta = _counter_delta(before, final)
    client_ok = sum(phase["ok"] for phase in phases.values())
    client_busy = sum(phase["busy_replies"] for phase in phases.values())
    client_coalesced = sum(phase["coalesced"] for phase in phases.values())
    client_cached = sum(phase["cached"] for phase in phases.values())
    checks = {
        "completed_matches_client": {
            "ok": delta["completed"] == client_ok,
            "server": delta["completed"], "client": client_ok,
        },
        "rejected_matches_client_busy": {
            "ok": delta["rejected"] == client_busy,
            "server": delta["rejected"], "client": client_busy,
        },
        "coalesced_matches_client": {
            "ok": delta["coalesced"] == client_coalesced,
            "server": delta["coalesced"], "client": client_coalesced,
        },
        "cache_hits_match_client": {
            "ok": delta["cache_hits"] == client_cached,
            "server": delta["cache_hits"], "client": client_cached,
        },
        "serving_identity": {
            "ok": delta["completed"]
            == delta["coalesced"] + delta["cache_hits"] + delta["computed"],
            "completed": delta["completed"],
            "coalesced": delta["coalesced"],
            "cache_hits": delta["cache_hits"],
            "computed": delta["computed"],
        },
        "zero_server_failures": {
            "ok": delta["failed"] == 0, "failed": delta["failed"],
        },
        "coalescing_observed": {
            "ok": delta["coalesced"] >= 1, "coalesced": delta["coalesced"],
        },
        "warm_throughput_higher": {
            "ok": phases["warm"]["throughput_rps"]
            > phases["cold"]["throughput_rps"],
            "cold_rps": phases["cold"]["throughput_rps"],
            "warm_rps": phases["warm"]["throughput_rps"],
        },
    }
    return {"ok": all(check["ok"] for check in checks.values()),
            "counters_delta": delta, "checks": checks}


def reconcile_soak(
    before: dict, final: dict, soak: dict, *, error_budget: float = 0.0
) -> dict:
    """Fleet-wide reconciliation of a soak run.

    ``before``/``final`` are ``status`` snapshots — either a single
    daemon's, or the router's fleet payload, whose ``counters`` are
    the *sum* across daemon status payloads and which carries its own
    ``router.counters`` section.  The checks tie three ledgers
    together: what the clients observed, what the router relayed, and
    what the daemons did — with quota rejections accounted in their
    own series and never as failures.
    """
    delta = _counter_delta(before, final)
    allowed_failures = int(error_budget * soak["requests"])
    checks = {
        "serving_identity": {
            "ok": delta["completed"]
            == delta["coalesced"] + delta["cache_hits"] + delta["computed"],
            "completed": delta["completed"],
            "coalesced": delta["coalesced"],
            "cache_hits": delta["cache_hits"],
            "computed": delta["computed"],
        },
        "completed_matches_client": {
            "ok": delta["completed"] == soak["ok"],
            "server": delta["completed"], "client": soak["ok"],
        },
        "coalescing_observed": {
            "ok": delta["coalesced"] >= 1, "coalesced": delta["coalesced"],
        },
        "failures_within_budget": {
            "ok": delta["failed"] == 0 and soak["failed"] <= allowed_failures,
            "server_failed": delta["failed"],
            "client_failed": soak["failed"],
            "allowed": allowed_failures,
        },
    }
    router = final.get("router")
    if router is not None:
        rbefore = before.get("router", {}).get("counters", {})
        rdelta = {
            key: value - rbefore.get(key, 0)
            for key, value in router["counters"].items()
        }
        quota_busy = soak["busy_reasons"].get("quota", 0)
        checks.update({
            "router_completed_matches_client": {
                "ok": rdelta["completed"] == soak["ok"],
                "router": rdelta["completed"], "client": soak["ok"],
            },
            "router_rejected_matches_client_busy": {
                "ok": rdelta["rejected"] == soak["busy_replies"],
                "router": rdelta["rejected"], "client": soak["busy_replies"],
            },
            "quota_rejections_accounted": {
                # Separate series on both sides of the wire, and they
                # agree — a quota rejection is never a failure.
                "ok": rdelta["quota_rejected"] == quota_busy,
                "router": rdelta["quota_rejected"], "client": quota_busy,
            },
            "daemon_rejections_relayed": {
                "ok": delta["rejected"] == rdelta["relayed_busy"],
                "daemons": delta["rejected"], "router": rdelta["relayed_busy"],
            },
            "router_zero_failures": {
                "ok": rdelta["failed"] == 0, "failed": rdelta["failed"],
            },
        })
        checks["router_delta"] = {"ok": True, **rdelta}
    else:
        checks["rejected_matches_client_busy"] = {
            "ok": delta["rejected"] == soak["busy_replies"],
            "server": delta["rejected"], "client": soak["busy_replies"],
        }
    return {"ok": all(check["ok"] for check in checks.values()),
            "counters_delta": delta, "checks": checks}


def metrics_agree_fleet(final: dict, metrics_payload: dict) -> dict:
    """Fleet exposition vs. the fleet status: the aggregated
    ``serve_<name>_total`` series (summed by the router across daemon
    registries) must equal the summed counters in the fleet status
    payload, and the aggregated per-tenant series must equal the
    summed ``tenants`` section."""
    aggregated = metrics_payload.get("fleet", {}).get("counters", [])
    unlabeled = {
        series["name"]: series["value"]
        for series in aggregated if not series["labels"]
    }
    mismatches = {}
    checked = 0
    for name, value in final["counters"].items():
        if name == "requests":
            continue  # admin probes move it between the two samples
        checked += 1
        series = f"serve_{name}_total"
        if unlabeled.get(series) != value:
            mismatches[series] = {
                "status": value, "exported": unlabeled.get(series),
            }
    by_tenant = {
        (series["name"], series["labels"].get("tenant")): series["value"]
        for series in aggregated if "tenant" in series["labels"]
    }
    for tenant, kinds in final.get("tenants", {}).items():
        for kind, value in kinds.items():
            checked += 1
            key = (f"serve_tenant_{kind}_total", tenant)
            if by_tenant.get(key) != value:
                mismatches[f"{key[0]}{{tenant={tenant}}}"] = {
                    "status": value, "exported": by_tenant.get(key),
                }
    return {"ok": not mismatches, "mismatches": mismatches,
            "series_checked": checked}


def _soak_line(soak: dict) -> str:
    lat = soak["latency_ms"]
    return (
        f" soak: {soak['ok']}/{soak['requests']} ok in "
        f"{soak['wall_s']:.1f} s ({soak['throughput_rps']:.2f} req/s) | "
        f"{soak['failed']} failed, {soak['quota_exhausted']} quota-exhausted, "
        f"busy {soak['busy_replies']} {soak['busy_reasons']} | "
        f"cold {soak['cold_sent']}, cached {soak['cached']}, "
        f"coalesced {soak['coalesced']} | "
        f"p50 {lat['p50']:.1f} ms, p99 {lat['p99']:.1f} ms "
        f"(warm p99 {soak['warm_latency_ms']['p99']:.1f} ms)"
    )


def _phase_line(name: str, phase: dict) -> str:
    lat = phase["latency_ms"]
    return (
        f"{name:>5}: {phase['ok']}/{phase['requests']} ok, "
        f"{phase['failed']} failed, {phase['busy_replies']} busy replies | "
        f"{phase['throughput_rps']:.2f} req/s | "
        f"p50 {lat['p50']:.1f} ms, p95 {lat['p95']:.1f} ms, "
        f"p99 {lat['p99']:.1f} ms | "
        f"coalesced {phase['coalesced']}, cached {phase['cached']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments serve-bench",
        description="cold/warm load benchmark against the toolchain daemon",
    )
    parser.add_argument("--programs", default=DEFAULT_PROGRAMS,
                        help="comma-separated benchmarks, or 'all'")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload SCALE override (default 1: smoke size)")
    parser.add_argument("--concurrency", "-c", type=int, default=8)
    parser.add_argument("--requests", "-n", type=int, default=40,
                        help="requests per phase")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--retries", type=int, default=8)
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="benchmark a running daemon instead of an "
                             "embedded one")
    parser.add_argument("--fleet", type=int, default=0, metavar="N",
                        help="embed an N-daemon fleet (router + daemon "
                             "subprocesses, shared temp cache) instead of "
                             "a single embedded daemon")
    parser.add_argument("--quota", action="append", default=None,
                        metavar="TENANT:KEY=VALUE,...",
                        help="per-tenant quota for the embedded fleet "
                             "(repeatable), e.g. 't2:rate=2,burst=2'")
    parser.add_argument("--soak", action="store_true",
                        help="duration-based multi-tenant mixed cold/warm "
                             "soak instead of the two-phase replay")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="soak duration in seconds")
    parser.add_argument("--tenants", type=int, default=3,
                        help="tenant identities the soak spreads over")
    parser.add_argument("--cold-ratio", type=float, default=0.25,
                        help="fraction of soak requests forced cold via "
                             "a content-key nonce")
    parser.add_argument("--p99-ms", type=float, default=500.0,
                        help="soak gate: warm-path (cached/coalesced) "
                             "client p99 ceiling")
    parser.add_argument("--error-budget", type=float, default=0.0,
                        help="soak gate: allowed client failure fraction "
                             "(quota rejections never count)")
    parser.add_argument("--speedup-floor", type=float, default=0.0,
                        help="soak gate against a fleet: warm throughput "
                             "via the router must be at least this multiple "
                             "of one daemon's (0 = don't gate)")
    parser.add_argument("--workers", type=int, default=4,
                        help="embedded daemon worker processes")
    parser.add_argument("--queue-limit", type=int, default=32,
                        help="embedded daemon admission-queue bound")
    parser.add_argument("--cache-dir", default=None,
                        help="embedded daemon cache dir (default: fresh "
                             "temporary directory, guaranteeing a cold phase)")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="JSON report path")
    parser.add_argument("--trace-dir", default=None,
                        help="collect client/server/worker JSONL trace "
                             "sinks here, merge them into one Chrome "
                             "trace, and gate on request correlation; "
                             "with --connect only the client sinks are "
                             "written (point it at the daemon's own "
                             "--trace-dir and run merge-trace after the "
                             "drain)")
    parser.add_argument("--shutdown", action="store_true",
                        help="with --connect: send a shutdown request after "
                             "the benchmark (embedded daemons always drain)")
    args = parser.parse_args(argv)

    if args.programs == "all":
        from repro.benchsuite.suite import PROGRAMS

        programs = list(PROGRAMS)
    else:
        programs = [name for name in args.programs.split(",") if name]
    workload = build_workload(
        programs, args.requests,
        seed=args.seed, scale=args.scale, concurrency=args.concurrency,
    )

    thread = None
    tempdir = None
    trace_dir = Path(args.trace_dir) if args.trace_dir else None
    if args.connect:
        if trace_dir is not None:
            # Client sinks only: the daemon side traces via its own
            # --trace-dir, and its sinks flush on drain — merging here
            # would race that, so merge-trace runs separately.
            trace_dir.mkdir(parents=True, exist_ok=True)
        host, _, port = args.connect.rpartition(":")
        address = (host or "127.0.0.1", int(port))
    elif args.fleet:
        from repro.serve.fleet import FleetConfig, FleetThread, parse_policy

        cache_dir = args.cache_dir
        if cache_dir is None:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
            cache_dir = tempdir.name
        if trace_dir is not None:
            trace_dir.mkdir(parents=True, exist_ok=True)
        thread = FleetThread(
            FleetConfig(
                size=args.fleet,
                workers=args.workers,
                queue_limit=args.queue_limit,
                cache_dir=cache_dir,
                trace_dir=str(trace_dir) if trace_dir is not None else None,
                quotas=dict(
                    parse_policy(spec) for spec in args.quota or []
                ),
            )
        )
        address = thread.start()
        print(f"embedded fleet on {address[0]}:{address[1]} "
              f"({args.fleet} daemons, cache: {cache_dir})")
    else:
        from repro.cache import ArtifactCache
        from repro.serve.server import ServeConfig, ServerThread

        cache_dir = args.cache_dir
        if cache_dir is None:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
            cache_dir = tempdir.name
        server_trace = None
        if trace_dir is not None:
            trace_dir.mkdir(parents=True, exist_ok=True)
            server_trace = TraceLog(sink=trace_dir / "server.jsonl")
        thread = ServerThread(
            ArtifactCache(cache_dir),
            ServeConfig(
                workers=args.workers,
                queue_limit=args.queue_limit,
                trace_dir=str(trace_dir) if trace_dir is not None else None,
            ),
            trace=server_trace,
        )
        address = thread.start()
        print(f"embedded daemon on {address[0]}:{address[1]} "
              f"(cache: {cache_dir})")

    try:
        probe = ServeClient(address, timeout=args.timeout)
        before = probe.status()
        phases = {}
        soak = None
        warm = None
        if args.soak:
            soak_trace = None
            if trace_dir is not None:
                soak_trace = TraceLog(sink=trace_dir / "client-soak.jsonl")
            soak = run_soak(
                address, programs,
                duration=args.duration, tenants=args.tenants,
                concurrency=args.concurrency, scale=args.scale,
                seed=args.seed, timeout=args.timeout, retries=args.retries,
                cold_ratio=args.cold_ratio, trace=soak_trace,
            )
            print(_soak_line(soak))
            for tenant, row in soak["per_tenant"].items():
                print(f"  {tenant}: {row['ok']} ok, {row['failed']} failed, "
                      f"cached {row['cached']}, coalesced {row['coalesced']}, "
                      f"p99 {row['p99_ms']:.1f} ms")
            # Snapshot BEFORE the warm-speedup probe: its direct-daemon
            # leg bypasses the router and would break reconciliation.
            final = probe.status()
            metrics = probe.metrics()
            if final.get("role") == "fleet":
                healthy = final["router"]["ring"]["healthy"]
                if healthy:
                    single = final["daemons"][healthy[0]]["address"]
                    warm = measure_warm_speedup(
                        address, (single[0], single[1]), programs,
                        scale=args.scale, seed=args.seed,
                        concurrency=args.concurrency,
                        timeout=args.timeout, retries=args.retries,
                    )
                    print(f" warm: fleet {warm['fleet_warm_rps']:.1f} req/s "
                          f"vs single daemon {warm['single_warm_rps']:.1f} "
                          f"req/s ({warm['speedup']:.2f}x)")
        else:
            for name in ("cold", "warm"):
                phase_trace = None
                if trace_dir is not None:
                    phase_trace = TraceLog(
                        sink=trace_dir / f"client-{name}.jsonl"
                    )
                phases[name] = run_phase(
                    address, workload, args.concurrency,
                    timeout=args.timeout, retries=args.retries,
                    trace=phase_trace,
                )
                print(_phase_line(name, phases[name]))
            final = probe.status()
            metrics = probe.metrics()
        if args.connect and args.shutdown:
            probe.shutdown()
        probe.close()
    finally:
        # Stop (and so drain) the embedded daemon *before* merging:
        # drain flushes the server sink, and workers flushed per job.
        if thread is not None:
            thread.stop()
        if tempdir is not None:
            tempdir.cleanup()

    correlation = None
    if trace_dir is not None and args.connect:
        print(f"client traces: {trace_dir} (remote daemon still "
              f"flushing; run merge-trace once it drains)")
    elif trace_dir is not None:
        merged = obs_merge.merge_traces([trace_dir])
        merged_path = trace_dir / "merged.trace.json"
        merged.save_chrome_trace(merged_path)
        correlation = obs_merge.correlation_report(merged)
        print(f"merged trace: {merged_path} "
              f"({len(merged.events)} events, "
              f"{correlation['request_ids']} request ids)")

    fleet_mode = final.get("role") == "fleet"
    if args.soak:
        outcome = reconcile_soak(
            before, final, soak, error_budget=args.error_budget
        )
        exposition = (
            metrics_agree_fleet(final, metrics)
            if fleet_mode else metrics_agree(final, metrics["json"])
        )
        gates = {
            "warm_p99": {
                "ok": soak["warm_latency_ms"]["p99"] <= args.p99_ms,
                "observed_ms": soak["warm_latency_ms"]["p99"],
                "ceiling_ms": args.p99_ms,
            },
            "error_budget": {
                "ok": soak["failed"]
                <= int(args.error_budget * soak["requests"]),
                "failed": soak["failed"],
                "allowed": int(args.error_budget * soak["requests"]),
            },
        }
        if args.speedup_floor > 0:
            gates["warm_speedup"] = {
                "ok": warm is not None
                and warm["speedup"] >= args.speedup_floor,
                "observed": warm["speedup"] if warm else None,
                "floor": args.speedup_floor,
            }
        report = {
            "bench": "serve-soak",
            "concurrency": args.concurrency,
            "duration_s": args.duration,
            "tenants": args.tenants,
            "programs": programs,
            "scale": args.scale,
            "seed": args.seed,
            "soak": soak,
            "warm_speedup": warm,
            "server": {"before": before, "final": final},
            "reconcile": outcome,
            "gates": gates,
            "correlation": correlation,
            "exposition_check": exposition,
        }
    else:
        outcome = reconcile(before, final, phases)
        exposition = metrics_agree(final, metrics["json"])
        gates = {}
        report = {
            "bench": "serve",
            "concurrency": args.concurrency,
            "requests_per_phase": args.requests,
            "programs": programs,
            "scale": args.scale,
            "seed": args.seed,
            "phases": phases,
            "server": {"before": before, "final": final},
            "metrics": metrics["json"],
            "reconcile": outcome,
            "correlation": correlation,
            "exposition_check": exposition,
        }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"report: {args.out}")

    for name, check in outcome["checks"].items():
        flag = "OK" if check["ok"] else "FAIL"
        detail = {k: v for k, v in check.items() if k != "ok"}
        print(f"  {flag:>4}  {name}  {detail}")
    for name, gate in gates.items():
        flag = "OK" if gate["ok"] else "FAIL"
        detail = {k: v for k, v in gate.items() if k != "ok"}
        print(f"  {flag:>4}  gate:{name}  {detail}")
    if args.soak:
        ok = outcome["ok"] and all(gate["ok"] for gate in gates.values())
    else:
        failed_requests = sum(phase["failed"] for phase in phases.values())
        ok = outcome["ok"] and failed_requests == 0
    if not exposition["ok"]:
        print(f"  FAIL  metrics_exposition  {exposition['mismatches']}")
        ok = False
    if correlation is not None and not correlation["ok"]:
        print(f"  FAIL  trace_correlation  {correlation}")
        ok = False
    print(f"serve-bench: {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
