"""The daemon's wire format: length-prefixed JSON frames over TCP.

A frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding one object.  The format is deliberately
dumb — no versioning dance, no streaming bodies — because every
artifact of real size lives in the content-addressed cache; frames
carry requests, summaries, and program output only.

Both ends enforce a frame-size ceiling (:data:`MAX_FRAME`): an encoder
refuses to build an oversized frame, and a decoder that reads an
oversized header raises :class:`FrameTooLarge` *before* buffering the
body, so a hostile or confused peer cannot balloon the daemon's
memory.  A connection that dies mid-frame surfaces as
:class:`TruncatedFrame` — never as a half-parsed request.

Two codecs share the format: asyncio stream functions for the server
(:func:`read_frame` / :func:`write_frame`) and blocking-socket
functions for the client and load generator (:func:`recv_frame` /
:func:`send_frame`).

Requests are ``{"id": n, "op": name, ...params}``; responses echo the
id and carry either ``"ok": true`` with a ``result`` (plus ``cached``
/ ``coalesced`` provenance flags), ``"ok": false`` with an ``error``
object, or ``"ok": false`` with a ``retry_after`` hint — the
backpressure reply a well-behaved client sleeps on.

Requests may additionally carry a ``request_id`` — an opaque string
the client mints (``<trace_id>:<n>``) for end-to-end trace
correlation.  It is *not* a content field: two requests for the same
job with different request ids still coalesce and share one cache
entry; the id only tags the spans each side records, so a merged
multi-process trace can answer "where did request X spend its time?".

Job requests may also carry a ``tenant`` string (default ``"anon"``).
Like ``request_id`` it is accounting context, never content: two
tenants requesting the same job share one cache entry and one flight.
The fleet router reads it for quota admission and weighted fair
queueing; daemons count per-tenant completions in labeled registry
series that the router aggregates fleet-wide.
"""

from __future__ import annotations

import asyncio
import json
import socket

#: Frame-size ceiling (header + body), shared by both directions.
MAX_FRAME = 8 * 1024 * 1024

_HEADER_LEN = 4

#: Request types the daemon understands.  ``compile``/``link``/``run``/
#: ``explain`` are content-addressed jobs; ``status``, ``metrics``, and
#: ``shutdown`` are served inline by the event loop.
JOB_OPS = ("compile", "link", "run", "explain")
ADMIN_OPS = ("status", "metrics", "shutdown")
#: Extra admin ops only the fleet router answers: ``route`` maps a
#: request's content fields to the daemon that would serve it.
ROUTER_OPS = ("route",)
OPS = JOB_OPS + ADMIN_OPS


class ProtocolError(Exception):
    """The byte stream does not decode as a protocol frame."""


class FrameTooLarge(ProtocolError):
    """A frame exceeded the size ceiling (refused, not buffered)."""


class TruncatedFrame(ProtocolError):
    """The connection closed mid-frame."""


# -- framing -------------------------------------------------------------------


def encode_frame(obj, *, max_frame: int = MAX_FRAME) -> bytes:
    """One wire frame for a JSON-serializable object."""
    body = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()
    if _HEADER_LEN + len(body) > max_frame:
        raise FrameTooLarge(
            f"frame of {len(body)} bytes exceeds the {max_frame}-byte ceiling"
        )
    return len(body).to_bytes(_HEADER_LEN, "big") + body


def decode_body(body: bytes) -> dict:
    """The JSON object inside a frame body."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame body is {type(obj).__name__}, not an object")
    return obj


def _body_length(header: bytes, max_frame: int) -> int:
    length = int.from_bytes(header, "big")
    if _HEADER_LEN + length > max_frame:
        raise FrameTooLarge(
            f"peer announced a {length}-byte frame; ceiling is {max_frame} bytes"
        )
    return length


# -- asyncio codec (server side) -----------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame: int = MAX_FRAME
) -> dict | None:
    """One decoded frame, or None on a clean EOF at a frame boundary."""
    body = await read_raw_frame(reader, max_frame=max_frame)
    if body is None:
        return None
    return decode_body(body)


async def read_raw_frame(
    reader: asyncio.StreamReader, *, max_frame: int = MAX_FRAME
) -> bytes | None:
    """One frame *body*, undecoded, or None on a clean EOF.

    The fleet router reads frames this way so it can relay a request or
    response verbatim — decoding a private copy for routing decisions
    but never re-encoding the bytes it forwards (the frame ``id`` is
    preserved end-to-end, so a response body needs no rewriting)."""
    try:
        header = await reader.readexactly(_HEADER_LEN)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrame("connection closed inside a frame header") from None
    length = _body_length(header, max_frame)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise TruncatedFrame(
            f"connection closed {length}-byte body short"
        ) from None
    return body


def frame_bytes(body: bytes) -> bytes:
    """The wire frame for an already-encoded body."""
    return len(body).to_bytes(_HEADER_LEN, "big") + body


async def write_frame(
    writer: asyncio.StreamWriter, obj, *, max_frame: int = MAX_FRAME
) -> None:
    writer.write(encode_frame(obj, max_frame=max_frame))
    await writer.drain()


# -- blocking-socket codec (client side) ---------------------------------------


def _recv_exactly(sock: socket.socket, n: int, *, eof_ok: bool = False) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and not chunks:
                return b""
            raise TruncatedFrame(
                f"connection closed after {n - remaining} of {n} bytes"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, *, max_frame: int = MAX_FRAME) -> dict | None:
    """One decoded frame, or None on a clean EOF at a frame boundary."""
    header = _recv_exactly(sock, _HEADER_LEN, eof_ok=True)
    if not header:
        return None
    body = _recv_exactly(sock, _body_length(header, max_frame))
    return decode_body(body)


def send_frame(sock: socket.socket, obj, *, max_frame: int = MAX_FRAME) -> None:
    sock.sendall(encode_frame(obj, max_frame=max_frame))


# -- message shapes ------------------------------------------------------------


def request(op: str, frame_id: int, **params) -> dict:
    """A request frame.  ``frame_id`` is the per-connection wire id the
    response echoes; an end-to-end correlation ``request_id`` (if any)
    travels in ``params``."""
    return {"id": frame_id, "op": op, **params}


def ok_response(
    request_id, result, *, cached: bool = False, coalesced: bool = False
) -> dict:
    return {
        "id": request_id,
        "ok": True,
        "result": result,
        "cached": cached,
        "coalesced": coalesced,
    }


def error_response(request_id, kind: str, message: str) -> dict:
    return {"id": request_id, "ok": False, "error": {"kind": kind, "message": message}}


def busy_response(request_id, retry_after: float, *, reason: str | None = None) -> dict:
    """The backpressure reply.  ``reason`` (optional) tells the client
    *which* limiter answered — ``"quota"`` for a tenant-quota rejection,
    ``"upstream"`` for a fleet backend that died mid-request — so load
    generators can account rejections separately from overload."""
    response = {"id": request_id, "ok": False, "retry_after": retry_after}
    if reason is not None:
        response["reason"] = reason
    return response
