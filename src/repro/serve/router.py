"""The fleet front door: a consistent-hash content-aware router.

One asyncio event loop accepts client connections speaking the
daemon's frame protocol and forwards each job request to one of N
:class:`~repro.serve.server.ToolchainServer` daemons.  The routing
decision is a **consistent hash of the request's content fields** —
not round-robin — so every identical in-flight request lands on the
*same* daemon, where the daemon's ``SingleFlight`` coalesces them into
one build exactly as it would behind a single-daemon deployment: the
coalescing win survives the scale-out.  Distinct keys spread across
the ring's virtual nodes, and losing a daemon re-maps only that
daemon's slice (the consistent-hashing property the fleet's restart
path leans on).

A request travels: decode (a private copy; the bytes themselves are
relayed verbatim both ways, the frame ``id`` is preserved end-to-end
so nothing is re-encoded) → **tenant quota admission**
(:class:`~repro.serve.quota.QuotaManager`; over-quota answers
``retry_after`` with ``reason="quota"``) → **weighted fair queueing**
onto the router's bounded forwarding concurrency
(:class:`~repro.serve.quota.FairScheduler`) → **ring lookup** →
**forward** over a per-daemon connection pool.  A daemon that dies
mid-request is marked down (ring slice re-mapped immediately), the
request is retried once on the re-mapped ring, and only if no healthy
daemon remains does the client see a retryable ``reason="upstream"``
busy reply — never a hang, never a silent drop.

Admin ops fan out: ``status`` and ``metrics`` aggregate every
daemon's counters (and per-tenant series) into fleet-wide sums next
to the router's own accounting; ``route`` answers which daemon owns a
key (tests and operators use it to aim requests); ``shutdown``
initiates the fleet drain.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceLog, now_us
from repro.serve import protocol
from repro.serve.quota import FairScheduler, QuotaManager

#: Payload fields that participate in the routing key.  A superset of
#: the daemon's ``_CONTENT_FIELDS`` plus the name-based request form:
#: the router must not pay source resolution per request, and hashing
#: the unresolved fields still sends *identical* requests to one
#: daemon, which is all fleet-wide coalescing needs (the shared disk
#: cache already unifies a name-based and an expanded request).
ROUTE_FIELDS = (
    "sources", "program", "scale", "mode", "variant", "optimize",
    "schedule", "timed", "max_instructions", "backend",
)


class HashRing:
    """Consistent hashing with virtual nodes.

    Each node owns ``replicas`` points on a 64-bit ring (SHA-256 of
    ``"slot#i"``); a key maps to the first point clockwise of its own
    hash.  Deterministic across processes and runs — the same fleet
    shape always routes the same keys the same way.
    """

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._nodes: set[str] = set()

    @staticmethod
    def _hash(data: str) -> int:
        return int.from_bytes(
            hashlib.sha256(data.encode()).digest()[:8], "big"
        )

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            point = self._hash(f"{node}#{i}")
            # SHA-256 collisions across 64-bit prefixes are not a real
            # concern, but keep the mapping well-defined anyway.
            if point in self._owners:
                continue
            self._owners[point] = node
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        for i in range(self.replicas):
            point = self._hash(f"{node}#{i}")
            if self._owners.get(point) == node:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    del self._points[index]

    def nodes(self) -> set[str]:
        return set(self._nodes)

    def node_for(self, key: str) -> str | None:
        if not self._points:
            return None
        point = self._hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]


def routing_key(message: dict) -> str:
    """The canonical content key the ring hashes for one request."""
    content = {
        key: message[key] for key in ROUTE_FIELDS if key in message
    }
    content["op"] = message.get("op")
    return json.dumps(content, sort_keys=True, separators=(",", ":"))


@dataclass
class RouterConfig:
    """Router knobs; defaults suit a local fleet."""

    host: str = "127.0.0.1"
    port: int = 0
    replicas: int = 64  # ring virtual nodes per daemon
    max_inflight: int = 64  # forwarded-job concurrency (WFQ bound)
    queue_timeout: float = 120.0  # max WFQ wait before answering busy
    retry_after: float = 0.05  # busy hint when no better estimate exists
    pool_size: int = 8  # connections per daemon
    upstream_timeout: float = 600.0  # per-forward ceiling (hang fuse)
    admin_timeout: float = 10.0  # per-daemon status/metrics fan-out fuse
    max_frame: int = protocol.MAX_FRAME
    trace_flush_every: int = 256


class BackendError(Exception):
    """Forwarding to a daemon failed at the transport layer."""


_ROUTER_COUNTER_HELP = {
    "requests": "every decoded request, admin included",
    "completed": "job requests relayed with an ok response",
    "failed": "job requests relayed with an error response",
    "rejected": "job requests answered retry-after (all reasons)",
    "quota_rejected": "rejections by tenant quota (subset of rejected)",
    "relayed_busy": "daemon busy replies relayed (subset of rejected)",
    "upstream_errors": "forward attempts lost to a dead/dying daemon",
    "bad_requests": "undecodable frames / unknown ops",
}


class _Backend:
    """One daemon slot: its address, health, and connection pool."""

    def __init__(self, slot: str, address: tuple[str, int], pool_size: int):
        self.slot = slot
        self.address = (address[0], int(address[1]))
        self.healthy = True
        self._pool_size = pool_size
        self._pool: asyncio.LifoQueue | None = None

    def _ensure_pool(self) -> asyncio.LifoQueue:
        if self._pool is None:
            self._pool = asyncio.LifoQueue()
            for _ in range(self._pool_size):
                self._pool.put_nowait(None)
        return self._pool

    def reset(self, address: tuple[str, int] | None = None) -> None:
        """Forget every pooled connection (after death or restart)."""
        if address is not None:
            self.address = (address[0], int(address[1]))
        pool = self._ensure_pool()
        drained = []
        while True:
            try:
                drained.append(pool.get_nowait())
            except asyncio.QueueEmpty:
                break  # in-flight holders will discard on failure
        for conn in drained:
            if conn is not None:
                conn[1].close()
            pool.put_nowait(None)

    async def roundtrip(
        self, body: bytes, *, max_frame: int, timeout: float
    ) -> bytes:
        """Forward one raw frame body, return the raw response body."""
        pool = self._ensure_pool()
        conn = await pool.get()
        try:
            if conn is None:
                reader, writer = await asyncio.open_connection(*self.address)
                conn = (reader, writer)
            reader, writer = conn
            writer.write(protocol.frame_bytes(body))
            await writer.drain()
            raw = await asyncio.wait_for(
                protocol.read_raw_frame(reader, max_frame=max_frame),
                timeout=timeout,
            )
            if raw is None:
                raise BackendError(f"{self.slot} closed before answering")
        except BackendError:
            writer = conn[1] if conn else None
            if writer is not None:
                writer.close()
            conn = None
            raise
        except (OSError, asyncio.TimeoutError, protocol.ProtocolError) as exc:
            if conn is not None:
                conn[1].close()
                conn = None
            raise BackendError(
                f"forward to {self.slot} failed: {type(exc).__name__}: {exc}"
            ) from None
        finally:
            pool.put_nowait(conn)
        return raw


class FleetRouter:
    """The consistent-hash router in front of a daemon fleet."""

    def __init__(
        self,
        backends: dict[str, tuple[str, int]],
        config: RouterConfig | None = None,
        *,
        quotas: QuotaManager | None = None,
        trace: TraceLog | None = None,
        on_backend_down=None,
    ):
        self.config = config or RouterConfig()
        self.trace = trace
        self.quotas = quotas or QuotaManager(
            retry_after=self.config.retry_after
        )
        self.scheduler = FairScheduler(
            self.config.max_inflight, weight_for=self.quotas.weight
        )
        self.ring = HashRing(self.config.replicas)
        self.backends: dict[str, _Backend] = {}
        for slot, address in backends.items():
            self.backends[slot] = _Backend(
                slot, address, self.config.pool_size
            )
            self.ring.add(slot)
        self._on_backend_down = on_backend_down
        self.metrics = MetricsRegistry()
        self._counters = {
            name: self.metrics.counter(f"router_{name}_total", help)
            for name, help in _ROUTER_COUNTER_HELP.items()
        }
        self.latency = {
            op: self.metrics.histogram(
                "router_request_seconds",
                "relay latency by op, log-bucketed",
                op=op,
            )
            for op in protocol.JOB_OPS
        }
        self.metrics.gauge(
            "router_inflight", "jobs being forwarded right now",
            fn=lambda: self.scheduler.inflight,
        )
        self.metrics.gauge(
            "router_backlog", "admitted jobs queued for a forward slot",
            fn=self.scheduler.backlog,
        )
        self.metrics.gauge(
            "router_healthy_backends", "daemons currently on the ring",
            fn=lambda: len(self.ring.nodes()),
        )
        self.stop_event = asyncio.Event()
        self.draining = False
        self._pending = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._started = time.monotonic()

    # -- counters ----------------------------------------------------------

    def _count(self, name: str) -> None:
        self._counters[name].inc()

    def counters(self) -> dict:
        return {name: c.value for name, c in self._counters.items()}

    def _tenant_count(self, kind: str, tenant: str) -> None:
        self.metrics.counter(
            f"router_tenant_{kind}_total",
            f"per-tenant {kind} at the router",
            tenant=tenant,
        ).inc()

    def _tenant_counters(self) -> dict:
        out: dict[str, dict[str, float]] = {}
        for metric in self.metrics:
            name = metric.name
            if not (name.startswith("router_tenant_")
                    and name.endswith("_total")):
                continue
            kind = name[len("router_tenant_"):-len("_total")]
            tenant = metric.labels.get("tenant", "?")
            out.setdefault(tenant, {})[kind] = metric.value
        return out

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        if self.trace is not None:
            self.trace.event(
                "router.start", cat="router", host=host, port=port,
                backends=sorted(self.backends),
            )
        return host, port

    async def drain(self) -> None:
        """Stop admitting, finish in-flight relays, flush the trace.

        Daemons are NOT stopped here — the fleet supervisor owns their
        lifecycle and drains them after the router stops forwarding.
        """
        if self.draining:
            await self._idle.wait()
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        for writer in list(self._writers):
            writer.close()
        if self.trace is not None:
            self.trace.event(
                "router.drained", cat="router", **self.counters()
            )
            self.trace.close()

    # -- backend health ----------------------------------------------------

    def mark_down(self, slot: str) -> None:
        """Take a daemon off the ring (its slice re-maps immediately)."""
        backend = self.backends.get(slot)
        if backend is None or not backend.healthy:
            return
        backend.healthy = False
        self.ring.remove(slot)
        backend.reset()
        if self.trace is not None:
            self.trace.event("router.backend_down", cat="router", slot=slot)
        if self._on_backend_down is not None:
            self._on_backend_down(slot)

    def restore(self, slot: str, address: tuple[str, int]) -> None:
        """Put a (re)started daemon back on the ring at its old slice."""
        backend = self.backends.get(slot)
        if backend is None:
            backend = _Backend(slot, address, self.config.pool_size)
            self.backends[slot] = backend
        backend.reset(address)
        backend.healthy = True
        self.ring.add(slot)
        if self.trace is not None:
            self.trace.event(
                "router.backend_up", cat="router", slot=slot,
                address=list(address),
            )

    # -- per-connection loop -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    body = await protocol.read_raw_frame(
                        reader, max_frame=self.config.max_frame
                    )
                except protocol.FrameTooLarge as exc:
                    self._count("bad_requests")
                    await protocol.write_frame(
                        writer,
                        protocol.error_response(
                            None, "frame-too-large", str(exc)
                        ),
                    )
                    break
                except protocol.ProtocolError:
                    self._count("bad_requests")
                    break
                if body is None:
                    break
                response = await self._dispatch(body)
                writer.write(
                    response if isinstance(response, bytes)
                    else protocol.encode_frame(
                        response, max_frame=self.config.max_frame
                    )
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, body: bytes) -> bytes | dict:
        self._count("requests")
        try:
            message = protocol.decode_body(body)
        except protocol.ProtocolError as exc:
            self._count("bad_requests")
            return protocol.error_response(None, "bad-request", str(exc))
        rid = message.get("id")
        op = message.get("op")
        if op == "status":
            return protocol.ok_response(rid, await self.status())
        if op == "metrics":
            return protocol.ok_response(rid, await self.metrics_payload())
        if op == "route":
            key = routing_key(message)
            slot = self.ring.node_for(key)
            backend = self.backends.get(slot) if slot else None
            return protocol.ok_response(rid, {
                "key_sha256": hashlib.sha256(key.encode()).hexdigest(),
                "slot": slot,
                "address": list(backend.address) if backend else None,
            })
        if op == "shutdown":
            self.stop_event.set()
            return protocol.ok_response(rid, {"draining": True})
        if op not in protocol.JOB_OPS:
            self._count("bad_requests")
            return protocol.error_response(
                rid, "bad-request", f"unknown op {op!r}"
            )
        if self.draining:
            return protocol.error_response(rid, "draining", "fleet is draining")
        return await self._relay_job(body, message, rid, op)

    async def _relay_job(
        self, body: bytes, message: dict, rid, op: str
    ) -> bytes | dict:
        tenant = str(message.get("tenant") or "anon")
        request_id = message.get("request_id")
        self._tenant_count("requests", tenant)
        hint = self.quotas.try_admit(tenant)
        if hint is not None:
            self._count("rejected")
            self._count("quota_rejected")
            self._tenant_count("rejected", tenant)
            self._route_span(op, now_us(), request_id, tenant,
                             outcome="quota-rejected")
            return protocol.busy_response(rid, hint, reason="quota")
        self._pending += 1
        self._idle.clear()
        started = time.monotonic()
        started_us = now_us()
        slot = None
        try:
            try:
                await asyncio.wait_for(
                    self.scheduler.acquire(tenant),
                    timeout=self.config.queue_timeout,
                )
            except asyncio.TimeoutError:
                self._count("rejected")
                self._tenant_count("rejected", tenant)
                return protocol.busy_response(
                    rid, self.config.retry_after, reason="overload"
                )
            try:
                slot, raw = await self._forward(routing_key(message), body)
            finally:
                self.scheduler.release()
        except BackendError:
            self._count("rejected")
            self._tenant_count("rejected", tenant)
            self._route_span(op, started_us, request_id, tenant,
                             outcome="upstream-lost", slot=slot)
            return protocol.busy_response(
                rid, self.config.retry_after, reason="upstream"
            )
        finally:
            self.quotas.release(tenant)
            self._pending -= 1
            if not self._pending:
                self._idle.set()
        duration = time.monotonic() - started
        self.latency[op].observe(duration)
        outcome = json.loads(raw)
        if outcome.get("ok"):
            self._count("completed")
            self._tenant_count("completed", tenant)
            verdict = "ok"
        elif "retry_after" in outcome:
            self._count("rejected")
            self._count("relayed_busy")
            self._tenant_count("rejected", tenant)
            verdict = "busy"
        else:
            self._count("failed")
            self._tenant_count("failed", tenant)
            verdict = "failed"
        self._route_span(op, started_us, request_id, tenant,
                         outcome=verdict, slot=slot)
        if (
            self.trace is not None
            and self.trace.unflushed >= self.config.trace_flush_every
        ):
            self.trace.flush()
        return protocol.frame_bytes(raw)

    async def _forward(self, key: str, body: bytes) -> tuple[str, bytes]:
        """Forward to the ring owner; on death, re-map and retry once
        per remaining backend.  Raises :class:`BackendError` when no
        healthy daemon answers."""
        attempts = len(self.backends) + 1
        last: BackendError | None = None
        for _ in range(attempts):
            slot = self.ring.node_for(key)
            if slot is None:
                raise last or BackendError("no healthy backends")
            backend = self.backends[slot]
            try:
                raw = await backend.roundtrip(
                    body,
                    max_frame=self.config.max_frame,
                    timeout=self.config.upstream_timeout,
                )
                return slot, raw
            except BackendError as exc:
                self._count("upstream_errors")
                self.mark_down(slot)
                last = exc
        raise last or BackendError("no healthy backends")

    def _route_span(
        self, op, start_us, request_id, tenant, *, outcome, slot=None
    ) -> None:
        if self.trace is None:
            return
        args = {"tenant": tenant, "outcome": outcome}
        if request_id is not None:
            args["request_id"] = request_id
        if slot is not None:
            args["slot"] = slot
        self.trace.add_span(
            f"serve.route.{op}", start_us, now_us(), cat="router", **args
        )

    # -- admin fan-out -----------------------------------------------------

    async def _admin(self, slot: str, op: str) -> dict:
        backend = self.backends[slot]
        body = protocol.encode_frame(
            {"id": 0, "op": op}, max_frame=self.config.max_frame
        )[4:]
        raw = await backend.roundtrip(
            body,
            max_frame=self.config.max_frame,
            timeout=self.config.admin_timeout,
        )
        response = json.loads(raw)
        if not response.get("ok"):
            raise BackendError(f"{slot} {op} answered {response!r}")
        return response["result"]

    async def _fan_out(self, op: str) -> dict[str, dict]:
        """One admin op against every healthy daemon, concurrently."""
        slots = [s for s, b in self.backends.items() if b.healthy]
        results = await asyncio.gather(
            *(self._admin(slot, op) for slot in slots),
            return_exceptions=True,
        )
        out = {}
        for slot, result in zip(slots, results):
            if isinstance(result, BaseException):
                out[slot] = {"error": str(result)}
            else:
                out[slot] = result
        return out

    async def status(self) -> dict:
        statuses = await self._fan_out("status")
        counters: dict[str, float] = {}
        tenants: dict[str, dict[str, float]] = {}
        flights = {"started": 0, "coalesced": 0}
        stamp = None
        for state in statuses.values():
            if "error" in state:
                continue
            stamp = stamp or state.get("stamp")
            for name, value in state.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in state.get("flights", {}).items():
                flights[name] = flights.get(name, 0) + value
            for tenant, kinds in state.get("tenants", {}).items():
                bucket = tenants.setdefault(tenant, {})
                for kind, value in kinds.items():
                    bucket[kind] = bucket.get(kind, 0) + value
        daemons = {}
        for slot, backend in sorted(self.backends.items()):
            daemons[slot] = {
                "healthy": backend.healthy,
                "address": list(backend.address),
                "status": statuses.get(slot),
            }
        return {
            "role": "fleet",
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self._started,
            "draining": self.draining,
            "stamp": stamp,
            "counters": counters,
            "tenants": tenants,
            "flights": flights,
            "daemons": daemons,
            "router": {
                "counters": self.counters(),
                "tenants": self._tenant_counters(),
                "quotas": self.quotas.snapshot(),
                "scheduler": {
                    "inflight": self.scheduler.inflight,
                    "backlog": self.scheduler.backlog(),
                    "granted": self.scheduler.granted,
                    "queued": self.scheduler.queued,
                },
                "ring": {
                    "replicas": self.ring.replicas,
                    "healthy": sorted(self.ring.nodes()),
                    "slots": sorted(self.backends),
                },
                "latency": {
                    op: hist.summary() for op, hist in self.latency.items()
                },
            },
        }

    async def metrics_payload(self) -> dict:
        """Router exposition plus fleet-wide aggregated daemon series."""
        fanned = await self._fan_out("metrics")
        merged: dict[tuple, dict] = {}
        for payload in fanned.values():
            for series in payload.get("json", {}).get("metrics", []):
                if series.get("kind") != "counter":
                    continue
                key = (
                    series["name"],
                    tuple(sorted(series.get("labels", {}).items())),
                )
                entry = merged.setdefault(key, {
                    "name": series["name"],
                    "kind": "counter",
                    "labels": dict(series.get("labels", {})),
                    "value": 0,
                })
                entry["value"] += series.get("value", 0)
        return {
            "json": self.metrics.to_dict(),
            "text": self.metrics.to_prometheus(),
            "daemons": {
                slot: payload.get("json")
                for slot, payload in fanned.items()
            },
            "fleet": {
                "counters": sorted(
                    merged.values(),
                    key=lambda s: (s["name"], sorted(s["labels"].items())),
                ),
            },
        }


class RouterThread:
    """A router embedded on a dedicated thread (mirror of
    :class:`~repro.serve.server.ServerThread`): real TCP, real ring,
    real quotas, against whatever backends the caller provides —
    which is what lets the routing/quota semantics be tested over stub
    daemons without a subprocess fleet."""

    def __init__(
        self,
        backends: dict[str, tuple[str, int]],
        config: RouterConfig | None = None,
        *,
        quotas: QuotaManager | None = None,
        trace: TraceLog | None = None,
    ):
        self._kwargs = dict(
            backends=backends, config=config, quotas=quotas, trace=trace
        )
        self.router: FleetRouter | None = None
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-router", daemon=True
        )

    def start(self) -> tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("router thread did not come up")
        if self._failure is not None:
            raise RuntimeError("router thread failed") from self._failure
        assert self.address is not None
        return self.address

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.stop_event.set)
            except RuntimeError:
                pass
        self._thread.join(timeout)

    def call(self, fn, timeout: float = 30.0):
        """Run ``fn(router)`` on the router's loop (tests use this to
        poke health transitions deterministically)."""
        assert self._loop is not None and self.router is not None
        future = asyncio.run_coroutine_threadsafe(
            self._call(fn), self._loop
        )
        return future.result(timeout)

    async def _call(self, fn):
        return fn(self.router)

    def __enter__(self) -> RouterThread:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        kwargs = self._kwargs
        self.router = FleetRouter(
            kwargs["backends"], kwargs["config"],
            quotas=kwargs["quotas"], trace=kwargs["trace"],
        )
        self._loop = asyncio.get_running_loop()
        self.address = await self.router.start()
        self._ready.set()
        await self.router.stop_event.wait()
        await self.router.drain()
