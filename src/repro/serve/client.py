"""Client library for the toolchain daemon.

A :class:`ServeClient` holds one TCP connection and reuses it across
requests (requests on a connection are strictly serial — the protocol
has no pipelining; use one client per thread for concurrency, as the
load generator does).  The client owns three reliability behaviors the
daemon's contract expects:

* **per-request timeouts** — the socket deadline covers send and
  receive; expiry raises :class:`RequestTimeout` and poisons the
  connection (a late reply must never be read as the answer to the
  *next* request);
* **backpressure honoring** — a ``retry_after`` reply sleeps for a
  *full-jittered* capped exponential backoff: a uniform draw from
  ``[0, min(backoff · 2^attempt, backoff_cap)]``, floored at the
  server's ``retry_after`` hint, then retries, up to ``retries`` times
  before raising :class:`ServerBusy`.  The jitter matters under
  coalesce bursts: N clients rejected together must not re-arrive
  together, so each client draws its schedule from its own RNG
  (seedable via ``rng`` for reproducibility);
* **reconnect-and-retry on transport failure** — every request is
  idempotent (the daemon is content-addressed), so a dropped or
  refused connection is retried on a fresh socket with the same
  backoff schedule.

``busy_retries`` and ``transport_retries`` count what the reliability
layer absorbed; the load generator reconciles the former against the
server's ``rejected`` counter.

Every client mints a ``trace_id`` at construction and stamps each job
request with a ``request_id`` (``<trace_id>:<n>``) that is *stable
across retries* — a request that survives three busy replies is still
one request on the merged timeline.  With a ``trace`` log attached,
the client records a ``client.<op>`` span per request carrying that
id, which is what lets :mod:`repro.obs.merge` line the client's view
of a request up against the server stages and worker spans it caused.
"""

from __future__ import annotations

import itertools
import os
import random
import socket
import threading
import time

from repro.obs.trace import now_us
from repro.serve import protocol

_TRACE_IDS = itertools.count(1)


def _mint_trace_id() -> str:
    """Process-unique client identity: ``c<pid>-<n>``."""
    return f"c{os.getpid()}-{next(_TRACE_IDS)}-{threading.get_ident() & 0xFFFF}"


class ServeError(Exception):
    """Base class for client-visible serving failures."""


class ServerBusy(ServeError):
    """Backpressure retries exhausted."""

    def __init__(self, attempts: int, retry_after: float, reason: str = "busy"):
        super().__init__(
            f"server still busy after {attempts} attempts "
            f"(last retry-after hint {retry_after}s, reason {reason!r})"
        )
        self.attempts = attempts
        self.retry_after = retry_after
        self.reason = reason


class RequestFailed(ServeError):
    """The daemon answered with an error object."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind

    @classmethod
    def from_response(cls, response: dict) -> RequestFailed:
        error = response.get("error") or {}
        return cls(error.get("kind", "unknown"), error.get("message", ""))


class RequestTimeout(ServeError):
    """No reply within the per-request deadline."""


class ConnectionFailed(ServeError):
    """Transport retries exhausted."""


class ServeClient:
    """One connection to the daemon, with retries and backoff."""

    def __init__(
        self,
        address: tuple[str, int],
        *,
        timeout: float = 60.0,
        retries: int = 5,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        max_frame: int = protocol.MAX_FRAME,
        sleep=time.sleep,
        trace=None,
        trace_id: str | None = None,
        tenant: str | None = None,
        rng: random.Random | None = None,
    ):
        self.address = (address[0], int(address[1]))
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.max_frame = max_frame
        self.requests_sent = 0
        self.busy_retries = 0
        #: Busy replies absorbed, keyed by the server's ``reason`` tag
        #: (``"busy"`` when the reply carried none) — how a load
        #: generator tells quota rejections from plain overload.
        self.busy_reasons: dict[str, int] = {}
        self.transport_retries = 0
        #: Accounting identity stamped on every job request (never a
        #: content field — tenants share cache entries and flights).
        self.tenant = tenant
        #: Private jitter source: each client must draw its own backoff
        #: schedule, or synchronized rejects re-arrive synchronized.
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._ids = itertools.count(1)
        #: Optional :class:`repro.obs.trace.TraceLog` receiving one
        #: ``client.<op>`` span per job request.
        self.trace = trace
        self.trace_id = trace_id or _mint_trace_id()

    # -- connection management --------------------------------------------

    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(self.address, self.timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(self.timeout)
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> ServeClient:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the request loop --------------------------------------------------

    def _pause(self, attempt: int, hint: float | None = None) -> None:
        """Full-jittered capped exponential backoff.

        The delay is a uniform draw from ``[0, min(backoff · 2^attempt,
        backoff_cap)]`` — *full* jitter, not a deterministic schedule,
        because the clients most likely to be backing off together are
        the ones a coalesce burst rejected together.  A server
        ``retry_after`` hint floors the draw (the server knows when
        capacity frees up); the cap bounds both.
        """
        window = min(self.backoff * (2**attempt), self.backoff_cap)
        delay = self._rng.uniform(0.0, window)
        if hint is not None:
            delay = min(max(delay, hint), self.backoff_cap)
        self._sleep(delay)

    def request(self, op: str, **params) -> dict:
        """One request/response exchange; returns the full response.

        Raises :class:`ServerBusy`, :class:`RequestFailed`,
        :class:`RequestTimeout`, or :class:`ConnectionFailed`.
        """
        if op in protocol.JOB_OPS and "request_id" not in params:
            # Minted once here, NOT per attempt: retries of one logical
            # request share one id on the merged timeline.
            params["request_id"] = f"{self.trace_id}:{next(self._ids)}"
        if op in protocol.JOB_OPS and self.tenant and "tenant" not in params:
            params["tenant"] = self.tenant
        request_id = params.get("request_id")
        start_us = now_us()
        try:
            response = self._request_with_retries(op, params)
        except ServeError:
            self._client_span(op, start_us, request_id, ok=False)
            raise
        self._client_span(
            op, start_us, request_id, ok=True,
            cached=bool(response.get("cached")),
            coalesced=bool(response.get("coalesced")),
        )
        return response

    def _client_span(self, op, start_us, request_id, **args) -> None:
        if self.trace is None or request_id is None:
            return
        self.trace.add_span(
            f"client.{op}", start_us, now_us(), cat="client",
            request_id=request_id, **args,
        )

    def _request_with_retries(self, op: str, params: dict) -> dict:
        last_hint = 0.0
        last_reason = "busy"
        for attempt in range(self.retries + 1):
            rid = next(self._ids)
            try:
                sock = self._connection()
                protocol.send_frame(
                    sock,
                    protocol.request(op, rid, **params),
                    max_frame=self.max_frame,
                )
                self.requests_sent += 1
                response = protocol.recv_frame(sock, max_frame=self.max_frame)
            except socket.timeout:
                self.close()
                raise RequestTimeout(
                    f"no reply to {op!r} within {self.timeout}s"
                ) from None
            except (OSError, protocol.ProtocolError):
                # Refused, reset, or garbled: the connection is useless.
                self.close()
                if attempt < self.retries:
                    self.transport_retries += 1
                    self._pause(attempt)
                    continue
                raise ConnectionFailed(
                    f"could not complete {op!r} against "
                    f"{self.address[0]}:{self.address[1]} "
                    f"after {attempt + 1} attempts"
                ) from None
            if response is None:
                # Clean EOF instead of a reply (e.g. the daemon drained
                # between our connect and send): retry on a new socket.
                self.close()
                if attempt < self.retries:
                    self.transport_retries += 1
                    self._pause(attempt)
                    continue
                raise ConnectionFailed(f"server closed before answering {op!r}")
            if response.get("id") != rid:
                self.close()
                raise protocol.ProtocolError(
                    f"response id {response.get('id')!r} != request id {rid}"
                )
            if response.get("ok"):
                return response
            if "retry_after" in response:
                last_hint = float(response["retry_after"])
                last_reason = response.get("reason", "busy")
                self.busy_retries += 1
                self.busy_reasons[last_reason] = (
                    self.busy_reasons.get(last_reason, 0) + 1
                )
                if attempt < self.retries:
                    self._pause(attempt, last_hint)
                    continue
                raise ServerBusy(attempt + 1, last_hint, last_reason)
            raise RequestFailed.from_response(response)
        raise ServerBusy(self.retries + 1, last_hint, last_reason)  # pragma: no cover

    # -- convenience wrappers ----------------------------------------------

    def compile(self, **params) -> dict:
        return self.request("compile", **params)

    def link(self, **params) -> dict:
        return self.request("link", **params)

    def run(self, **params) -> dict:
        return self.request("run", **params)

    def explain(self, **params) -> dict:
        return self.request("explain", **params)

    def status(self) -> dict:
        return self.request("status")["result"]

    def metrics(self) -> dict:
        """Both exposition formats: ``{"json": ..., "text": ...}``."""
        return self.request("metrics")["result"]

    def shutdown(self) -> dict:
        return self.request("shutdown")["result"]
